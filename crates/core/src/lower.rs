//! Lower merges: greatest lower bounds of annotated schemas (§6).
//!
//! Upper merges present *all* information of their inputs; dually, a lower
//! merge presents the information *common* to the inputs, so that any
//! instance of any input — and unions of such instances — is an instance
//! of the merge. This is the federated-database flavour of merging.
//!
//! Plain weak schemas lose too much under greatest lower bounds (the §6
//! `Dog` example), so arrows carry [`Participation`] constraints, with the
//! convention that an arrow a schema does not have is equivalent to one
//! with constraint `0`. The **annotated information ordering** is then
//!
//! ```text
//! G₁ ⊑ G₂  iff  C₁ ⊆ C₂,  S₁ ⊆ S₂,  and  K₁(e) ≤ K₂(e) for every arrow e
//! ```
//!
//! with `≤` the Fig. 11 order (`0/1` at the bottom) and absent arrows read
//! as `0`. After padding every input with the classes of all the others,
//! the greatest lower bound exists and is computed component-wise:
//! `S = ⋂ Sᵢ` and `K(e) = ⋀ Kᵢ(e)` ([`lower_merge`]). Unlike upper merges,
//! this can never fail — there is always a common weakening.
//!
//! [`lower_complete`] then restores condition 1 by introducing implicit
//! **union classes** *above* sets of incomparable arrow targets (the dual
//! of §4.2, sketched at the end of §6; the paper defers the details to its
//! reference \[5\], so the fixpoint used here — documented on the function —
//! is this crate's reconstruction).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::class::Class;
use crate::error::SchemaError;
use crate::name::Label;
use crate::order;
use crate::participation::Participation;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;

/// An arrow key: source, label, target.
pub type Edge = (Class, Label, Class);

/// A weak schema whose arrows carry participation constraints.
///
/// Arrows of the underlying schema default to `1` (the plain reading of
/// §2: "any instance of the class p must have an a-attribute"); the
/// `optional` set lists the arrows weakened to `0/1`. Absent arrows are
/// `0` by the §6 convention.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct AnnotatedSchema {
    schema: WeakSchema,
    optional: BTreeSet<Edge>,
}

impl AnnotatedSchema {
    /// Annotates a plain schema with every arrow required (`1`).
    pub fn all_required(schema: WeakSchema) -> Self {
        AnnotatedSchema {
            schema,
            optional: BTreeSet::new(),
        }
    }

    /// Starts building an annotated schema.
    pub fn builder() -> AnnotatedSchemaBuilder {
        AnnotatedSchemaBuilder::default()
    }

    pub(crate) fn from_parts(schema: WeakSchema, optional: BTreeSet<Edge>) -> Self {
        // Validation is exercised by tests, not asserted per construction:
        // lower completion rebuilds schemas every fixpoint round.
        AnnotatedSchema { schema, optional }
    }

    /// Transfers this schema's participation annotations onto a larger
    /// schema — typically its completion, which works on the bare weak
    /// schema and would otherwise forget which arrows were optional.
    /// Edges of `schema` that this schema marks optional stay `0/1`;
    /// everything else (including completion-introduced edges) is
    /// required.
    pub fn transfer_to(&self, schema: &WeakSchema) -> AnnotatedSchema {
        let optional = self
            .optional
            .iter()
            .filter(|(src, label, tgt)| schema.has_arrow(src, label, tgt))
            .cloned()
            .collect();
        AnnotatedSchema::from_parts(schema.clone(), optional)
    }

    /// The underlying weak schema.
    pub fn schema(&self) -> &WeakSchema {
        &self.schema
    }

    /// The participation constraint of an arrow (`0` when absent).
    pub fn participation(&self, src: &Class, label: &Label, tgt: &Class) -> Participation {
        if !self.schema.has_arrow(src, label, tgt) {
            Participation::Zero
        } else if self
            .optional
            .contains(&(src.clone(), label.clone(), tgt.clone()))
        {
            Participation::ZeroOrOne
        } else {
            Participation::One
        }
    }

    /// The `0/1` arrows.
    pub fn optional_edges(&self) -> impl Iterator<Item = &Edge> {
        self.optional.iter()
    }

    /// Number of `0/1` arrows.
    pub fn num_optional(&self) -> usize {
        self.optional.len()
    }

    /// Adds bare classes (no edges), the §6 padding step.
    pub fn pad_with_classes<I>(&self, classes: I) -> AnnotatedSchema
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        let (mut cs, spec, arrows) = self.schema.to_raw_parts();
        cs.extend(classes.into_iter().map(Into::into));
        let schema = WeakSchema::close(cs, spec, arrows)
            .expect("padding with bare classes cannot create cycles");
        AnnotatedSchema {
            schema,
            optional: self.optional.clone(),
        }
    }

    /// The annotated information ordering (module docs): `self ⊑ other`.
    pub fn is_sub_annotated(&self, other: &AnnotatedSchema) -> bool {
        if !self
            .schema
            .classes()
            .all(|c| other.schema.contains_class(c))
        {
            return false;
        }
        for (sub, sup) in self.schema.specialization_pairs() {
            if !(other.schema.specializes(sub, sup) && sub != sup) {
                return false;
            }
        }
        // K₁(e) ≤ K₂(e) pointwise over the union of the edge sets. Edges
        // absent from both are 0 ≤ 0 and can be skipped.
        let mut edges: BTreeSet<Edge> = self
            .schema
            .arrow_triples()
            .map(|(p, a, q)| (p.clone(), a.clone(), q.clone()))
            .collect();
        edges.extend(
            other
                .schema
                .arrow_triples()
                .map(|(p, a, q)| (p.clone(), a.clone(), q.clone())),
        );
        edges
            .iter()
            .all(|(p, a, q)| self.participation(p, a, q).le(other.participation(p, a, q)))
    }

    /// Validates the annotation:
    ///
    /// * every optional edge exists in the schema, and
    /// * participation is closure-coherent — a derived arrow is at least as
    ///   strong as the arrows it derives from (if `p ⇒ q` and `q`'s arrow
    ///   is required then `p`'s is too, and likewise along W2).
    pub fn validate(&self) -> Result<(), SchemaError> {
        for (src, label, tgt) in &self.optional {
            if !self.schema.has_arrow(src, label, tgt) {
                return Err(SchemaError::AnnotationOnMissingArrow {
                    class: src.clone(),
                    label: label.clone(),
                    target: tgt.clone(),
                });
            }
        }
        for (q, label, r) in self.schema.arrow_triples() {
            if self.participation(q, label, r) != Participation::One {
                continue;
            }
            // W1 coherence: subclasses must also require the arrow.
            for p in self.schema.strict_subs(q) {
                if self.participation(&p, label, r) != Participation::One {
                    return Err(SchemaError::AnnotationOnMissingArrow {
                        class: p.clone(),
                        label: label.clone(),
                        target: r.clone(),
                    });
                }
            }
            // W2 coherence: supertargets must also be required.
            for r2 in self.schema.strict_supers(r) {
                if self.participation(q, label, &r2) != Participation::One {
                    return Err(SchemaError::AnnotationOnMissingArrow {
                        class: q.clone(),
                        label: label.clone(),
                        target: r2.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl From<WeakSchema> for AnnotatedSchema {
    fn from(schema: WeakSchema) -> Self {
        AnnotatedSchema::all_required(schema)
    }
}

impl fmt::Debug for AnnotatedSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AnnotatedSchema({self})")
    }
}

impl fmt::Display for AnnotatedSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {{")?;
        for class in self.schema.classes() {
            writeln!(f, "  class {class};")?;
        }
        for (sub, sup) in self.schema.specialization_pairs() {
            writeln!(f, "  {sub} => {sup};")?;
        }
        for (src, label, tgt) in self.schema.arrow_triples() {
            let k = self.participation(src, label, tgt);
            match k {
                Participation::One => writeln!(f, "  {src} --{label}--> {tgt};")?,
                _ => writeln!(f, "  {src} --{label}?--> {tgt};")?,
            }
        }
        write!(f, "}}")
    }
}

/// Builder for [`AnnotatedSchema`]. Raw arrows carry a participation
/// constraint; the closure derives each implied arrow with the join
/// (strongest) of the constraints of the raw arrows deriving it, so a
/// required arrow stays required through inheritance.
#[derive(Default, Clone, Debug)]
pub struct AnnotatedSchemaBuilder {
    classes: BTreeSet<Class>,
    spec: BTreeMap<Class, BTreeSet<Class>>,
    raw: Vec<(Class, Label, Class, Participation)>,
}

impl AnnotatedSchemaBuilder {
    /// Declares a class.
    pub fn class(mut self, class: impl Into<Class>) -> Self {
        self.classes.insert(class.into());
        self
    }

    /// Declares several classes.
    pub fn classes<I>(mut self, classes: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        self.classes.extend(classes.into_iter().map(Into::into));
        self
    }

    /// Declares `sub ⇒ sup`.
    pub fn specialize(mut self, sub: impl Into<Class>, sup: impl Into<Class>) -> Self {
        self.spec.entry(sub.into()).or_default().insert(sup.into());
        self
    }

    /// Declares a required (`1`) arrow.
    pub fn arrow(
        self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
    ) -> Self {
        self.arrow_with(src, label, tgt, Participation::One)
    }

    /// Declares an optional (`0/1`) arrow.
    pub fn optional_arrow(
        self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
    ) -> Self {
        self.arrow_with(src, label, tgt, Participation::ZeroOrOne)
    }

    /// Declares an arrow with an explicit constraint. `0`-arrows are
    /// dropped (the paper's "not drawn" convention).
    pub fn arrow_with(
        mut self,
        src: impl Into<Class>,
        label: impl Into<Label>,
        tgt: impl Into<Class>,
        participation: Participation,
    ) -> Self {
        if participation.is_present() {
            self.raw
                .push((src.into(), label.into(), tgt.into(), participation));
        }
        self
    }

    /// Closes and validates the schema.
    pub fn build(self) -> Result<AnnotatedSchema, SchemaError> {
        let arrows: Vec<Edge> = self
            .raw
            .iter()
            .map(|(p, a, q, _)| (p.clone(), a.clone(), q.clone()))
            .collect();
        let schema = WeakSchema::close(self.classes, self.spec, arrows)?;

        // Closed participation: join over the raw arrows deriving each
        // closed arrow. `join` of `1` and `0/1` is `1`; it cannot fail.
        let mut strength: BTreeMap<Edge, Participation> = BTreeMap::new();
        for (q, label, r0, k) in &self.raw {
            let mut sources: Vec<Class> = vec![q.clone()];
            sources.extend(schema.strict_subs(q));
            let mut targets: Vec<Class> = vec![r0.clone()];
            targets.extend(schema.strict_supers(r0).iter().cloned());
            for p in &sources {
                for r in &targets {
                    let key = (p.clone(), label.clone(), r.clone());
                    let entry = strength.entry(key).or_insert(Participation::ZeroOrOne);
                    *entry = entry.join(*k).expect("1 and 0/1 always join");
                }
            }
        }
        let optional: BTreeSet<Edge> = strength
            .into_iter()
            .filter(|(_, k)| *k == Participation::ZeroOrOne)
            .map(|(edge, _)| edge)
            .collect();
        Ok(AnnotatedSchema::from_parts(schema, optional))
    }
}

/// The least upper bound of annotated schemas — the *upper* merge of §4
/// extended pointwise to participation constraints.
///
/// Classes, specializations and arrows join as in Prop. 4.1; each arrow's
/// constraint is the participation *join*, with absence contributing no
/// information (an undrawn arrow does not mean `0` in the upper reading —
/// only the lower merge adopts that convention, §6). The join of `0/1`
/// and `1` is `1`; required-versus-forbidden conflicts cannot arise
/// because absent arrows are silent.
///
/// # Errors
///
/// [`crate::error::MergeError::Incompatible`] on specialization cycles,
/// as for the plain weak join.
pub fn annotated_join<'a>(
    schemas: impl IntoIterator<Item = &'a AnnotatedSchema>,
) -> Result<AnnotatedSchema, crate::error::MergeError> {
    let inputs: Vec<&AnnotatedSchema> = schemas.into_iter().collect();
    let mut builder = AnnotatedSchema::builder();
    for input in &inputs {
        for class in input.schema.classes() {
            builder = builder.class(class.clone());
        }
        for (sub, sup) in input.schema.specialization_pairs() {
            builder = builder.specialize(sub.clone(), sup.clone());
        }
        for (src, label, tgt) in input.schema.arrow_triples() {
            builder = builder.arrow_with(
                src.clone(),
                label.clone(),
                tgt.clone(),
                input.participation(src, label, tgt),
            );
        }
    }
    builder.build().map_err(|err| match err {
        SchemaError::SpecializationCycle(witness) => {
            crate::error::MergeError::Incompatible(witness)
        }
        other => crate::error::MergeError::Schema(other),
    })
}

/// The greatest lower bound of a collection of annotated schemas under the
/// annotated information ordering, after padding each input with the
/// classes of all the others (§6).
///
/// Cannot fail: there is always a common weakening. The GLB of an empty
/// collection is the empty schema.
pub fn lower_merge<'a>(schemas: impl IntoIterator<Item = &'a AnnotatedSchema>) -> AnnotatedSchema {
    let inputs: Vec<&AnnotatedSchema> = schemas.into_iter().collect();
    if inputs.is_empty() {
        return AnnotatedSchema::default();
    }

    // Classes: the union (= the padded intersection).
    let mut classes: BTreeSet<Class> = BTreeSet::new();
    for input in &inputs {
        classes.extend(input.schema.classes().cloned());
    }

    // Specialization: pairs present in every input.
    let mut spec: BTreeMap<Class, BTreeSet<Class>> = BTreeMap::new();
    for (sub, sup) in inputs[0].schema.specialization_pairs() {
        if inputs[1..]
            .iter()
            .all(|g| g.schema.specializes(sub, sup) && sub != sup)
        {
            spec.entry(sub.clone()).or_default().insert(sup.clone());
        }
    }

    // Arrows: per-edge meets. An edge present anywhere survives, weakened
    // to 0/1 unless every input agrees on 1.
    let mut edge_keys: BTreeSet<Edge> = BTreeSet::new();
    for input in &inputs {
        edge_keys.extend(
            input
                .schema
                .arrow_triples()
                .map(|(p, a, q)| (p.clone(), a.clone(), q.clone())),
        );
    }
    let mut arrows: Vec<Edge> = Vec::new();
    let mut optional: BTreeSet<Edge> = BTreeSet::new();
    for edge in edge_keys {
        let (p, a, q) = &edge;
        let met = inputs
            .iter()
            .map(|g| g.participation(p, a, q))
            .reduce(Participation::meet)
            .expect("at least one input");
        if met.is_present() {
            arrows.push(edge.clone());
            if met == Participation::ZeroOrOne {
                optional.insert(edge);
            }
        }
    }

    let schema = WeakSchema::close(classes, spec, arrows)
        .expect("the intersection of partial orders is a partial order");
    AnnotatedSchema::from_parts(schema, optional)
}

/// One union class introduced by lower completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionClassInfo {
    /// The introduced class.
    pub class: Class,
    /// The incomparable arrow targets it was introduced above.
    pub members: BTreeSet<Class>,
    /// An arrow `(source, label)` that required it.
    pub demanded_by: (Class, Label),
}

/// Everything lower completion did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LowerCompletionReport {
    /// The union classes introduced, in introduction order.
    pub unions: Vec<UnionClassInfo>,
    /// Meet-style implicit classes introduced by the conjunctive fallback
    /// (multiple-inheritance target sets that no union class can resolve).
    pub meet_classes: Vec<Class>,
    /// Rounds the fixpoint took.
    pub rounds: usize,
}

/// Builds a proper schema from a weak lower merge by introducing implicit
/// classes *above* incomparable arrow-target sets (§6).
///
/// The paper sketches this step and defers the construction to its
/// reference \[5\]; the fixpoint here is our reconstruction:
///
/// 1. For every `(class, label)` whose target set `T` has no least element,
///    introduce the union class `U = {m₁|…|mₖ}` over `MinS(T)` (flattening
///    existing implicit members), *replace* that class's raw `a`-arrows by
///    a single arrow to `U`, and keep the strongest former participation —
///    the value is in *some* origin's extent, so the replacement only
///    weakens claims, as a lower bound must.
/// 2. Add only sound specializations: each member sits below its union;
///    a union sits below every common generalization of its origins; a
///    union with fewer origins sits below one with more.
/// 3. Re-close and repeat: W1 re-derives inherited arrows (`p ⇒ q` forces
///    `p`'s arrow to `q`'s union class), whose interaction with `p`'s own
///    union is resolved in the next round by origin-set flattening, which
///    only grows origins — guaranteeing termination.
///
/// # Errors
///
/// Returns an error if the fixpoint fails to produce a proper schema
/// within an internal round limit (not observed on any workload; kept as a
/// guard rather than an `unwrap`).
pub fn lower_complete(
    merged: &AnnotatedSchema,
) -> Result<(AnnotatedSchema, ProperSchema, LowerCompletionReport), SchemaError> {
    const MAX_ROUNDS: usize = 100;

    let mut classes: BTreeSet<Class> = merged.schema.classes().cloned().collect();
    let mut spec: BTreeMap<Class, BTreeSet<Class>> = BTreeMap::new();
    for (sub, sup) in merged.schema.specialization_pairs() {
        spec.entry(sub.clone()).or_default().insert(sup.clone());
    }
    // Raw arrows with their participation.
    let mut raw: BTreeMap<(Class, Label), BTreeMap<Class, Participation>> = BTreeMap::new();
    for (p, a, q) in merged.schema.arrow_triples() {
        raw.entry((p.clone(), a.clone()))
            .or_default()
            .insert(q.clone(), merged.participation(p, a, q));
    }

    let mut report = LowerCompletionReport::default();

    for round in 1..=MAX_ROUNDS {
        report.rounds = round;
        let arrows: Vec<Edge> = raw
            .iter()
            .flat_map(|((p, a), targets)| {
                targets
                    .keys()
                    .map(move |q| (p.clone(), a.clone(), q.clone()))
            })
            .collect();
        let schema = WeakSchema::close(classes.clone(), spec.clone(), arrows)?;

        // Find (class, label) pairs without a least target.
        let mut offenders: Vec<(Class, Label, BTreeSet<Class>)> = Vec::new();
        for p in schema.classes() {
            for label in schema.labels_of(p) {
                let targets = schema.arrow_targets(p, &label);
                if order::least_element(&schema.supers, &targets).is_none() {
                    offenders.push((p.clone(), label.clone(), targets));
                }
            }
        }
        if offenders.is_empty() {
            return finish(schema, &raw, report);
        }

        let mut changed = false;
        for (p, label, targets) in offenders {
            let minimal = schema.min_s(&targets);
            let union = Class::implicit_union(minimal.iter().cloned());
            if classes.insert(union.clone()) {
                changed = true;
                report.unions.push(UnionClassInfo {
                    class: union.clone(),
                    members: minimal.clone(),
                    demanded_by: (p.clone(), label.clone()),
                });
            }

            // Members sit below their union.
            for member in &minimal {
                changed |= spec
                    .entry(member.clone())
                    .or_default()
                    .insert(union.clone());
            }
            // The union sits below every common generalization of its
            // members (sound: the value is in some member's extent, hence
            // in every common superclass's extent).
            let mut commons: Option<BTreeSet<Class>> = None;
            for member in &minimal {
                let ups = schema.strict_supers(member);
                commons = Some(match commons {
                    None => ups,
                    Some(acc) => acc.intersection(&ups).cloned().collect(),
                });
            }
            for common in commons.unwrap_or_default() {
                if !common.is_implicit_union() {
                    changed |= spec.entry(union.clone()).or_default().insert(common);
                }
            }

            // Replace the raw `label`-arrows the union COVERS (targets
            // at or below a member) with the single union arrow; their
            // strongest participation transfers soundly, since a value
            // in a member's extent is in the union's. Targets the union
            // does not cover — e.g. a class above ONE member but not the
            // others — keep their own arrows and participations: folding
            // a required arrow to such a target into the union would
            // claim every value lies in the union, which member
            // instances need not satisfy. A later round unifies the
            // leftovers into a wider union.
            let former = raw.remove(&(p.clone(), label.clone())).unwrap_or_default();
            let mut replacement = BTreeMap::new();
            let mut union_participation = Participation::ZeroOrOne;
            for (q, k) in former.iter() {
                let covered = minimal.iter().any(|member| schema.specializes(q, member));
                if covered {
                    union_participation = union_participation.join(*k).expect("1 and 0/1 join");
                } else {
                    replacement.insert(q.clone(), *k);
                }
            }
            replacement.insert(union.clone(), union_participation);
            changed |= replacement != former;
            raw.insert((p, label), replacement);
        }

        // Union-over-fewer-origins ⇒ union-over-more-origins: a subset
        // union covers a subset of the extent.
        let union_classes: Vec<Class> = classes
            .iter()
            .filter(|c| c.is_implicit_union())
            .cloned()
            .collect();
        for u1 in &union_classes {
            for u2 in &union_classes {
                if u1 == u2 {
                    continue;
                }
                let (o1, o2) = (
                    u1.origin().expect("union has origin"),
                    u2.origin().expect("union has origin"),
                );
                if o1.is_subset(o2) {
                    changed |= spec.entry(u1.clone()).or_default().insert(u2.clone());
                }
            }
        }

        if !changed {
            // Stall: the remaining offenders are *conjunctive* — a class
            // inherits incomparable targets through several superclasses
            // (multiple inheritance), so no union class above can be least.
            //
            // Two cases. If a conjunction involves UNION targets (e.g.
            // `{A|D}` and `{C|E}`), the least class below them would be a
            // meet of unions, which the flat origin-set representation
            // cannot express — flattening it to `{A,C,D,E}` would wrongly
            // claim the four-way intersection. The GLB direction licenses
            // losing precision instead: weaken the contributing arrows to
            // the single covering union and iterate.
            let arrows: Vec<Edge> = raw
                .iter()
                .flat_map(|((p, a), targets)| {
                    targets
                        .keys()
                        .map(move |q| (p.clone(), a.clone(), q.clone()))
                })
                .collect();
            let schema = WeakSchema::close(classes.clone(), spec.clone(), arrows)?;
            let mut coarsened = false;
            let mut stalled: Vec<(Class, Label, BTreeSet<Class>)> = Vec::new();
            for p in schema.classes() {
                for label in schema.labels_of(p) {
                    let targets = schema.arrow_targets(p, &label);
                    if order::least_element(&schema.supers, &targets).is_none() {
                        stalled.push((p.clone(), label.clone(), targets));
                    }
                }
            }
            for (p, label, targets) in &stalled {
                let minimal = schema.min_s(targets.iter());
                if !minimal.iter().any(Class::is_implicit_union) {
                    continue;
                }
                let union = Class::implicit_union(minimal.iter().cloned());
                if classes.insert(union.clone()) {
                    report.unions.push(UnionClassInfo {
                        class: union.clone(),
                        members: minimal.clone(),
                        demanded_by: (p.clone(), label.clone()),
                    });
                }
                for member in &minimal {
                    spec.entry(member.clone())
                        .or_default()
                        .insert(union.clone());
                }
                // Every raw arrow the offender inherits under this label
                // is weakened to the covering union.
                let contributing: Vec<(Class, Label)> = raw
                    .keys()
                    .filter(|(q, a)| a == label && schema.specializes(p, q))
                    .cloned()
                    .collect();
                for key in contributing {
                    let former = raw.remove(&key).unwrap_or_default();
                    let strongest = former
                        .values()
                        .copied()
                        .fold(Participation::ZeroOrOne, |acc, k| {
                            acc.join(k).expect("1 and 0/1 join")
                        });
                    let mut replacement = BTreeMap::new();
                    replacement.insert(union.clone(), strongest);
                    if replacement != former {
                        coarsened = true;
                    }
                    raw.insert(key, replacement);
                }
            }
            if coarsened {
                continue;
            }

            // Otherwise the conjunction is over NAMED classes only, and
            // the §4.2 meet completion (whose flat meets of names are
            // exactly intersections) is total, proper and sound.
            let (proper, meet_report) = crate::complete::complete_with_report(&schema)?;
            report.meet_classes = meet_report
                .implicit
                .iter()
                .map(|i| i.class.clone())
                .collect();
            return finish(proper.into_weak(), &raw, report);
        }
    }

    Err(SchemaError::NoCanonicalClass {
        class: Class::named("<lower-completion-diverged>"),
        label: Label::new("<internal>"),
        minimal_targets: vec![],
    })
}

/// Wraps up a proper lower completion: recomputes participation for the
/// final closed arrows (strongest constraint among the raw arrows deriving
/// each; arrows only derivable through introduced classes stay optional)
/// and packages the result.
fn finish(
    schema: WeakSchema,
    raw: &BTreeMap<(Class, Label), BTreeMap<Class, Participation>>,
    report: LowerCompletionReport,
) -> Result<(AnnotatedSchema, ProperSchema, LowerCompletionReport), SchemaError> {
    let proper = ProperSchema::try_new(schema.clone())?;
    let mut optional: BTreeSet<Edge> = BTreeSet::new();
    for (p, a, q) in schema.arrow_triples() {
        let mut strongest = Participation::ZeroOrOne;
        for ((rp, ra), targets) in raw {
            if ra != a || !schema.specializes(p, rp) {
                continue;
            }
            for (rq, k) in targets {
                if schema.specializes(rq, q) {
                    strongest = strongest.join(*k).expect("1 and 0/1 join");
                }
            }
        }
        if strongest == Participation::ZeroOrOne {
            optional.insert((p.clone(), a.clone(), q.clone()));
        }
    }
    let annotated = AnnotatedSchema::from_parts(schema, optional);
    Ok((annotated, proper, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn dog_name_age() -> AnnotatedSchema {
        AnnotatedSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap()
    }

    fn dog_name_breed() -> AnnotatedSchema {
        AnnotatedSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "breed", "Breed")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_defaults_to_required() {
        let g = dog_name_age();
        assert_eq!(
            g.participation(&c("Dog"), &l("name"), &c("string")),
            Participation::One
        );
        assert_eq!(
            g.participation(&c("Dog"), &l("breed"), &c("Breed")),
            Participation::Zero,
            "absent arrows read as 0"
        );
    }

    #[test]
    fn builder_optional_arrows() {
        let g = AnnotatedSchema::builder()
            .optional_arrow("Dog", "license", "int")
            .build()
            .unwrap();
        assert_eq!(
            g.participation(&c("Dog"), &l("license"), &c("int")),
            Participation::ZeroOrOne
        );
        assert_eq!(g.num_optional(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn closure_keeps_required_strength() {
        // Puppy ⇒ Dog with a required Dog arrow: the derived Puppy arrow
        // is also required. An optional raw arrow stays optional.
        let g = AnnotatedSchema::builder()
            .specialize("Puppy", "Dog")
            .arrow("Dog", "age", "int")
            .optional_arrow("Dog", "chip", "int")
            .build()
            .unwrap();
        assert_eq!(
            g.participation(&c("Puppy"), &l("age"), &c("int")),
            Participation::One
        );
        assert_eq!(
            g.participation(&c("Puppy"), &l("chip"), &c("int")),
            Participation::ZeroOrOne
        );
    }

    #[test]
    fn required_raw_dominates_optional_raw() {
        let g = AnnotatedSchema::builder()
            .optional_arrow("A", "f", "B")
            .arrow("A", "f", "B")
            .build()
            .unwrap();
        assert_eq!(
            g.participation(&c("A"), &l("f"), &c("B")),
            Participation::One
        );
    }

    #[test]
    fn section_6_dog_example() {
        // One schema has Dog{name, age}, the other Dog{name, breed}. The
        // lower merge keeps name required and weakens age/breed to 0/1 —
        // instead of losing them as a plain GLB would.
        let merged = lower_merge([&dog_name_age(), &dog_name_breed()]);
        assert_eq!(
            merged.participation(&c("Dog"), &l("name"), &c("string")),
            Participation::One
        );
        assert_eq!(
            merged.participation(&c("Dog"), &l("age"), &c("int")),
            Participation::ZeroOrOne
        );
        assert_eq!(
            merged.participation(&c("Dog"), &l("breed"), &c("Breed")),
            Participation::ZeroOrOne
        );
        // Classes from both sides survive (the padding step).
        assert!(merged.schema().contains_class(&c("Breed")));
        assert!(merged.schema().contains_class(&c("int")));
    }

    #[test]
    fn missing_class_is_padded_in() {
        // §6: "if one schema has the class Guide-Dog and another does not".
        let g1 = AnnotatedSchema::builder()
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder().class("Dog").build().unwrap();
        let merged = lower_merge([&g1, &g2]);
        assert!(merged.schema().contains_class(&c("Guide-dog")));
        // But the isa edge is only in one input, so it is dropped.
        assert!(!merged.schema().specializes(&c("Guide-dog"), &c("Dog")));
    }

    #[test]
    fn specialization_survives_when_shared() {
        let g1 = AnnotatedSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let merged = lower_merge([&g1, &g2]);
        assert!(merged.schema().specializes(&c("Guide-dog"), &c("Dog")));
        assert_eq!(
            merged.participation(&c("Guide-dog"), &l("age"), &c("int")),
            Participation::ZeroOrOne
        );
    }

    #[test]
    fn lower_merge_is_glb() {
        let g1 = dog_name_age();
        let g2 = dog_name_breed();
        let merged = lower_merge([&g1, &g2]);

        // Lower bound of the padded inputs.
        let classes: Vec<Class> = merged.schema().classes().cloned().collect();
        let p1 = g1.pad_with_classes(classes.clone());
        let p2 = g2.pad_with_classes(classes.clone());
        assert!(merged.is_sub_annotated(&p1));
        assert!(merged.is_sub_annotated(&p2));

        // Greatest: another lower bound is below the merge.
        let other = AnnotatedSchema::builder()
            .classes(classes.iter().cloned())
            .optional_arrow("Dog", "name", "string")
            .optional_arrow("Dog", "age", "int")
            .optional_arrow("Dog", "breed", "Breed")
            .build()
            .unwrap();
        assert!(other.is_sub_annotated(&p1) && other.is_sub_annotated(&p2));
        assert!(other.is_sub_annotated(&merged));
    }

    #[test]
    fn lower_merge_laws() {
        let g1 = dog_name_age();
        let g2 = dog_name_breed();
        let g3 = AnnotatedSchema::builder()
            .optional_arrow("Dog", "name", "string")
            .build()
            .unwrap();
        // Commutative / associative / idempotent (up to padding).
        assert_eq!(lower_merge([&g1, &g2]), lower_merge([&g2, &g1]));
        let left = lower_merge([&lower_merge([&g1, &g2]), &g3]);
        let right = lower_merge([&g1, &lower_merge([&g2, &g3])]);
        assert_eq!(left, right);
        assert_eq!(lower_merge([&left]), left, "n=1 is identity");
        assert_eq!(lower_merge([&g1, &g1]), g1);
        // Empty collection.
        assert_eq!(
            lower_merge(std::iter::empty::<&AnnotatedSchema>()),
            AnnotatedSchema::default()
        );
    }

    #[test]
    fn annotated_order_is_partial_order() {
        let g1 = dog_name_age();
        let g2 = dog_name_breed();
        let merged = lower_merge([&g1, &g2]);
        for g in [&g1, &g2, &merged] {
            assert!(g.is_sub_annotated(g), "reflexive");
        }
        // Antisymmetry on this sample: mutual containment implies equality.
        let padded = g1.pad_with_classes(merged.schema().classes().cloned());
        if merged.is_sub_annotated(&padded) && padded.is_sub_annotated(&merged) {
            assert_eq!(merged, padded);
        }
    }

    #[test]
    fn lower_complete_introduces_union_class() {
        // G1: Pet --home--> House; G2: Pet --home--> Kennel. The lower
        // merge has two incomparable optional targets; completion points
        // home at {House|Kennel}.
        let g1 = AnnotatedSchema::builder()
            .arrow("Pet", "home", "House")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .arrow("Pet", "home", "Kennel")
            .build()
            .unwrap();
        let merged = lower_merge([&g1, &g2]);
        let (annotated, proper, report) = lower_complete(&merged).unwrap();

        let u = Class::implicit_union([c("House"), c("Kennel")]);
        assert_eq!(report.unions.len(), 1);
        assert_eq!(report.unions[0].class, u);
        assert_eq!(proper.canonical_target(&c("Pet"), &l("home")), Some(&u));
        // Members sit below the union.
        assert!(proper.specializes(&c("House"), &u));
        assert!(proper.specializes(&c("Kennel"), &u));
        // Per-arrow meets (the §6 rule) weaken each branch to 0/1 — each
        // input lacks the other's arrow — so the union arrow is optional.
        // Label-level requiredness ("every input demands *some* home") is
        // not expressible per-arrow; the paper's construction shares this.
        assert_eq!(
            annotated.participation(&c("Pet"), &l("home"), &u),
            Participation::ZeroOrOne
        );
    }

    #[test]
    fn lower_complete_weakens_participation_when_one_side_lacks_arrow() {
        let g1 = AnnotatedSchema::builder()
            .arrow("Pet", "home", "House")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .class("Pet")
            .arrow("Pet", "vet", "Vet")
            .build()
            .unwrap();
        let merged = lower_merge([&g1, &g2]);
        // Only one target each: no union class needed, just weakening.
        let (annotated, proper, report) = lower_complete(&merged).unwrap();
        assert_eq!(report.unions.len(), 0);
        assert_eq!(
            annotated.participation(&c("Pet"), &l("home"), &c("House")),
            Participation::ZeroOrOne
        );
        assert!(proper.check_d1());
    }

    #[test]
    fn lower_complete_already_proper_is_identity_shape() {
        let g = dog_name_age();
        let (annotated, proper, report) = lower_complete(&g).unwrap();
        assert_eq!(report.unions.len(), 0);
        assert_eq!(annotated, g);
        assert_eq!(proper.as_weak(), g.schema());
    }

    #[test]
    fn lower_complete_with_inheritance_interaction() {
        // Both inputs share Student ⇒ Person, but disagree on the `phone`
        // target at both levels. The fixpoint must terminate with a proper
        // schema where canonical targets respect D2.
        let g1 = AnnotatedSchema::builder()
            .specialize("Student", "Person")
            .arrow("Person", "phone", "Home")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .specialize("Student", "Person")
            .arrow("Person", "phone", "Mobile")
            .arrow("Student", "phone", "CampusMobile")
            .build()
            .unwrap();
        let merged = lower_merge([&g1, &g2]);
        let (_, proper, report) = lower_complete(&merged).unwrap();
        assert!(report.rounds >= 1);
        assert!(proper.check_d1());
        assert!(proper.check_d2());
        // Person's phone target is a union over Home and Mobile.
        let person_target = proper.canonical_target(&c("Person"), &l("phone")).unwrap();
        assert!(person_target.is_implicit_union());
    }

    #[test]
    fn union_subset_ordering() {
        // With three-way disagreement the nested unions relate by origin
        // inclusion.
        let gs: Vec<AnnotatedSchema> = ["A", "B", "C"]
            .iter()
            .map(|t| {
                AnnotatedSchema::builder()
                    .arrow("P", "f", *t)
                    .build()
                    .unwrap()
            })
            .collect();
        let merged = lower_merge(gs.iter());
        let (_, proper, _) = lower_complete(&merged).unwrap();
        let abc = Class::implicit_union([c("A"), c("B"), c("C")]);
        assert_eq!(proper.canonical_target(&c("P"), &l("f")), Some(&abc));
    }

    #[test]
    fn annotated_display_marks_optional() {
        let g = AnnotatedSchema::builder()
            .arrow("A", "f", "B")
            .optional_arrow("A", "g", "C")
            .build()
            .unwrap();
        let text = g.to_string();
        assert!(text.contains("A --f--> B"));
        assert!(text.contains("A --g?--> C"));
    }

    #[test]
    fn transfer_to_keeps_annotations_through_completion() {
        let annotated = AnnotatedSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .optional_arrow("C", "g", "D")
            .build()
            .unwrap();
        let proper = crate::complete(annotated.schema()).unwrap();
        let transferred = annotated.transfer_to(proper.as_weak());
        assert!(transferred.validate().is_ok());
        // The optional arrow stays 0/1; completion's implicit-class
        // arrow is required.
        assert_eq!(
            transferred.participation(&c("C"), &l("g"), &c("D")),
            Participation::ZeroOrOne
        );
        let implicit = Class::implicit([c("B1"), c("B2")]);
        assert_eq!(
            transferred.participation(&c("C"), &l("a"), &implicit),
            Participation::One
        );
        // Annotations on arrows absent from the target are dropped, so
        // the result always validates.
        let unrelated = WeakSchema::builder().arrow("X", "y", "Z").build().unwrap();
        let pruned = annotated.transfer_to(&unrelated);
        assert!(pruned.validate().is_ok());
        assert_eq!(pruned.num_optional(), 0);
    }

    #[test]
    fn validate_rejects_phantom_annotation() {
        let schema = WeakSchema::builder().arrow("A", "f", "B").build().unwrap();
        let mut optional = BTreeSet::new();
        optional.insert((c("A"), l("nope"), c("B")));
        let bogus = AnnotatedSchema { schema, optional };
        assert!(matches!(
            bogus.validate(),
            Err(SchemaError::AnnotationOnMissingArrow { .. })
        ));
    }

    #[test]
    fn annotated_join_takes_strongest_participation() {
        let g1 = AnnotatedSchema::builder()
            .optional_arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .arrow("Dog", "age", "int")
            .arrow("Dog", "name", "text")
            .build()
            .unwrap();
        let joined = annotated_join([&g1, &g2]).unwrap();
        assert_eq!(
            joined.participation(&c("Dog"), &l("age"), &c("int")),
            Participation::One,
            "required wins over optional"
        );
        assert_eq!(
            joined.participation(&c("Dog"), &l("name"), &c("text")),
            Participation::One,
            "absence is silent in the upper reading"
        );
    }

    #[test]
    fn annotated_join_laws() {
        let g1 = dog_name_age();
        let g2 = dog_name_breed();
        let ab = annotated_join([&g1, &g2]).unwrap();
        let ba = annotated_join([&g2, &g1]).unwrap();
        assert_eq!(ab, ba);
        assert_eq!(annotated_join([&g1, &g1]).unwrap(), g1);
    }

    #[test]
    fn annotated_join_detects_cycles() {
        let g1 = AnnotatedSchema::builder()
            .specialize("A", "B")
            .build()
            .unwrap();
        let g2 = AnnotatedSchema::builder()
            .specialize("B", "A")
            .build()
            .unwrap();
        assert!(matches!(
            annotated_join([&g1, &g2]),
            Err(crate::error::MergeError::Incompatible(_))
        ));
    }
}
