//! Proper schemas: weak schemas with canonical arrow targets (§2).
//!
//! A *proper* schema additionally satisfies condition 1: whenever `p` has
//! an `a`-arrow there is a least class `s` (the **canonical class** of the
//! `a`-arrow of `p`) with `p --a--> s`. Writing `p ·a⇀ q` for "q is the
//! canonical class of p's a-arrow" recovers the functional-data-model
//! presentation: the paper's conditions
//!
//! * **D1** — `p ·a⇀ q₁` and `p ·a⇀ q₂` imply `q₁ = q₂`, and
//! * **D2** — `q ·a⇀ s` and `p ⇒ q` imply some `r ⇒ s` with `p ·a⇀ r`
//!
//! hold, and conversely the closed arrow relation is recovered from `⇀` by
//! `p --a--> q  iff  ∃s ⇒ q . p ·a⇀ s`. [`ProperSchema`] exposes both
//! views.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Deref;

use crate::class::Class;
use crate::error::SchemaError;
use crate::name::Label;
use crate::order;
use crate::weak::WeakSchema;

/// A weak schema verified to satisfy condition 1 of §2.
///
/// Dereferences to [`WeakSchema`], so every weak-schema query is available;
/// the extra API is the canonical (functional) view.
#[derive(Clone, PartialEq, Eq)]
pub struct ProperSchema {
    schema: WeakSchema,
    /// `p ↦ a ↦ s` where `s` is the canonical class of the `a`-arrow of `p`.
    canonical: BTreeMap<Class, BTreeMap<Label, Class>>,
}

impl ProperSchema {
    /// Validates condition 1 and constructs the canonical view.
    pub fn try_new(schema: WeakSchema) -> Result<Self, SchemaError> {
        let mut canonical: BTreeMap<Class, BTreeMap<Label, Class>> = BTreeMap::new();
        for (src, by_label) in &schema.arrows {
            for (label, targets) in by_label {
                // Singleton target sets (the overwhelmingly common case)
                // are trivially canonical; the order machinery is only
                // consulted for genuine multi-target arrows.
                let least = if targets.len() == 1 {
                    targets.iter().next()
                } else {
                    order::least_element(&schema.supers, targets)
                };
                match least {
                    Some(least) => {
                        canonical
                            .entry(src.clone())
                            .or_default()
                            .insert(label.clone(), least.clone());
                    }
                    None => {
                        let minimal = schema.min_s(targets).into_iter().collect();
                        return Err(SchemaError::NoCanonicalClass {
                            class: src.clone(),
                            label: label.clone(),
                            minimal_targets: minimal,
                        });
                    }
                }
            }
        }
        Ok(ProperSchema { schema, canonical })
    }

    /// [`ProperSchema::try_new`] with the canonical view built from the
    /// schema's compiled twin — id-space bit tests instead of symbolic
    /// order walks. `compiled` must be the compiled form of `schema`; the
    /// result (including the failure witness) is identical to
    /// [`ProperSchema::try_new`] on `schema` alone.
    pub(crate) fn from_compiled(
        schema: WeakSchema,
        compiled: &crate::compile::CompiledSchema,
    ) -> Result<Self, SchemaError> {
        let canonical = crate::compile::canonical_map(compiled)?;
        Ok(ProperSchema { schema, canonical })
    }

    /// Stitches proper schemas over pairwise-disjoint class sets into one
    /// proper schema — the partitioned merge's seam join. Disjointness
    /// keeps the union proper: a canonical target is the least element of
    /// a target set, and classes from another component cannot enter that
    /// set, so the canonical views concatenate verbatim.
    pub(crate) fn disjoint_union(pieces: impl IntoIterator<Item = ProperSchema>) -> ProperSchema {
        let mut schema = WeakSchema::empty();
        let mut canonical: BTreeMap<Class, BTreeMap<Label, Class>> = BTreeMap::new();
        for piece in pieces {
            schema.classes.extend(piece.schema.classes);
            schema.supers.extend(piece.schema.supers);
            schema.arrows.extend(piece.schema.arrows);
            canonical.extend(piece.canonical);
        }
        ProperSchema { schema, canonical }
    }

    /// The underlying weak schema.
    pub fn as_weak(&self) -> &WeakSchema {
        &self.schema
    }

    /// Consumes the wrapper, returning the weak schema.
    pub fn into_weak(self) -> WeakSchema {
        self.schema
    }

    /// The canonical content hash — identical to
    /// [`WeakSchema::content_hash`] of the underlying weak schema, since
    /// the canonical view is derived data. Stable across class ordering;
    /// see the weak-schema method for the framing.
    pub fn content_hash(&self) -> u64 {
        self.schema.content_hash()
    }

    /// The canonical class of the `a`-arrow of `p` — the least target, `p
    /// ·a⇀ q` (§2).
    pub fn canonical_target(&self, class: &Class, label: &Label) -> Option<&Class> {
        self.canonical.get(class).and_then(|m| m.get(label))
    }

    /// All canonical arrows `(p, a, q)` with `p ·a⇀ q`.
    pub fn canonical_arrows(&self) -> impl Iterator<Item = (&Class, &Label, &Class)> {
        self.canonical.iter().flat_map(|(src, by_label)| {
            by_label
                .iter()
                .map(move |(label, target)| (src, label, target))
        })
    }

    /// Number of canonical arrows (one per `(class, label)` pair with any
    /// arrows at all).
    pub fn num_canonical_arrows(&self) -> usize {
        self.canonical.values().map(BTreeMap::len).sum()
    }

    /// Checks D1 for this schema's canonical relation. D1 holds by
    /// construction (the canonical map is keyed on `(class, label)`);
    /// exposed as a verifiable property for tests.
    pub fn check_d1(&self) -> bool {
        // The BTreeMap representation cannot express a violation; verify
        // instead that each canonical target is genuinely least.
        self.canonical.iter().all(|(src, by_label)| {
            by_label.iter().all(|(label, target)| {
                let targets = self.schema.arrow_targets(src, label);
                targets.contains(target)
                    && targets.iter().all(|t| self.schema.specializes(target, t))
            })
        })
    }

    /// Checks D2: if `q ·a⇀ s` and `p ⇒ q` then `p ·a⇀ r` for some
    /// `r ⇒ s`.
    pub fn check_d2(&self) -> bool {
        for (q, by_label) in &self.canonical {
            for (label, s) in by_label {
                for p in self.schema.classes() {
                    if p == q || !self.schema.specializes(p, q) {
                        continue;
                    }
                    match self.canonical_target(p, label) {
                        Some(r) if self.schema.specializes(r, s) => {}
                        _ => return false,
                    }
                }
            }
        }
        true
    }

    /// Reconstructs the closed arrow relation from the canonical one:
    /// `p --a--> q  iff  ∃s . s ⇒ q and p ·a⇀ s`. Equality with the stored
    /// relation is the §2 equivalence of the two presentations; exposed for
    /// tests.
    pub fn arrows_from_canonical(&self) -> BTreeSet<(Class, Label, Class)> {
        let mut out = BTreeSet::new();
        for (p, by_label) in &self.canonical {
            for (label, s) in by_label {
                out.insert((p.clone(), label.clone(), s.clone()));
                for q in self.schema.strict_supers(s) {
                    out.insert((p.clone(), label.clone(), q.clone()));
                }
            }
        }
        out
    }
}

impl Deref for ProperSchema {
    type Target = WeakSchema;

    fn deref(&self) -> &WeakSchema {
        &self.schema
    }
}

impl TryFrom<WeakSchema> for ProperSchema {
    type Error = SchemaError;

    fn try_from(schema: WeakSchema) -> Result<Self, SchemaError> {
        ProperSchema::try_new(schema)
    }
}

impl fmt::Debug for ProperSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProperSchema({})", self.schema)
    }
}

impl fmt::Display for ProperSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.schema.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn single_target_is_canonical() {
        let p = ProperSchema::try_new(
            WeakSchema::builder()
                .arrow("Dog", "age", "int")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.canonical_target(&c("Dog"), &l("age")), Some(&c("int")));
    }

    #[test]
    fn chain_of_targets_has_least() {
        // A --a--> B1, B1 ⇒ B2: targets {B1, B2}, canonical B1.
        let p = ProperSchema::try_new(
            WeakSchema::builder()
                .specialize("B1", "B2")
                .arrow("A", "a", "B1")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.canonical_target(&c("A"), &l("a")), Some(&c("B1")));
        assert_eq!(p.num_canonical_arrows(), 1);
    }

    #[test]
    fn incomparable_targets_fail_condition_1() {
        // C --a--> B1 and C --a--> B2 with B1, B2 incomparable: the Fig. 3
        // situation before completion.
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let err = ProperSchema::try_new(weak).unwrap_err();
        match err {
            SchemaError::NoCanonicalClass {
                class,
                label,
                minimal_targets,
            } => {
                assert_eq!(class, c("C"));
                assert_eq!(label, l("a"));
                assert_eq!(minimal_targets, vec![c("B1"), c("B2")]);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn d1_and_d2_hold_for_valid_proper_schemas() {
        let p = ProperSchema::try_new(
            WeakSchema::builder()
                .specialize("Police-dog", "Dog")
                .arrow("Dog", "age", "int")
                .arrow("Police-dog", "id", "int")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(p.check_d1());
        assert!(p.check_d2());
    }

    #[test]
    fn d2_with_refined_targets() {
        // Guide-dog ⇒ Dog; Dog --home--> Kennel; Guide-dog --home--> K2
        // with K2 ⇒ Kennel: the guide dog's canonical home is refined.
        let p = ProperSchema::try_new(
            WeakSchema::builder()
                .specialize("Guide-dog", "Dog")
                .specialize("K2", "Kennel")
                .arrow("Dog", "home", "Kennel")
                .arrow("Guide-dog", "home", "K2")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            p.canonical_target(&c("Dog"), &l("home")),
            Some(&c("Kennel"))
        );
        assert_eq!(
            p.canonical_target(&c("Guide-dog"), &l("home")),
            Some(&c("K2"))
        );
        assert!(p.check_d2());
    }

    #[test]
    fn arrows_from_canonical_recovers_closed_relation() {
        let weak = WeakSchema::builder()
            .specialize("B1", "B2")
            .specialize("Sub", "A")
            .arrow("A", "a", "B1")
            .build()
            .unwrap();
        let p = ProperSchema::try_new(weak.clone()).unwrap();
        let rebuilt = p.arrows_from_canonical();
        let stored: BTreeSet<(Class, Label, Class)> = weak
            .arrow_triples()
            .map(|(a, b, x)| (a.clone(), b.clone(), x.clone()))
            .collect();
        assert_eq!(rebuilt, stored);
    }

    #[test]
    fn deref_exposes_weak_queries() {
        let p = ProperSchema::try_new(WeakSchema::builder().arrow("A", "a", "B").build().unwrap())
            .unwrap();
        assert!(p.contains_class(&c("A")));
        assert_eq!(p.num_arrows(), 1);
    }

    #[test]
    fn empty_schema_is_proper() {
        let p = ProperSchema::try_new(WeakSchema::empty()).unwrap();
        assert_eq!(p.num_canonical_arrows(), 0);
        assert!(p.check_d1() && p.check_d2());
    }

    #[test]
    fn implicit_class_can_be_canonical() {
        // After completion the canonical target of C's a-arrow is {B1,B2}.
        let x = Class::implicit([c("B1"), c("B2")]);
        let p = ProperSchema::try_new(
            WeakSchema::builder()
                .specialize(x.clone(), "B1")
                .specialize(x.clone(), "B2")
                .arrow("C", "a", x.clone())
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(p.canonical_target(&c("C"), &l("a")), Some(&x));
    }
}
