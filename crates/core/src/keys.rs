//! Key constraints and their merge (§5).
//!
//! A key for a class `p` is a set of labels of arrows out of `p`; a
//! *superkey* is any superset of a key. The superkey family `SK(p)` is
//! upward closed, so it is represented by its **antichain of minimal key
//! sets** ([`SuperkeyFamily`]). Classes with *no* key at all model object
//! identity.
//!
//! Specialization constrains keys: `p ⇒ q  ⟹  SK(p) ⊇ SK(q)` — every key
//! of a superclass is a (super)key of the subclass. When merging, a
//! *satisfactory* assignment must contain each input's keys and respect
//! that constraint; satisfactory assignments are closed under pointwise
//! intersection, so a unique **minimal satisfactory assignment** exists and
//! is computed by [`KeyAssignment::minimal_satisfactory`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::class::Class;
use crate::error::SchemaError;
use crate::name::Label;
use crate::weak::WeakSchema;

/// A set of arrow labels forming a (super)key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeySet(BTreeSet<Label>);

impl KeySet {
    /// Creates a key set from labels.
    pub fn new<I>(labels: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Label>,
    {
        KeySet(labels.into_iter().map(Into::into).collect())
    }

    /// The empty key set: every pair of instances agrees on it, so a class
    /// carrying it can have at most one instance. Valid but degenerate.
    pub fn empty() -> Self {
        KeySet::default()
    }

    /// Iterates over the labels in sorted order.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.0.iter()
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &KeySet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Whether `label` participates in the key.
    pub fn contains(&self, label: &Label) -> bool {
        self.0.contains(label)
    }

    /// The union of two key sets.
    pub fn union(&self, other: &KeySet) -> KeySet {
        KeySet(self.0.union(&other.0).cloned().collect())
    }
}

impl fmt::Debug for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeySet{self}")
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, label) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{label}")?;
        }
        write!(f, "}}")
    }
}

impl<I, T> From<I> for KeySet
where
    I: IntoIterator<Item = T>,
    T: Into<Label>,
{
    fn from(labels: I) -> Self {
        KeySet::new(labels)
    }
}

/// An upward-closed family of superkeys, stored as the antichain of its
/// minimal elements (the keys proper).
///
/// The empty family (`SuperkeyFamily::none`) is "no keys": object
/// identity. It is the bottom of the family ordering.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct SuperkeyFamily {
    /// Pairwise ⊆-incomparable minimal key sets.
    minimal: BTreeSet<KeySet>,
}

impl SuperkeyFamily {
    /// The family with no keys at all (object identity).
    pub fn none() -> Self {
        SuperkeyFamily::default()
    }

    /// A family with a single key.
    pub fn single(key: impl Into<KeySet>) -> Self {
        let mut family = SuperkeyFamily::none();
        family.insert_key(key.into());
        family
    }

    /// A family from several keys (non-minimal ones are absorbed).
    pub fn from_keys<I>(keys: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<KeySet>,
    {
        let mut family = SuperkeyFamily::none();
        for key in keys {
            family.insert_key(key.into());
        }
        family
    }

    /// Adds a key, maintaining the antichain: supersets of an existing key
    /// are absorbed, existing keys that become supersets are dropped.
    pub fn insert_key(&mut self, key: KeySet) {
        if self.is_superkey(&key) {
            return;
        }
        self.minimal.retain(|existing| !key.is_subset(existing));
        self.minimal.insert(key);
    }

    /// Whether `candidate` is a superkey: some minimal key is contained in
    /// it.
    pub fn is_superkey(&self, candidate: &KeySet) -> bool {
        self.minimal.iter().any(|key| key.is_subset(candidate))
    }

    /// The minimal keys, in sorted order.
    pub fn minimal_keys(&self) -> impl Iterator<Item = &KeySet> {
        self.minimal.iter()
    }

    /// Number of minimal keys.
    pub fn num_keys(&self) -> usize {
        self.minimal.len()
    }

    /// Whether the family has no keys (object identity).
    pub fn is_none(&self) -> bool {
        self.minimal.is_empty()
    }

    /// Family union: the upward closure of the union of the two families
    /// (`SK ∪ SK'`). The join of the family lattice.
    pub fn union(&self, other: &SuperkeyFamily) -> SuperkeyFamily {
        let mut out = self.clone();
        for key in &other.minimal {
            out.insert_key(key.clone());
        }
        out
    }

    /// Family intersection: `U(A) ∩ U(B) = U({a ∪ b | a ∈ A, b ∈ B})` for
    /// upward-closed families. The meet of the family lattice, used in the
    /// proof that satisfactory assignments are intersection-closed (§5).
    pub fn intersection(&self, other: &SuperkeyFamily) -> SuperkeyFamily {
        let mut out = SuperkeyFamily::none();
        for a in &self.minimal {
            for b in &other.minimal {
                out.insert_key(a.union(b));
            }
        }
        out
    }

    /// Whether `self ⊇ other` as upward-closed families: every superkey of
    /// `other` is a superkey of `self`.
    pub fn contains_family(&self, other: &SuperkeyFamily) -> bool {
        other.minimal.iter().all(|key| self.is_superkey(key))
    }
}

impl fmt::Debug for SuperkeyFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SuperkeyFamily{self}")
    }
}

impl fmt::Display for SuperkeyFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, key) in self.minimal.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{key}")?;
        }
        write!(f, "}}")
    }
}

/// An assignment of superkey families to (some) classes of a schema.
/// Classes without an entry have no keys (object identity).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct KeyAssignment {
    families: BTreeMap<Class, SuperkeyFamily>,
}

impl KeyAssignment {
    /// The empty assignment.
    pub fn new() -> Self {
        KeyAssignment::default()
    }

    /// Sets the family for a class (replacing any previous one). Empty
    /// families are normalized away.
    pub fn set(&mut self, class: impl Into<Class>, family: SuperkeyFamily) {
        let class = class.into();
        if family.is_none() {
            self.families.remove(&class);
        } else {
            self.families.insert(class, family);
        }
    }

    /// Adds a single key to a class's family.
    pub fn add_key(&mut self, class: impl Into<Class>, key: impl Into<KeySet>) {
        self.families
            .entry(class.into())
            .or_default()
            .insert_key(key.into());
    }

    /// The family for `class` (the empty family if none was assigned).
    pub fn family(&self, class: &Class) -> SuperkeyFamily {
        self.families.get(class).cloned().unwrap_or_default()
    }

    /// The classes with at least one key.
    pub fn keyed_classes(&self) -> impl Iterator<Item = &Class> {
        self.families.keys()
    }

    /// Number of classes with at least one key.
    pub fn num_keyed_classes(&self) -> usize {
        self.families.len()
    }

    /// Validates the assignment against a schema:
    ///
    /// * every keyed class exists,
    /// * every key label is an arrow out of its class (§5), and
    /// * `p ⇒ q  ⟹  SK(p) ⊇ SK(q)`.
    pub fn validate(&self, schema: &WeakSchema) -> Result<(), SchemaError> {
        for (class, family) in &self.families {
            if !schema.contains_class(class) {
                return Err(SchemaError::UnknownClass(class.clone()));
            }
            let labels = schema.labels_of(class);
            for key in family.minimal_keys() {
                for label in key.labels() {
                    if !labels.contains(label) {
                        return Err(SchemaError::KeyLabelNotAnArrow {
                            class: class.clone(),
                            label: label.clone(),
                        });
                    }
                }
            }
        }
        for (sub, sup) in schema.specialization_pairs() {
            if !self.family(sub).contains_family(&self.family(sup)) {
                return Err(SchemaError::KeyNotInherited {
                    sub: sub.clone(),
                    sup: sup.clone(),
                });
            }
        }
        Ok(())
    }

    /// Whether this assignment is *satisfactory* for `schema` given the
    /// per-class `contributions` from the merge inputs (§5):
    ///
    /// 1. `SKᵢ(p) ⊆ SK(p)` for every contribution, and
    /// 2. `SK(p) ⊇ SK(q)` whenever `p ⇒ q`.
    pub fn is_satisfactory<'a>(
        &self,
        schema: &WeakSchema,
        contributions: impl IntoIterator<Item = (&'a Class, &'a SuperkeyFamily)>,
    ) -> bool {
        for (class, contributed) in contributions {
            if !self.family(class).contains_family(contributed) {
                return false;
            }
        }
        schema
            .specialization_pairs()
            .all(|(sub, sup)| self.family(sub).contains_family(&self.family(sup)))
    }

    /// The unique minimal satisfactory assignment (§5): for each class,
    /// the union of the contributed families of every class it
    /// specializes (including itself).
    pub fn minimal_satisfactory<'a>(
        schema: &WeakSchema,
        contributions: impl IntoIterator<Item = (&'a Class, &'a SuperkeyFamily)>,
    ) -> KeyAssignment {
        // Collect contributions per class.
        let mut seed: BTreeMap<&Class, SuperkeyFamily> = BTreeMap::new();
        for (class, family) in contributions {
            let entry = seed.entry(class).or_default();
            *entry = entry.union(family);
        }
        // Propagate downwards: SK(p) = ⋃ { seed(q) | p ⇒ q } (reflexive).
        let mut out = KeyAssignment::new();
        for class in schema.classes() {
            let mut family = seed.get(class).cloned().unwrap_or_default();
            for sup in schema.strict_supers(class) {
                if let Some(contrib) = seed.get(&sup) {
                    family = family.union(contrib);
                }
            }
            out.set(class.clone(), family);
        }
        out
    }

    /// Pointwise intersection of two assignments — satisfactory whenever
    /// both inputs are (the §5 lattice argument); exposed for tests.
    pub fn intersection(&self, other: &KeyAssignment) -> KeyAssignment {
        let mut out = KeyAssignment::new();
        for (class, family) in &self.families {
            let meet = family.intersection(&other.family(class));
            out.set(class.clone(), meet);
        }
        out
    }
}

impl fmt::Debug for KeyAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for (class, family) in &self.families {
            map.entry(&class.to_string(), &family.to_string());
        }
        map.finish()
    }
}

impl fmt::Display for KeyAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (class, family) in &self.families {
            writeln!(f, "SK({class}) = {family}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn ks(labels: &[&str]) -> KeySet {
        KeySet::new(labels.iter().copied())
    }

    #[test]
    fn keyset_basics() {
        let k = ks(&["SS#"]);
        assert_eq!(k.len(), 1);
        assert!(k.contains(&l("SS#")));
        assert!(k.is_subset(&ks(&["SS#", "Name"])));
        assert!(!ks(&["SS#", "Name"]).is_subset(&k));
        assert_eq!(k.to_string(), "{SS#}");
        assert_eq!(ks(&["b", "a"]).to_string(), "{a,b}", "sorted");
    }

    #[test]
    fn family_antichain_maintenance() {
        let mut family = SuperkeyFamily::none();
        family.insert_key(ks(&["Name", "Address"]));
        family.insert_key(ks(&["SS#"]));
        assert_eq!(family.num_keys(), 2);
        // A superset of an existing key is absorbed.
        family.insert_key(ks(&["SS#", "Name"]));
        assert_eq!(family.num_keys(), 2);
        // A subset displaces existing supersets.
        family.insert_key(ks(&["Name"]));
        assert_eq!(family.num_keys(), 2);
        assert!(family.minimal_keys().any(|k| k == &ks(&["Name"])));
        assert!(!family
            .minimal_keys()
            .any(|k| k == &ks(&["Name", "Address"])));
    }

    #[test]
    fn superkey_queries() {
        // The Person example of §5: keys {SS#} and {Name, Address}.
        let family = SuperkeyFamily::from_keys([ks(&["SS#"]), ks(&["Name", "Address"])]);
        assert!(family.is_superkey(&ks(&["SS#", "Phone"])));
        assert!(family.is_superkey(&ks(&["Name", "Address"])));
        assert!(!family.is_superkey(&ks(&["Name"])));
        assert!(!family.is_superkey(&ks(&["Phone"])));
    }

    #[test]
    fn empty_keyset_is_strongest() {
        let family = SuperkeyFamily::single(KeySet::empty());
        assert!(family.is_superkey(&ks(&[])));
        assert!(family.is_superkey(&ks(&["anything"])));
    }

    #[test]
    fn family_union_and_containment() {
        let advisor = SuperkeyFamily::single(ks(&["victim"]));
        let committee = SuperkeyFamily::single(ks(&["faculty", "victim"]));
        let merged = advisor.union(&committee);
        // {victim} absorbs {faculty, victim}: the union family is the
        // advisor's. This is the Fig. 9 check:
        // {{victim},{faculty,victim}} ⊇ {{faculty,victim}}.
        assert_eq!(merged, advisor);
        assert!(merged.contains_family(&committee));
        assert!(!committee.contains_family(&advisor));
    }

    #[test]
    fn family_intersection() {
        let a = SuperkeyFamily::single(ks(&["x"]));
        let b = SuperkeyFamily::single(ks(&["y"]));
        let meet = a.intersection(&b);
        assert_eq!(meet, SuperkeyFamily::single(ks(&["x", "y"])));
        // Meet with object identity is object identity.
        assert!(a.intersection(&SuperkeyFamily::none()).is_none());
    }

    #[test]
    fn family_lattice_laws() {
        let fams = [
            SuperkeyFamily::none(),
            SuperkeyFamily::single(ks(&["a"])),
            SuperkeyFamily::single(ks(&["a", "b"])),
            SuperkeyFamily::from_keys([ks(&["a"]), ks(&["b", "c"])]),
        ];
        for x in &fams {
            assert_eq!(&x.union(x), x, "idempotent union");
            assert_eq!(&x.intersection(x), x, "idempotent meet");
            for y in &fams {
                assert_eq!(x.union(y), y.union(x), "commutative union");
                assert_eq!(x.intersection(y), y.intersection(x), "commutative meet");
                assert!(x.union(y).contains_family(x), "union is upper bound");
                assert!(x.contains_family(&x.intersection(y)), "meet is lower bound");
                for z in &fams {
                    assert_eq!(
                        x.union(y).union(z),
                        x.union(&y.union(z)),
                        "associative union"
                    );
                    assert_eq!(
                        x.intersection(y).intersection(z),
                        x.intersection(&y.intersection(z)),
                        "associative meet"
                    );
                }
            }
        }
    }

    fn advisor_schema() -> WeakSchema {
        // Fig. 9: Advisor ⇒ Committee, both with faculty/victim arrows.
        WeakSchema::builder()
            .specialize("Advisor", "Committee")
            .arrow("Committee", "faculty", "Faculty")
            .arrow("Committee", "victim", "GS")
            .build()
            .unwrap()
    }

    #[test]
    fn figure_9_minimal_satisfactory_assignment() {
        let schema = advisor_schema();
        let committee_keys = SuperkeyFamily::single(ks(&["faculty", "victim"]));
        let advisor_keys = SuperkeyFamily::single(ks(&["victim"]));
        let committee = c("Committee");
        let advisor = c("Advisor");
        let contributions = [(&committee, &committee_keys), (&advisor, &advisor_keys)];

        let assignment = KeyAssignment::minimal_satisfactory(&schema, contributions);
        assert!(assignment.validate(&schema).is_ok());
        assert!(assignment.is_satisfactory(&schema, contributions));
        // Advisor keeps its one-to-many key and inherits Committee's.
        assert_eq!(
            assignment.family(&advisor),
            SuperkeyFamily::single(ks(&["victim"])),
            "{{victim}} absorbs the inherited {{faculty,victim}}"
        );
        assert_eq!(
            assignment.family(&committee),
            SuperkeyFamily::single(ks(&["faculty", "victim"]))
        );
    }

    #[test]
    fn minimal_satisfactory_is_minimal() {
        // Any other satisfactory assignment contains the minimal one,
        // class by class.
        let schema = advisor_schema();
        let committee_keys = SuperkeyFamily::single(ks(&["faculty", "victim"]));
        let committee = c("Committee");
        let contributions = [(&committee, &committee_keys)];

        let minimal = KeyAssignment::minimal_satisfactory(&schema, contributions);
        let mut bigger = minimal.clone();
        bigger.add_key(c("Advisor"), ks(&["victim"]));
        assert!(bigger.is_satisfactory(&schema, contributions));
        for class in schema.classes() {
            assert!(bigger.family(class).contains_family(&minimal.family(class)));
        }
    }

    #[test]
    fn intersection_of_satisfactory_is_satisfactory() {
        let schema = advisor_schema();
        let committee_keys = SuperkeyFamily::single(ks(&["faculty", "victim"]));
        let committee = c("Committee");
        let contributions = [(&committee, &committee_keys)];

        let minimal = KeyAssignment::minimal_satisfactory(&schema, contributions);
        let mut other = minimal.clone();
        other.add_key(c("Advisor"), ks(&["faculty"]));
        assert!(other.is_satisfactory(&schema, contributions));

        let meet = minimal.intersection(&other);
        assert!(meet.is_satisfactory(&schema, contributions));
        assert_eq!(meet, minimal, "minimal is the bottom of the lattice");
    }

    #[test]
    fn validate_rejects_foreign_labels() {
        let schema = advisor_schema();
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("Committee"), ks(&["salary"]));
        assert!(matches!(
            assignment.validate(&schema),
            Err(SchemaError::KeyLabelNotAnArrow { .. })
        ));
    }

    #[test]
    fn validate_rejects_uninherited_keys() {
        let schema = advisor_schema();
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("Committee"), ks(&["faculty", "victim"]));
        // Advisor lacks Committee's key: inheritance violated.
        assert!(matches!(
            assignment.validate(&schema),
            Err(SchemaError::KeyNotInherited { .. })
        ));
    }

    #[test]
    fn validate_rejects_unknown_class() {
        let schema = advisor_schema();
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("Nowhere"), ks(&[]));
        assert!(matches!(
            assignment.validate(&schema),
            Err(SchemaError::UnknownClass(_))
        ));
    }

    #[test]
    fn figure_10_multiple_keys_not_expressible_as_cardinalities() {
        // Transaction(loc, at, card, amount) with keys {loc,at} and
        // {card,at}: representable here, unlike with edge labels.
        let schema = WeakSchema::builder()
            .arrow("Transaction", "loc", "Machine")
            .arrow("Transaction", "at", "Time")
            .arrow("Transaction", "card", "Card")
            .arrow("Transaction", "amount", "Amount")
            .build()
            .unwrap();
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("Transaction"), ks(&["loc", "at"]));
        assignment.add_key(c("Transaction"), ks(&["card", "at"]));
        assert!(assignment.validate(&schema).is_ok());
        let family = assignment.family(&c("Transaction"));
        assert_eq!(family.num_keys(), 2);
        assert!(family.is_superkey(&ks(&["loc", "at", "amount"])));
        assert!(!family.is_superkey(&ks(&["loc", "card"])));
    }

    #[test]
    fn assignment_display() {
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("Person"), ks(&["SS#"]));
        assert_eq!(assignment.to_string(), "SK(Person) = {{SS#}}\n");
    }

    #[test]
    fn setting_empty_family_clears_entry() {
        let mut assignment = KeyAssignment::new();
        assignment.add_key(c("A"), ks(&["x"]));
        assert_eq!(assignment.num_keyed_classes(), 1);
        assignment.set(c("A"), SuperkeyFamily::none());
        assert_eq!(assignment.num_keyed_classes(), 0);
    }
}
