//! Schema isomorphism modulo the names of designated classes.
//!
//! §4.2 notes that completion is canonical only up to the naming of the
//! implicit classes ("compare this to alpha-conversion in the lambda
//! calculus"). To *compare* merge results — in particular, to demonstrate
//! that the baseline stepwise merge of Figs. 4–5 is non-associative even
//! after renaming its opaque `X?`/`Y?` classes — we need isomorphism that
//! fixes ordinary classes and permutes a designated set.
//!
//! [`alpha_isomorphic`] performs a backtracking search. It is exponential
//! in the number of renameable classes in the worst case, which is fine
//! for its diagnostic role (merge results have few implicit classes; the
//! paper argues pathological blowups "are \[not\] likely to occur in
//! practice", and we measure that claim in the benchmarks instead).

use std::collections::{BTreeMap, BTreeSet};

use crate::class::Class;
use crate::weak::WeakSchema;

/// Whether `left` and `right` are isomorphic by a bijection that is the
/// identity on classes where `renameable` is false and arbitrary on
/// classes where it is true.
pub fn alpha_isomorphic(
    left: &WeakSchema,
    right: &WeakSchema,
    renameable: impl Fn(&Class) -> bool,
) -> bool {
    let fixed_left: BTreeSet<&Class> = left.classes().filter(|c| !renameable(c)).collect();
    let fixed_right: BTreeSet<&Class> = right.classes().filter(|c| !renameable(c)).collect();
    if fixed_left != fixed_right {
        return false;
    }
    let vars_left: Vec<&Class> = left.classes().filter(|c| renameable(c)).collect();
    let vars_right: Vec<&Class> = right.classes().filter(|c| renameable(c)).collect();
    if vars_left.len() != vars_right.len() {
        return false;
    }
    if left.num_arrows() != right.num_arrows()
        || left.num_specializations() != right.num_specializations()
    {
        return false;
    }

    // Cheap invariant for pruning: a class's degree profile.
    let profile = |schema: &WeakSchema, class: &Class| -> (usize, usize, usize, usize) {
        let out_arrows = schema
            .labels_of(class)
            .iter()
            .map(|l| schema.arrow_targets(class, l).len())
            .sum();
        let in_arrows = schema
            .arrow_triples()
            .filter(|(_, _, tgt)| *tgt == class)
            .count();
        (
            schema.strict_supers(class).len(),
            schema.strict_subs(class).len(),
            out_arrows,
            in_arrows,
        )
    };
    let left_profiles: Vec<_> = vars_left.iter().map(|c| profile(left, c)).collect();
    let right_profiles: Vec<_> = vars_right.iter().map(|c| profile(right, c)).collect();

    let mut assignment: BTreeMap<&Class, &Class> = BTreeMap::new();
    let mut used: Vec<bool> = vec![false; vars_right.len()];
    search(
        left,
        right,
        &vars_left,
        &vars_right,
        &left_profiles,
        &right_profiles,
        0,
        &mut assignment,
        &mut used,
    )
}

#[allow(clippy::too_many_arguments)]
fn search<'a>(
    left: &WeakSchema,
    right: &WeakSchema,
    vars_left: &[&'a Class],
    vars_right: &[&'a Class],
    left_profiles: &[(usize, usize, usize, usize)],
    right_profiles: &[(usize, usize, usize, usize)],
    index: usize,
    assignment: &mut BTreeMap<&'a Class, &'a Class>,
    used: &mut Vec<bool>,
) -> bool {
    if index == vars_left.len() {
        return verify(left, right, assignment);
    }
    let source = vars_left[index];
    for (j, candidate) in vars_right.iter().enumerate() {
        if used[j] || left_profiles[index] != right_profiles[j] {
            continue;
        }
        assignment.insert(source, candidate);
        used[j] = true;
        if search(
            left,
            right,
            vars_left,
            vars_right,
            left_profiles,
            right_profiles,
            index + 1,
            assignment,
            used,
        ) {
            return true;
        }
        used[j] = false;
        assignment.remove(source);
    }
    false
}

fn verify(left: &WeakSchema, right: &WeakSchema, assignment: &BTreeMap<&Class, &Class>) -> bool {
    let map = |class: &Class| -> Class {
        assignment
            .get(class)
            .map(|&c| c.clone())
            .unwrap_or_else(|| class.clone())
    };
    for (sub, sup) in left.specialization_pairs() {
        if !(right.specializes(&map(sub), &map(sup)) && map(sub) != map(sup)) {
            return false;
        }
    }
    for (src, label, tgt) in left.arrow_triples() {
        if !right.has_arrow(&map(src), label, &map(tgt)) {
            return false;
        }
    }
    // Edge counts are equal (checked upfront), so injectivity of the map
    // plus containment in both relations gives equality.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn opaque(class: &Class) -> bool {
        class.name().is_some_and(|n| n.as_str().starts_with('?'))
    }

    #[test]
    fn identical_schemas_are_isomorphic() {
        let g = WeakSchema::builder()
            .specialize("B", "A")
            .arrow("A", "f", "T")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&g, &g, |_| false));
        assert!(alpha_isomorphic(&g, &g, opaque));
    }

    #[test]
    fn renaming_an_opaque_class_preserves_isomorphism() {
        let g1 = WeakSchema::builder()
            .specialize("?1", "A")
            .specialize("?1", "B")
            .arrow("C", "a", "?1")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("?other", "A")
            .specialize("?other", "B")
            .arrow("C", "a", "?other")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&g1, &g2, opaque));
        // Without renaming permission they differ.
        assert!(!alpha_isomorphic(&g1, &g2, |_| false));
    }

    #[test]
    fn structure_difference_is_detected() {
        // ?1 below {A, B} vs ?1 below {A} only.
        let g1 = WeakSchema::builder()
            .specialize("?1", "A")
            .specialize("?1", "B")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("?1", "A")
            .classes(["B"])
            .build()
            .unwrap();
        assert!(!alpha_isomorphic(&g1, &g2, opaque));
    }

    #[test]
    fn figure_5_shapes_differ() {
        // The two results of the naive stepwise merge: X? below {D, E}
        // with Y? below {X?, F}  vs  X? below {E, F} with Y? below
        // {X?, D}. Even with renaming these are non-isomorphic because the
        // chains hang below different named classes.
        let left = WeakSchema::builder()
            .specialize("?x", "D")
            .specialize("?x", "E")
            .specialize("?y", "?x")
            .specialize("?y", "F")
            .build()
            .unwrap();
        let right = WeakSchema::builder()
            .specialize("?x", "E")
            .specialize("?x", "F")
            .specialize("?y", "?x")
            .specialize("?y", "D")
            .build()
            .unwrap();
        assert!(!alpha_isomorphic(&left, &right, opaque));
    }

    #[test]
    fn two_interchangeable_classes() {
        let g1 = WeakSchema::builder()
            .specialize("?a", "Top")
            .specialize("?b", "Top")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("?p", "Top")
            .specialize("?q", "Top")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&g1, &g2, opaque));
    }

    #[test]
    fn mismatched_counts_fail_fast() {
        let g1 = WeakSchema::builder()
            .specialize("?a", "Top")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("?a", "Top")
            .specialize("?b", "Top")
            .build()
            .unwrap();
        assert!(!alpha_isomorphic(&g1, &g2, opaque));
    }

    #[test]
    fn fixed_classes_must_match_exactly() {
        let g1 = WeakSchema::builder().class("A").build().unwrap();
        let g2 = WeakSchema::builder().class("B").build().unwrap();
        assert!(!alpha_isomorphic(&g1, &g2, opaque));
    }

    #[test]
    fn arrows_between_renameables() {
        let g1 = WeakSchema::builder()
            .arrow("?a", "f", "?b")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("?x", "f", "?y")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&g1, &g2, opaque));
        let g3 = WeakSchema::builder()
            .arrow("?y", "f", "?x")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&g1, &g3, opaque), "direction renamed away");
        let g4 = WeakSchema::builder()
            .arrow("?x", "g", "?y")
            .build()
            .unwrap();
        assert!(!alpha_isomorphic(&g1, &g4, opaque), "labels are fixed");
    }

    #[test]
    fn implicit_classes_as_renameables() {
        // Comparing a paper-style result with an opaque-name result.
        let x = Class::implicit([c("A"), c("B")]);
        let ours = WeakSchema::builder()
            .specialize(x.clone(), "A")
            .specialize(x.clone(), "B")
            .arrow("C", "a", x.clone())
            .build()
            .unwrap();
        let theirs = WeakSchema::builder()
            .specialize("?1", "A")
            .specialize("?1", "B")
            .arrow("C", "a", "?1")
            .build()
            .unwrap();
        assert!(alpha_isomorphic(&ours, &theirs, |c| c.is_implicit() || opaque(c)));
    }
}
