//! Classes: the nodes of a schema graph.
//!
//! §4.2 of the paper introduces *implicit* classes during the completion of
//! a weak schema into a proper one. An implicit class is identified by the
//! set of classes it was introduced below (upper merges) or above (lower
//! merges): "the additional information describes its own origin, and can
//! be readily identified to allow subsequent merges to take place" (§1).
//!
//! We flatten nested origins — an implicit class formed from
//! `{{D,E}, F}` is identified with `{D,E,F}` — which is precisely the
//! device that makes stepwise merge-and-complete agree with batch merging
//! (compare Figs. 4–5 of the paper and `complete::tests`).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::name::Name;

/// The set of named classes an implicit class originates from.
///
/// Always contains at least two names and is shared (`Arc`) because origin
/// sets are copied into every edge touching the implicit class.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OriginSet(Arc<BTreeSet<Name>>);

impl OriginSet {
    /// Iterates over the origin names in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Name> {
        self.0.iter()
    }

    /// Number of origin names (always ≥ 2, enforced in construction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always `false`: construction rejects origin sets with fewer than
    /// two names, so no empty `OriginSet` can exist. Provided (and kept
    /// honest) for API completeness beside [`OriginSet::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        debug_assert!(self.0.len() >= 2, "invariant enforced in from_set");
        false
    }

    /// Whether `name` is one of the origins.
    pub fn contains(&self, name: &Name) -> bool {
        self.0.contains(name)
    }

    /// Whether every origin of `self` is an origin of `other`.
    pub fn is_subset(&self, other: &OriginSet) -> bool {
        self.0.is_subset(&other.0)
    }

    fn from_set(set: BTreeSet<Name>) -> Self {
        // A real assert, not a debug one: every public constructor goes
        // through `Class::try_implicit{,_union}` which checks the
        // cardinality, and the "never empty, ≥ 2 names" documented
        // invariant is what makes `is_empty` honest.
        assert!(set.len() >= 2, "origin sets have at least two members");
        OriginSet(Arc::new(set))
    }
}

impl fmt::Debug for OriginSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.0.iter()).finish()
    }
}

impl fmt::Display for OriginSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, name) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{name}")?;
        }
        write!(f, "}}")
    }
}

/// A class: a node of the schema graph (§2).
///
/// Ordinary classes are [`Class::Named`]. Upper-merge completion introduces
/// [`Class::Implicit`] classes (below their origins) whose identity is
/// their (flattened) origin set, rendered as `{C,D}` exactly as in the
/// paper's Fig. 7 discussion. Lower-merge completion introduces the dual
/// [`Class::ImplicitUnion`] classes (above their origins, §6), rendered as
/// `{C|D}`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    /// A user-visible class drawn from the vocabulary `N`.
    Named(Name),
    /// An implicit class introduced *below* its origins by upper-merge
    /// completion: its instances belong to every origin class.
    Implicit(OriginSet),
    /// An implicit class introduced *above* its origins by lower-merge
    /// completion: its instances belong to at least one origin class.
    ImplicitUnion(OriginSet),
}

impl Class {
    /// Creates a named class.
    pub fn named(name: impl Into<Name>) -> Self {
        Class::Named(name.into())
    }

    /// Creates an implicit class below/above the given classes, flattening
    /// any implicit members into their origin names.
    ///
    /// # Panics
    ///
    /// Panics if the flattened origin has fewer than two names: the paper
    /// only ever introduces implicit classes for sets of cardinality > 1
    /// (§4.2, definition of `Imp`), so asking for a smaller one is a logic
    /// error in the caller.
    pub fn implicit<I>(members: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        Self::try_implicit(members).expect("implicit class requires ≥ 2 flattened origin names")
    }

    /// Non-panicking variant of [`Class::implicit`]: returns `None` when the
    /// flattened origin set has fewer than two names.
    pub fn try_implicit<I>(members: I) -> Option<Self>
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        let origin = Self::flatten(members);
        (origin.len() >= 2).then(|| Class::Implicit(OriginSet::from_set(origin)))
    }

    /// Creates an implicit *union* class above the given classes (the dual
    /// introduced by lower-merge completion, §6), flattening implicit
    /// members into their origin names.
    ///
    /// # Panics
    ///
    /// Panics if the flattened origin has fewer than two names (see
    /// [`Class::implicit`]).
    pub fn implicit_union<I>(members: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        Self::try_implicit_union(members)
            .expect("implicit union class requires ≥ 2 flattened origin names")
    }

    /// Non-panicking variant of [`Class::implicit_union`].
    pub fn try_implicit_union<I>(members: I) -> Option<Self>
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        let origin = Self::flatten(members);
        (origin.len() >= 2).then(|| Class::ImplicitUnion(OriginSet::from_set(origin)))
    }

    fn flatten<I>(members: I) -> BTreeSet<Name>
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        let mut origin = BTreeSet::new();
        for member in members {
            match member.into() {
                Class::Named(name) => {
                    origin.insert(name);
                }
                Class::Implicit(set) | Class::ImplicitUnion(set) => {
                    origin.extend(set.iter().cloned());
                }
            }
        }
        origin
    }

    /// The origin set if this is an implicit (meet or union) class.
    pub fn origin(&self) -> Option<&OriginSet> {
        match self {
            Class::Named(_) => None,
            Class::Implicit(origin) | Class::ImplicitUnion(origin) => Some(origin),
        }
    }

    /// The name if this is a named class.
    pub fn name(&self) -> Option<&Name> {
        match self {
            Class::Named(name) => Some(name),
            Class::Implicit(_) | Class::ImplicitUnion(_) => None,
        }
    }

    /// Whether this class was introduced by completion (either kind).
    pub fn is_implicit(&self) -> bool {
        matches!(self, Class::Implicit(_) | Class::ImplicitUnion(_))
    }

    /// Whether this is a meet-style implicit class (below its origins).
    pub fn is_implicit_meet(&self) -> bool {
        matches!(self, Class::Implicit(_))
    }

    /// Whether this is a union-style implicit class (above its origins).
    pub fn is_implicit_union(&self) -> bool {
        matches!(self, Class::ImplicitUnion(_))
    }

    /// Parses the display syntax back into a class: `{A,B}` is the meet
    /// implicit class, `{A|B}` the union one, anything else a named
    /// class. Inverse of `Display` (nested origins flatten, as always).
    ///
    /// This is the §4.2 "the name describes its own origin" device made
    /// operational across model translations: when a merge result is read
    /// back into the ER or relational model, implicit classes become
    /// ordinary *names* like `{int,text}`; translating to the graph model
    /// again must recover their identity, or a later merge would nest
    /// origins and lose associativity (compare Figs. 4–5).
    pub fn from_origin_syntax(text: &str) -> Class {
        fn split_top_level(inner: &str, separator: char) -> Option<Vec<&str>> {
            let mut parts = Vec::new();
            let mut depth = 0usize;
            let mut start = 0usize;
            for (i, c) in inner.char_indices() {
                match c {
                    '{' => depth += 1,
                    '}' => depth = depth.saturating_sub(1),
                    c if c == separator && depth == 0 => {
                        parts.push(&inner[start..i]);
                        start = i + c.len_utf8();
                    }
                    _ => {}
                }
            }
            parts.push(&inner[start..]);
            (parts.len() > 1 && parts.iter().all(|p| !p.is_empty())).then_some(parts)
        }

        let inner = match text.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
            Some(inner) => inner,
            None => return Class::named(text),
        };
        if let Some(parts) = split_top_level(inner, ',') {
            let members: Vec<Class> = parts.iter().map(|p| Class::from_origin_syntax(p)).collect();
            if let Some(class) = Class::try_implicit(members) {
                return class;
            }
        }
        if let Some(parts) = split_top_level(inner, '|') {
            let members: Vec<Class> = parts.iter().map(|p| Class::from_origin_syntax(p)).collect();
            if let Some(class) = Class::try_implicit_union(members) {
                return class;
            }
        }
        Class::named(text)
    }

    /// The named classes this class stands for: itself if named, the origin
    /// set if implicit. Used when *stripping* implicit classes before a
    /// subsequent merge (§4.2 / `WeakSchema::strip_implicit`).
    pub fn flattened_names(&self) -> Vec<Name> {
        match self {
            Class::Named(name) => vec![name.clone()],
            Class::Implicit(origin) | Class::ImplicitUnion(origin) => {
                origin.iter().cloned().collect()
            }
        }
    }
}

impl fmt::Debug for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::Named(name) => write!(f, "Class({:?})", name.as_str()),
            Class::Implicit(_) | Class::ImplicitUnion(_) => write!(f, "Class({self})"),
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Class::Named(name) => write!(f, "{name}"),
            Class::Implicit(origin) => write!(f, "{origin}"),
            Class::ImplicitUnion(origin) => {
                write!(f, "{{")?;
                for (i, name) in origin.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{name}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<Name> for Class {
    fn from(name: Name) -> Self {
        Class::Named(name)
    }
}

impl From<&Name> for Class {
    fn from(name: &Name) -> Self {
        Class::Named(name.clone())
    }
}

impl From<&str> for Class {
    fn from(text: &str) -> Self {
        Class::named(text)
    }
}

impl From<String> for Class {
    fn from(text: String) -> Self {
        Class::named(text)
    }
}

impl From<&Class> for Class {
    fn from(class: &Class) -> Self {
        class.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    #[test]
    fn named_display() {
        assert_eq!(c("Dog").to_string(), "Dog");
    }

    #[test]
    fn implicit_display_matches_paper_notation() {
        let x = Class::implicit([c("C"), c("D")]);
        assert_eq!(x.to_string(), "{C,D}");
    }

    #[test]
    fn implicit_is_order_insensitive() {
        let x = Class::implicit([c("D"), c("C")]);
        let y = Class::implicit([c("C"), c("D")]);
        assert_eq!(x, y);
    }

    #[test]
    fn implicit_flattens_nested_origins() {
        // {{D,E},F} and {D,E,F} are the same class; this is the
        // associativity-restoring device of §4.2.
        let de = Class::implicit([c("D"), c("E")]);
        let def_nested = Class::implicit([de, c("F")]);
        let def_flat = Class::implicit([c("D"), c("E"), c("F")]);
        assert_eq!(def_nested, def_flat);
        assert_eq!(def_nested.to_string(), "{D,E,F}");
    }

    #[test]
    fn implicit_dedupes_members() {
        let x = Class::try_implicit([c("A"), c("A")]);
        assert!(x.is_none(), "a single distinct origin is not implicit");
        let y = Class::try_implicit([c("A"), c("A"), c("B")]).unwrap();
        assert_eq!(y.origin().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "implicit class requires")]
    fn implicit_with_single_member_panics() {
        let _ = Class::implicit([c("A")]);
    }

    #[test]
    fn origin_set_is_never_empty() {
        let origin = Class::implicit([c("A"), c("B")]).origin().unwrap().clone();
        assert!(!origin.is_empty());
        assert!(origin.len() >= 2);
    }

    #[test]
    fn origin_subset() {
        let ab = Class::implicit([c("A"), c("B")]);
        let abc = Class::implicit([c("A"), c("B"), c("C")]);
        assert!(ab.origin().unwrap().is_subset(abc.origin().unwrap()));
        assert!(!abc.origin().unwrap().is_subset(ab.origin().unwrap()));
    }

    #[test]
    fn flattened_names() {
        assert_eq!(c("A").flattened_names(), vec![Name::new("A")]);
        let x = Class::implicit([c("B"), c("A")]);
        assert_eq!(
            x.flattened_names(),
            vec![Name::new("A"), Name::new("B")],
            "sorted order"
        );
    }

    #[test]
    fn named_and_implicit_never_equal() {
        // Even if a user names a class "{C,D}" it is distinct from the
        // implicit class with origin {C, D}.
        let named = c("{C,D}");
        let implicit = Class::implicit([c("C"), c("D")]);
        assert_ne!(named, implicit);
    }

    #[test]
    fn accessors() {
        let n = c("A");
        assert!(!n.is_implicit());
        assert_eq!(n.name().unwrap().as_str(), "A");
        assert!(n.origin().is_none());

        let i = Class::implicit([c("A"), c("B")]);
        assert!(i.is_implicit());
        assert!(i.is_implicit_meet());
        assert!(!i.is_implicit_union());
        assert!(i.name().is_none());
        assert!(i.origin().unwrap().contains(&Name::new("A")));
    }

    #[test]
    fn union_class_display_and_identity() {
        let u = Class::implicit_union([c("C"), c("D")]);
        assert_eq!(u.to_string(), "{C|D}");
        assert!(u.is_implicit());
        assert!(u.is_implicit_union());
        // Meet and union classes over the same origin are different.
        let m = Class::implicit([c("C"), c("D")]);
        assert_ne!(u, m);
        assert_eq!(u.origin(), m.origin());
    }

    #[test]
    fn union_class_flattens_unions_and_meets() {
        let cd = Class::implicit_union([c("C"), c("D")]);
        let nested = Class::implicit_union([cd, c("E")]);
        assert_eq!(nested, Class::implicit_union([c("C"), c("D"), c("E")]));

        let meet = Class::implicit([c("A"), c("B")]);
        let mixed = Class::implicit_union([meet, c("C")]);
        assert_eq!(mixed.to_string(), "{A|B|C}");
    }

    #[test]
    fn from_origin_syntax_round_trips_display() {
        let cases = [
            c("Dog"),
            c("Guide-dog"),
            Class::implicit([c("C"), c("D")]),
            Class::implicit([c("a"), c("b"), c("c")]),
            Class::implicit_union([c("X"), c("Y")]),
        ];
        for class in cases {
            assert_eq!(Class::from_origin_syntax(&class.to_string()), class);
        }
    }

    #[test]
    fn from_origin_syntax_flattens_nested_text() {
        assert_eq!(
            Class::from_origin_syntax("{d3,{d0,d4}}"),
            Class::implicit([c("d0"), c("d3"), c("d4")])
        );
        assert_eq!(
            Class::from_origin_syntax("{a|{b|c}}"),
            Class::implicit_union([c("a"), c("b"), c("c")])
        );
    }

    #[test]
    fn from_origin_syntax_leaves_odd_names_alone() {
        for odd in ["{solo}", "{,}", "plain", "{a,}", "{}", "{a{b}"] {
            assert_eq!(Class::from_origin_syntax(odd), c(odd), "{odd}");
        }
    }

    #[test]
    fn try_implicit_union_requires_two_names() {
        assert!(Class::try_implicit_union([c("A")]).is_none());
        assert!(Class::try_implicit_union([c("A"), c("A")]).is_none());
        assert!(Class::try_implicit_union([c("A"), c("B")]).is_some());
    }
}
