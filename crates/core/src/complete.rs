//! Completion: building a proper schema from a weak one (§4.2).
//!
//! The weak merge of proper schemas need not be proper — a class may have
//! incomparable `a`-arrow targets (Fig. 3). Completion introduces one
//! *implicit class* per set in
//!
//! ```text
//! I₀  = { {p} | p ∈ C }
//! Iₙ₊₁ = { R(X, a) | X ∈ Iₙ, a ∈ L }
//! I∞  = ⋃ₙ≥₁ Iₙ
//! Imp = { MinS(X) | X ∈ I∞, |MinS(X)| > 1 }
//! ```
//!
//! and then extends classes, arrows and specializations by the paper's
//! `C̄`, `Ē`, `S̄` rules. The result is the least proper schema above the
//! input (up to the naming of implicit classes).
//!
//! Two implementation notes:
//!
//! * `R(X, a) = R(MinS(X), a)` — W1 makes arrows of minimal elements
//!   dominate — so the fixpoint canonicalizes every state by its minimal
//!   elements. This keeps the search polynomial on realistic schemas while
//!   computing exactly the paper's `Imp`.
//! * Implicit classes are identified by *flattened* origin sets
//!   ([`Class::implicit`]), so re-completing after further merges
//!   rediscovers — rather than duplicates — existing implicit classes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::class::Class;
use crate::compile::{self, CompiledSchema};
use crate::consistency::ConsistencyRelation;
use crate::error::{MergeError, SchemaError};
use crate::name::Label;
use crate::proper::ProperSchema;
use crate::weak::WeakSchema;

/// A `WeakSchema::close`-shaped closure function, letting the completion
/// pipeline run on either the compiled or the symbolic reference engine.
pub(crate) type CloseFn = fn(
    BTreeSet<Class>,
    BTreeMap<Class, BTreeSet<Class>>,
    Vec<(Class, Label, Class)>,
) -> Result<WeakSchema, SchemaError>;

/// How an implicit class was discovered: follow `labels` starting from
/// `start`, taking minimal reachable target sets at each step, and you
/// arrive at the origin set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicitWitness {
    /// The class whose arrows start the derivation.
    pub start: Class,
    /// The labels followed, in order (length ≥ 1).
    pub labels: Vec<Label>,
}

impl std::fmt::Display for ImplicitWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.start)?;
        for label in &self.labels {
            write!(f, " --{label}-->")?;
        }
        Ok(())
    }
}

/// One implicit class introduced by completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplicitClassInfo {
    /// The introduced class (its identity is the flattened origin set).
    pub class: Class,
    /// The `Imp` member it was introduced for: a MinS-antichain of classes
    /// of the input schema.
    pub members: BTreeSet<Class>,
    /// A derivation showing why the class is required.
    pub witness: ImplicitWitness,
}

/// Everything completion did, for diagnostics and interactive tools.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompletionReport {
    /// The implicit classes introduced, sorted by class identity.
    pub implicit: Vec<ImplicitClassInfo>,
}

impl CompletionReport {
    /// Number of implicit classes introduced.
    pub fn num_implicit(&self) -> usize {
        self.implicit.len()
    }
}

/// Completes `weak` into a proper schema. See the module docs.
///
/// # Errors
///
/// Completion of a weak schema is total in the paper. The only failure mode
/// here is pre-existing *user-constructed* implicit classes whose
/// specialization edges contradict the origin-set semantics (e.g. an
/// `{A,B}` class declared *above* `A`), which can make the extended
/// relation cyclic; such inputs are rejected rather than silently patched.
pub fn complete(weak: &WeakSchema) -> Result<ProperSchema, SchemaError> {
    complete_with_report(weak).map(|(schema, _)| schema)
}

/// [`complete`], additionally returning provenance for every implicit
/// class.
pub fn complete_with_report(
    weak: &WeakSchema,
) -> Result<(ProperSchema, CompletionReport), SchemaError> {
    complete_impl(weak, None, Engine::Compiled { threads: 1 })
}

/// Runs only the `I∞` fixpoint of §4.2 on a compiled schema and returns
/// the number of reachable MinS-canonical states — the engine-side cost
/// driver of completion (each multi-member state demands an implicit
/// class; singleton states are the search frontier between them).
///
/// Exposed for diagnostics and for the benchmark suite, which uses it to
/// measure the fixpoint in isolation (time and allocations) without the
/// symbolic materialization that dominates a full [`complete`]. `threads`
/// shards the frontier across scoped workers; the count is identical at
/// every thread count.
pub fn imp_state_count(compiled: &CompiledSchema, threads: usize) -> usize {
    compile::discover_states_ids(compiled, threads).len()
}

/// [`complete_with_report`] reusing an already-compiled form of `weak` —
/// the interner-reuse fast path, public so callers holding a partial
/// join (both representations off a compiled-engine
/// [`crate::Merger::join`]) can complete it without recompiling.
///
/// `compiled` must be the compiled twin of `weak`, as returned alongside
/// it by the join; passing the compiled form of a *different* schema
/// yields an unspecified (memory-safe) completion.
pub fn complete_compiled(
    weak: &WeakSchema,
    compiled: &CompiledSchema,
) -> Result<(ProperSchema, CompletionReport), SchemaError> {
    complete_impl(weak, Some(compiled), Engine::Compiled { threads: 1 })
}

/// Completes a schema directly from its compiled form — the end-to-end
/// id-space pipeline behind the registry's incremental re-merge: the
/// symbolic schema is materialized exactly once, for the completed
/// result, instead of once for the join and again for the completion.
/// The engine behind the merger's onto-base completion pass and the
/// parallel engine's completion stage. `threads` shards the `Imp`
/// fixpoint's frontier (results are identical at every thread count).
pub(crate) fn complete_from_compiled_impl(
    compiled: &CompiledSchema,
    threads: usize,
) -> Result<(ProperSchema, CompletionReport), SchemaError> {
    if compiled.has_origin_classes() {
        let weak = compiled.decompile();
        return complete_impl(&weak, Some(compiled), Engine::Compiled { threads });
    }
    // No implicit classes anywhere: origin-set canonicalization is a
    // no-op, every discovered state is a set of named classes already in
    // MinS-canonical (antichain) form, and each multi-element state names
    // a genuinely new implicit class — `name_states` collapses to naming
    // each state by its own members.
    let mut states: BTreeMap<BTreeSet<Class>, (Vec<u64>, ImplicitWitness)> = BTreeMap::new();
    let discovered = compile::discover_states_ids(compiled, threads);
    for index in 0..discovered.len() as u32 {
        let bits = discovered.bits(index);
        if bits.iter().map(|w| w.count_ones()).sum::<u32>() < 2 {
            continue;
        }
        let members = compile::state_classes(compiled, bits);
        let witness = discovered.witness(index);
        let witness = ImplicitWitness {
            start: compiled.class(witness.start).clone(),
            labels: witness
                .labels
                .iter()
                .map(|&l| compiled.label(l).clone())
                .collect(),
        };
        states.insert(members, (bits.to_vec(), witness));
    }
    if states.is_empty() {
        let proper = ProperSchema::from_compiled(compiled.decompile(), compiled)?;
        return Ok((proper, CompletionReport::default()));
    }
    let mut report = CompletionReport::default();
    let mut id_entries: Vec<(Vec<u64>, Class)> = Vec::with_capacity(states.len());
    for (members, (bits, witness)) in states {
        let class = Class::implicit(members.clone());
        report.implicit.push(ImplicitClassInfo {
            class: class.clone(),
            members,
            witness,
        });
        id_entries.push((bits, class));
    }
    report.implicit.sort_by(|a, b| a.class.cmp(&b.class));
    let (completed, completed_compiled) = compile::assemble_ids(compiled, &id_entries, threads)?;
    let proper = ProperSchema::from_compiled(completed, &completed_compiled)?;
    Ok((proper, report))
}

/// Which implementation the completion pipeline runs on: the compiled
/// id-space engine (the default) or the retained symbolic one (the
/// [`crate::reference`] path).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Engine {
    /// Dense ids, bitset closures, CSR arrows ([`crate::compile`]),
    /// with the `Imp` fixpoint's frontier sharded over `threads` scoped
    /// workers (1 = fully sequential; any count yields identical
    /// results).
    Compiled {
        /// Worker threads for the fixpoint frontier.
        threads: usize,
    },
    /// The original `BTreeMap`/`BTreeSet` algorithms.
    Symbolic,
}

impl Engine {
    fn close_fn(self) -> CloseFn {
        match self {
            Engine::Compiled { .. } => WeakSchema::close,
            Engine::Symbolic => WeakSchema::close_symbolic,
        }
    }
}

pub(crate) fn complete_impl(
    weak: &WeakSchema,
    precompiled: Option<&CompiledSchema>,
    engine: Engine,
) -> Result<(ProperSchema, CompletionReport), SchemaError> {
    let close = engine.close_fn();
    // Pre-existing implicit classes (earlier merge results fed back in)
    // may carry origin sets that later-arriving specializations have made
    // non-canonical: with E01 ⇒ E04 and E01 ⇒ E07 in scope, {E00,E01,E04}
    // and {E00,E01,E07} both denote meet{E00,E01}. Left as distinct
    // classes, the S̄ rules below would order them mutually and reject the
    // merge as cyclic; canonicalizing origin sets by MinS/MaxS first
    // identifies them instead (the paper's "up to the naming of implicit
    // classes").
    let canonical = canonicalize_implicit(weak, close)?;
    let weak = canonical.as_ref().unwrap_or(weak);

    match engine {
        Engine::Symbolic => {
            let states = discover_states(weak);
            let imp = states
                .into_iter()
                .filter(|(state, _)| state.len() >= 2)
                .collect();
            let (entries, report) = name_states(weak, imp);
            let completed = assemble(weak, &entries, close)?;
            Ok((ProperSchema::try_new(completed)?, report))
        }
        Engine::Compiled { threads } => {
            // Compile once (or reuse the caller's compiled join), run the
            // fixpoint on bitset states and assemble in id space.
            let owned;
            let compiled = match (&canonical, precompiled) {
                (None, Some(compiled)) => compiled,
                _ => {
                    owned = CompiledSchema::compile(weak);
                    &owned
                }
            };
            let mut imp: BTreeMap<BTreeSet<Class>, ImplicitWitness> = BTreeMap::new();
            let mut bits_of_state: BTreeMap<BTreeSet<Class>, Vec<u64>> = BTreeMap::new();
            let discovered = compile::discover_states_ids(compiled, threads);
            for index in 0..discovered.len() as u32 {
                let bits = discovered.bits(index);
                if bits.iter().map(|w| w.count_ones()).sum::<u32>() < 2 {
                    continue;
                }
                let state = compile::state_classes(compiled, bits);
                let witness = discovered.witness(index);
                imp.insert(
                    state.clone(),
                    ImplicitWitness {
                        start: compiled.class(witness.start).clone(),
                        labels: witness
                            .labels
                            .iter()
                            .map(|&l| compiled.label(l).clone())
                            .collect(),
                    },
                );
                bits_of_state.insert(state, bits.to_vec());
            }
            let (entries, report) = name_states(weak, imp);
            let id_entries: Vec<(Vec<u64>, Class)> = entries
                .iter()
                .map(|(state, class)| (bits_of_state[state].clone(), class.clone()))
                .collect();
            // No multi-element states means every C̄/Ē/S̄ rule quantifies
            // over an empty `Imp`: the completion IS the input, so the
            // assembly (a rebuild + re-close + decompile that would
            // reproduce `weak` exactly) is skipped. This is the common
            // case for schemas without label collisions — notably every
            // registry re-merge of members that already completed cleanly.
            if id_entries.is_empty() {
                let proper = ProperSchema::from_compiled(weak.clone(), compiled)?;
                return Ok((proper, report));
            }
            let (completed, completed_compiled) =
                compile::assemble_ids(compiled, &id_entries, threads)?;
            let proper = ProperSchema::from_compiled(completed, &completed_compiled)?;
            Ok((proper, report))
        }
    }
}

/// Names every `Imp` state (the reachable states of cardinality > 1) and
/// builds the completion report. Distinct states may flatten to the same
/// class (when inputs already contained implicit classes); contributions
/// are unioned by the assembly. Shared by both engines; `states` must be
/// sorted by state so the first-witness choice is deterministic.
fn name_states(
    weak: &WeakSchema,
    states: BTreeMap<BTreeSet<Class>, ImplicitWitness>,
) -> (Vec<(BTreeSet<Class>, Class)>, CompletionReport) {
    let mut entries: Vec<(BTreeSet<Class>, Class)> = Vec::with_capacity(states.len());
    let mut report = CompletionReport::default();
    for (state, witness) in states {
        let class = canonical_meet_class(weak, &state);
        if !weak.contains_class(&class) {
            // Not already present from an earlier merge: genuinely new.
            let newly_seen = !report.implicit.iter().any(|info| info.class == class);
            if newly_seen {
                report.implicit.push(ImplicitClassInfo {
                    class: class.clone(),
                    members: state.clone(),
                    witness,
                });
            }
        }
        entries.push((state, class));
    }
    report.implicit.sort_by(|a, b| a.class.cmp(&b.class));
    (entries, report)
}

/// [`complete`] with the §4.2 consistency check: every pair of origins of
/// every implicit class must be declared consistent, otherwise the merge is
/// *inconsistent* and must not proceed.
pub fn complete_checked(
    weak: &WeakSchema,
    consistency: &ConsistencyRelation,
) -> Result<(ProperSchema, CompletionReport), MergeError> {
    let (proper, report) = complete_with_report(weak)?;
    check_consistency(&report, consistency)?;
    Ok((proper, report))
}

/// The §4.2 consistency pass, applied to the report of *any* completion
/// engine: every pair of origins of every implicit class must be
/// declared consistent. This is the single implementation behind
/// [`complete_checked`], [`crate::merger::Merger::with_consistency`] and
/// (through the merger) the deprecated [`crate::merge_consistent`] and
/// [`crate::MergeSession`] paths.
pub(crate) fn check_consistency(
    report: &CompletionReport,
    consistency: &ConsistencyRelation,
) -> Result<(), MergeError> {
    for info in &report.implicit {
        let members: Vec<&Class> = info.members.iter().collect();
        for (i, left) in members.iter().enumerate() {
            for right in &members[i + 1..] {
                if !consistency.consistent(left, right) {
                    return Err(MergeError::Inconsistent {
                        left: (*left).clone(),
                        right: (*right).clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// The class standing for the meet of `state`, named canonically: the
/// flattened origin names are reduced to their MinS antichain, so the
/// identity never mentions an origin already implied by another.
fn canonical_meet_class(weak: &WeakSchema, state: &BTreeSet<Class>) -> Class {
    let flat: BTreeSet<Class> = state
        .iter()
        .flat_map(Class::flattened_names)
        .map(Class::Named)
        .collect();
    let mut canonical = weak.min_s(&flat);
    if canonical.len() == 1 {
        canonical.pop_first().expect("non-empty")
    } else {
        Class::implicit(canonical)
    }
}

/// Renames every pre-existing implicit class whose origin set is not
/// canonical under this schema's specialization order (MinS for meets,
/// MaxS for unions), merging classes that canonicalize to the same name.
/// Returns `None` when nothing needed renaming.
fn canonicalize_implicit(
    weak: &WeakSchema,
    close: CloseFn,
) -> Result<Option<WeakSchema>, SchemaError> {
    let mut rename: BTreeMap<Class, Class> = BTreeMap::new();
    for class in weak.classes() {
        let Some(origin) = class.origin() else {
            continue;
        };
        let members: BTreeSet<Class> = origin.iter().map(Class::from).collect();
        let mut canonical = match class {
            Class::Implicit(_) => weak.min_s(&members),
            _ => weak.max_s(&members),
        };
        if canonical.len() == members.len() {
            continue; // already an antichain: canonical as-is
        }
        let target = if canonical.len() == 1 {
            canonical.pop_first().expect("non-empty")
        } else if class.is_implicit_meet() {
            Class::implicit(canonical)
        } else {
            Class::implicit_union(canonical)
        };
        rename.insert(class.clone(), target);
    }
    if rename.is_empty() {
        return Ok(None);
    }
    let map = |class: &Class| rename.get(class).cloned().unwrap_or_else(|| class.clone());
    let (classes, spec, arrows) = weak.to_raw_parts();
    let classes = classes.iter().map(map).collect();
    let mut spec_edges: BTreeMap<Class, BTreeSet<Class>> = BTreeMap::new();
    for (sub, sups) in &spec {
        let sub = map(sub);
        for sup in sups {
            let sup = map(sup);
            if sub != sup {
                spec_edges.entry(sub.clone()).or_default().insert(sup);
            }
        }
    }
    let arrows = arrows
        .into_iter()
        .map(|(p, a, q)| (map(&p), a, map(&q)))
        .collect();
    close(classes, spec_edges, arrows).map(Some)
}

/// Runs the `I∞` fixpoint, returning every reachable MinS-canonical state
/// with a discovery witness. States of cardinality 1 are tracked (they seed
/// longer derivations) but produce no implicit class.
///
/// This is the symbolic reference implementation;
/// `compile::discover_states_ids` is the id-space twin the public path
/// uses.
pub(crate) fn discover_states(weak: &WeakSchema) -> BTreeMap<BTreeSet<Class>, ImplicitWitness> {
    let mut states: BTreeMap<BTreeSet<Class>, ImplicitWitness> = BTreeMap::new();
    let mut queue: VecDeque<BTreeSet<Class>> = VecDeque::new();

    // I₁: R(p, a) for every class and label, canonicalized by MinS.
    for class in weak.classes() {
        for label in weak.labels_of(class) {
            let reached = weak.arrow_targets(class, &label);
            if reached.is_empty() {
                continue;
            }
            let state = weak.min_s(&reached);
            states.entry(state.clone()).or_insert_with(|| {
                queue.push_back(state.clone());
                ImplicitWitness {
                    start: class.clone(),
                    labels: vec![label.clone()],
                }
            });
        }
    }

    // Iₙ₊₁ = R(X, a): step from each state through every label any member
    // carries. R(X, a) = R(MinS(X), a) by W1, so stepping from the
    // canonical state is exact.
    while let Some(state) = queue.pop_front() {
        let witness = states
            .get(&state)
            .expect("queued states are recorded")
            .clone();
        let mut labels: BTreeSet<Label> = BTreeSet::new();
        for member in &state {
            labels.extend(weak.labels_of(member));
        }
        for label in labels {
            let reached = weak.arrow_targets_of_set(&state, &label);
            if reached.is_empty() {
                continue;
            }
            let next = weak.min_s(&reached);
            if !states.contains_key(&next) {
                let mut next_witness = witness.clone();
                next_witness.labels.push(label.clone());
                states.insert(next.clone(), next_witness);
                queue.push_back(next);
            }
        }
    }

    states
}

/// Builds `(C̄, Ē, S̄)` from the input schema and the implicit classes.
fn assemble(
    weak: &WeakSchema,
    class_of_state: &[(BTreeSet<Class>, Class)],
    close: CloseFn,
) -> Result<WeakSchema, SchemaError> {
    let (mut classes, mut spec, mut arrows) = weak.to_raw_parts();
    classes.extend(class_of_state.iter().map(|(_, class)| class.clone()));

    // S̄, rule by rule. `le` below is the reflexive specialization of the
    // *input* schema, as in the paper ("q ⇒ p ∈ S").
    //
    // Implicit-class identity flattens origins (`{{A|D},{C|E}}` becomes
    // `{A,C,D,E}`), and the class's extent semantics follows the
    // flattened name: the INTERSECTION of the named origins' extents.
    // Rules that put something BELOW an implicit class must therefore
    // quantify over the flattened names — a state member like `{A|D}`
    // witnesses only membership in A ∪ D, which does not reach the
    // smaller A ∩ D ∩ … extent. Rules that put the implicit class below
    // something may use the raw state members (the class's extent is
    // inside every origin, named or union).
    let le = |sub: &Class, sup: &Class| weak.specializes(sub, sup);
    let flattened = |state: &BTreeSet<Class>| -> BTreeSet<Class> {
        state
            .iter()
            .flat_map(Class::flattened_names)
            .map(Class::Named)
            .collect()
    };

    for (x_state, x_class) in class_of_state {
        let x_flat = flattened(x_state);
        // X ⇒ p where p has a specialization in X.
        for p in weak.classes() {
            if x_state.iter().any(|q| le(q, p)) {
                spec.entry(x_class.clone()).or_default().insert(p.clone());
            }
            // p ⇒ X where p specializes every (flattened) member of X.
            if x_flat.iter().all(|q| le(p, q)) {
                spec.entry(p.clone()).or_default().insert(x_class.clone());
            }
        }
        // X ⇒ Y where every (flattened) member of Y has a specialization
        // in X.
        for (y_state, y_class) in class_of_state {
            if x_class == y_class {
                continue;
            }
            if flattened(y_state)
                .iter()
                .all(|p| x_state.iter().any(|q| le(q, p)))
            {
                spec.entry(x_class.clone())
                    .or_default()
                    .insert(y_class.clone());
            }
        }
    }

    // Ē. Arrows of input classes to implicit targets: x --a--> Y whenever
    // Y ⊆ R(x, a).
    let mut label_universe: BTreeSet<Label> = weak.all_labels();
    for x in weak.classes() {
        for label in weak.labels_of(x) {
            let reached = weak.arrow_targets(x, &label);
            for (y_state, y_class) in class_of_state {
                if y_state.is_subset(&reached) {
                    arrows.push((x.clone(), label.clone(), y_class.clone()));
                }
            }
        }
    }
    // Arrows out of implicit classes: R̄(X, a) = R(X, a), plus implicit
    // targets contained in it.
    for (x_state, x_class) in class_of_state {
        let mut labels: BTreeSet<Label> = BTreeSet::new();
        for member in x_state {
            labels.extend(weak.labels_of(member));
        }
        label_universe.extend(labels.iter().cloned());
        for label in labels {
            let reached = weak.arrow_targets_of_set(x_state, &label);
            for q in &reached {
                arrows.push((x_class.clone(), label.clone(), q.clone()));
            }
            for (y_state, y_class) in class_of_state {
                if y_state.is_subset(&reached) {
                    arrows.push((x_class.clone(), label.clone(), y_class.clone()));
                }
            }
        }
    }
    let _ = label_universe; // retained for symmetry with the paper's L

    close(classes, spec, arrows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::weak_join;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn already_proper_schema_gains_nothing() {
        let weak = WeakSchema::builder()
            .specialize("Police-dog", "Dog")
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let (proper, report) = complete_with_report(&weak).unwrap();
        assert_eq!(report.num_implicit(), 0);
        assert_eq!(proper.as_weak(), &weak);
    }

    #[test]
    fn figure_3_introduces_one_implicit_class() {
        // Schema 1: C ⇒ A1, C ⇒ A2. Schema 2: A1 --a--> B1, A2 --a--> B2.
        let g1 = WeakSchema::builder()
            .specialize("C", "A1")
            .specialize("C", "A2")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("A1", "a", "B1")
            .arrow("A2", "a", "B2")
            .build()
            .unwrap();
        let merged = weak_join(&g1, &g2).unwrap();
        let (proper, report) = complete_with_report(&merged).unwrap();

        let x = Class::implicit([c("B1"), c("B2")]);
        assert_eq!(report.num_implicit(), 1);
        assert_eq!(report.implicit[0].class, x);
        // C's a-arrow exists (inherited from both A1 and A2) and its
        // canonical class is the implicit one.
        assert_eq!(proper.canonical_target(&c("C"), &l("a")), Some(&x));
        assert!(proper.specializes(&x, &c("B1")));
        assert!(proper.specializes(&x, &c("B2")));
        // The witness explains the derivation from C.
        assert_eq!(report.implicit[0].witness.start, c("C"));
        assert_eq!(report.implicit[0].witness.labels, vec![l("a")]);
    }

    #[test]
    fn figure_7_merge_prefers_weaker_candidate_g3() {
        // Fig. 6: G1 has F --a--> C, F --a--> D (via A, B arrows? — drawn
        // directly); G2 relates E below C and D. The merge must NOT
        // identify the a-target with E (candidate G4), but introduce {C,D}
        // (candidate G3): E may carry additional constraints.
        let g1 = WeakSchema::builder()
            .arrow("F", "a", "C")
            .arrow("F", "a", "D")
            .classes(["A", "B"])
            .specialize("C", "A")
            .specialize("D", "B")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .specialize("E", "C")
            .specialize("E", "D")
            .classes(["A", "B"])
            .specialize("C", "A")
            .specialize("D", "B")
            .build()
            .unwrap();
        let merged = weak_join(&g1, &g2).unwrap();
        let (proper, report) = complete_with_report(&merged).unwrap();

        let cd = Class::implicit([c("C"), c("D")]);
        assert_eq!(report.num_implicit(), 1);
        assert_eq!(proper.canonical_target(&c("F"), &l("a")), Some(&cd));
        // E sits below the implicit class (p ⇒ X rule), preserving its
        // potential extra constraints without conflating it with the
        // arrow target.
        assert!(proper.specializes(&c("E"), &cd));
        assert_ne!(proper.canonical_target(&c("F"), &l("a")), Some(&c("E")));
    }

    #[test]
    fn chained_implicit_classes() {
        // C's a-targets {B1,B2}; B1/B2's b-targets {T1,T2}: completing
        // must introduce {B1,B2} *and* {T1,T2}, with an arrow between them.
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .arrow("B1", "b", "T1")
            .arrow("B2", "b", "T2")
            .build()
            .unwrap();
        let (proper, report) = complete_with_report(&weak).unwrap();
        let b12 = Class::implicit([c("B1"), c("B2")]);
        let t12 = Class::implicit([c("T1"), c("T2")]);
        assert_eq!(report.num_implicit(), 2);
        assert_eq!(proper.canonical_target(&c("C"), &l("a")), Some(&b12));
        assert_eq!(proper.canonical_target(&b12, &l("b")), Some(&t12));
        // Witness for {T1,T2} starts at C and follows a then b.
        let t_info = report.implicit.iter().find(|i| i.class == t12).unwrap();
        assert_eq!(t_info.witness.labels, vec![l("a"), l("b")]);
    }

    #[test]
    fn strip_of_complete_is_identity() {
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .arrow("B1", "b", "T1")
            .arrow("B2", "b", "T2")
            .specialize("C", "Top")
            .build()
            .unwrap();
        let proper = complete(&weak).unwrap();
        assert_eq!(proper.as_weak().strip_implicit(), weak);
    }

    #[test]
    fn completion_is_idempotent() {
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let once = complete(&weak).unwrap();
        let (twice, report) = complete_with_report(once.as_weak()).unwrap();
        assert_eq!(report.num_implicit(), 0, "no new classes on re-completion");
        assert_eq!(once, twice);
    }

    #[test]
    fn existing_implicit_class_is_rediscovered_not_duplicated() {
        // A schema that already contains {B1,B2} (e.g. a previous merge
        // result) completes without introducing anything.
        let x = Class::implicit([c("B1"), c("B2")]);
        let weak = WeakSchema::builder()
            .specialize(x.clone(), "B1")
            .specialize(x.clone(), "B2")
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .arrow("C", "a", x.clone())
            .build()
            .unwrap();
        let (proper, report) = complete_with_report(&weak).unwrap();
        assert_eq!(report.num_implicit(), 0);
        assert_eq!(proper.canonical_target(&c("C"), &l("a")), Some(&x));
    }

    #[test]
    fn min_s_canonicalization_respects_order() {
        // C --a--> B1, C --a--> B2 with B1 ⇒ B2: targets {B1,B2} but
        // MinS = {B1}: no implicit class needed.
        let weak = WeakSchema::builder()
            .specialize("B1", "B2")
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let (proper, report) = complete_with_report(&weak).unwrap();
        assert_eq!(report.num_implicit(), 0);
        assert_eq!(proper.canonical_target(&c("C"), &l("a")), Some(&c("B1")));
    }

    #[test]
    fn implicit_class_inherits_member_arrows() {
        // {B1,B2} ⇒ B1 and B1 --f--> T: the implicit class has an f-arrow
        // to T by W1.
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .arrow("B1", "f", "T")
            .build()
            .unwrap();
        let proper = complete(&weak).unwrap();
        let x = Class::implicit([c("B1"), c("B2")]);
        assert!(proper.has_arrow(&x, &l("f"), &c("T")));
    }

    #[test]
    fn nested_origin_flattening_merges_with_plain_origin() {
        // An input carrying {D,E} merged with arrows reaching {D,E} and F
        // produces {D,E,F}, not {{D,E},F} — the Fig. 4/5 resolution.
        let de = Class::implicit([c("D"), c("E")]);
        let g_prior = WeakSchema::builder()
            .specialize(de.clone(), "D")
            .specialize(de.clone(), "E")
            .arrow("C", "a", de.clone())
            .arrow("C", "a", "D")
            .arrow("C", "a", "E")
            .build()
            .unwrap();
        let g_new = WeakSchema::builder().arrow("C", "a", "F").build().unwrap();
        let merged = weak_join(&g_prior, &g_new).unwrap();
        let (proper, report) = complete_with_report(&merged).unwrap();

        let def = Class::implicit([c("D"), c("E"), c("F")]);
        assert_eq!(report.num_implicit(), 1);
        assert_eq!(report.implicit[0].class, def);
        assert_eq!(proper.canonical_target(&c("C"), &l("a")), Some(&def));
        // And the flattened class sits below the older implicit class.
        assert!(proper.specializes(&def, &de));
    }

    #[test]
    fn consistency_check_blocks_inconsistent_merge() {
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let mut rel = ConsistencyRelation::assume_consistent();
        rel.declare_inconsistent(c("B1"), c("B2"));
        let err = complete_checked(&weak, &rel).unwrap_err();
        match err {
            MergeError::Inconsistent { left, right } => {
                assert_eq!((left, right), (c("B1"), c("B2")));
            }
            other => panic!("expected inconsistency, got {other}"),
        }
    }

    #[test]
    fn consistency_check_passes_when_declared() {
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let rel = ConsistencyRelation::assume_consistent();
        let (proper, report) = complete_checked(&weak, &rel).unwrap();
        assert_eq!(report.num_implicit(), 1);
        assert!(proper.check_d1() && proper.check_d2());
    }

    #[test]
    fn empty_schema_completes_to_empty() {
        let (proper, report) = complete_with_report(&WeakSchema::empty()).unwrap();
        assert_eq!(proper.num_classes(), 0);
        assert_eq!(report.num_implicit(), 0);
    }

    #[test]
    fn witness_display() {
        let w = ImplicitWitness {
            start: c("C"),
            labels: vec![l("a"), l("b")],
        };
        assert_eq!(w.to_string(), "C --a--> --b-->");
    }
}
