//! Compiled schemas: dense ids, bitset closures and CSR arrow adjacency.
//!
//! [`WeakSchema`] stores the closed form symbolically — `BTreeMap`s and
//! `BTreeSet`s keyed by [`Class`] and [`Label`] handles — which is the
//! right *surface* for an API built around the paper's notation, but every
//! hot path (transitive closure, `MinS`/`MaxS` antichains, the W1/W2
//! arrow closure, the `Imp` fixpoint of completion) then pays tree-map
//! traversal and string-comparison costs per step. [`CompiledSchema`] is
//! the dense twin the engine actually computes on:
//!
//! * classes and labels are interned into per-schema symbol tables with
//!   dense `u32` ids ([`ClassId`], [`LabelId`]), assigned in sorted order
//!   so id order agrees with symbol order;
//! * the strict specialization relation is a transitively closed **bit
//!   matrix** (one `Vec<u64>` row per class) stored in both directions
//!   (`supers` and its transpose `subs`), making `p ⇒ q` a bit test and
//!   `MinS`/`MaxS` a word-wise intersection;
//! * arrows are laid out **CSR-style**: per class, a sorted run of
//!   `(label, target-range)` pairs indexing one flat target-id array.
//!
//! The representation is lossless: [`CompiledSchema::decompile`] rebuilds
//! the exact symbolic [`WeakSchema`] (`decompile(compile(g)) == g`,
//! property-tested), so the symbolic types remain the public surface while
//! `close`, `weak_join_all` and completion run in id space. The retained
//! symbolic implementations live in [`crate::reference`] for differential
//! testing and the benchmark trajectory.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::class::Class;
use crate::error::{CycleWitness, SchemaError};
use crate::name::Label;
use crate::order::UpSet;
use crate::parallel;
use crate::row::{
    self, and_into, clear_bit, get_bit, hash_row, is_zero, iter_bits, popcount, set_bit, RowRef,
    SpecMatrix, SpecRow,
};
use crate::scratch::{self, ScratchPool, StateArena};
use crate::weak::{ArrowMap, WeakSchema};

/// A dense class id: an index into the compiled schema's class table.
pub type ClassId = u32;

/// A dense label id: an index into the compiled schema's label table.
pub type LabelId = u32;

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// FNV-1a: symbol interning hashes short strings by the thousand, where
/// SipHash's per-call setup dominates. Not DoS-resistant — fine for maps
/// keyed by a schema's own symbols.
pub(crate) struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// A `HashMap` with the cheap FNV hasher.
pub(crate) type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<Fnv>>;

// ---------------------------------------------------------------------------
// Row primitives
// ---------------------------------------------------------------------------
//
// The bit-twiddling helpers and the adaptive row/matrix types live in
// [`crate::row`] — one shared ops module for every engine. An empty
// accumulation row is pool-backed in dense mode (recycled `Vec<u64>`s)
// and an ordinary small vector in sparse mode.

fn empty_row(words: usize, pool: &mut ScratchPool) -> SpecRow {
    if row::accumulate_sparse(words) {
        SpecRow::Sparse(Vec::new())
    } else {
        SpecRow::Dense(pool.take(words))
    }
}

// ---------------------------------------------------------------------------
// CompiledSchema
// ---------------------------------------------------------------------------

/// A weak schema compiled to dense ids. See the module docs.
///
/// Construct with [`CompiledSchema::compile`]; all queries are in id space
/// (`ClassId`/`LabelId`), with [`CompiledSchema::class`] /
/// [`CompiledSchema::label`] translating back to symbols and
/// [`CompiledSchema::decompile`] rebuilding the symbolic schema wholesale.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledSchema {
    /// Id → class, sorted ascending (id order == `Class` order).
    classes: Vec<Class>,
    /// Id → label, sorted ascending.
    labels: Vec<Label>,
    /// Strict transitively closed "above" rows: bit `q` of row `p` ⇔ `p ⇒ q`.
    /// Adaptive per row: dense words or sorted-sparse ids (see
    /// [`crate::row`]).
    supers: SpecMatrix,
    /// The transpose: bit `q` of row `p` ⇔ `q ⇒ p`.
    subs: SpecMatrix,
    /// CSR row index: class `p`'s labelled pairs are
    /// `pair_labels[row_start[p]..row_start[p+1]]`.
    row_start: Vec<u32>,
    /// Label of each (class, label) pair, ascending within a row.
    pair_labels: Vec<LabelId>,
    /// Target range of each pair: `targets[start..end]`, never empty.
    pair_ranges: Vec<(u32, u32)>,
    /// Flat arrow-target array, ascending within each range.
    targets: Vec<ClassId>,
}

impl CompiledSchema {
    /// Compiles a (closed) weak schema into the dense form.
    pub fn compile(schema: &WeakSchema) -> CompiledSchema {
        let classes: Vec<Class> = schema.classes().cloned().collect();
        let labels: Vec<Label> = schema.all_labels().into_iter().collect();
        let n = classes.len();
        let words = n.div_ceil(64);
        let cid: FastMap<&Class, u32> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c, i as u32))
            .collect();
        let lid: FastMap<&Label, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l, i as u32))
            .collect();

        // Each class's closed super set arrives sorted (`BTreeSet`
        // iteration order is `Class` order, which is id order), so rows
        // build directly in their final adaptive representation.
        let super_rows: Vec<SpecRow> = classes
            .iter()
            .map(|class| {
                let ids: Vec<u32> = schema
                    .supers
                    .get(class)
                    .map(|sups| sups.iter().map(|sup| cid[sup]).collect())
                    .unwrap_or_default();
                SpecRow::from_sorted_ids(ids, words)
            })
            .collect();
        let supers = SpecMatrix::from_rows(super_rows, words);
        let subs = transpose(&supers, n);

        let mut row_start = Vec::with_capacity(n + 1);
        let mut pair_labels = Vec::new();
        let mut pair_ranges = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        row_start.push(0);
        for class in &classes {
            if let Some(by_label) = schema.arrows.get(class) {
                for (label, tgts) in by_label {
                    let start = targets.len() as u32;
                    targets.extend(tgts.iter().map(|t| cid[t]));
                    pair_labels.push(lid[label]);
                    pair_ranges.push((start, targets.len() as u32));
                }
            }
            row_start.push(pair_labels.len() as u32);
        }

        CompiledSchema {
            classes,
            labels,
            supers,
            subs,
            row_start,
            pair_labels,
            pair_ranges,
            targets,
        }
    }

    /// Rebuilds the symbolic weak schema. Lossless:
    /// `compile(g).decompile() == g` for every closed schema `g`.
    ///
    /// Every map/set is collected from an iterator already in key order
    /// (id order == symbol order), hitting the standard library's sorted
    /// bulk-build path instead of per-element insertions.
    pub fn decompile(&self) -> WeakSchema {
        let classes: BTreeSet<Class> = self.classes.iter().cloned().collect();
        let supers: UpSet<Class> = (0..self.classes.len() as u32)
            .filter(|&p| !self.supers.row(p).is_empty())
            .map(|p| {
                let set: BTreeSet<Class> = self
                    .supers
                    .row(p)
                    .iter()
                    .map(|q| self.classes[q as usize].clone())
                    .collect();
                (self.classes[p as usize].clone(), set)
            })
            .collect();
        let arrows: ArrowMap = (0..self.classes.len() as u32)
            .filter(|&p| !self.labels_of(p).is_empty())
            .map(|p| {
                let by_label: BTreeMap<Label, BTreeSet<Class>> = self
                    .pairs_of(p)
                    .map(|(label, (start, end))| {
                        let set: BTreeSet<Class> = self.targets[start as usize..end as usize]
                            .iter()
                            .map(|&t| self.classes[t as usize].clone())
                            .collect();
                        (self.labels[label as usize].clone(), set)
                    })
                    .collect();
                (self.classes[p as usize].clone(), by_label)
            })
            .collect();
        WeakSchema {
            classes,
            supers,
            arrows,
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct labels.
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// Number of arrows in the closed relation.
    pub fn num_arrows(&self) -> usize {
        self.targets.len()
    }

    /// Number of strict specialization pairs in the closed relation.
    pub fn num_specializations(&self) -> usize {
        self.supers.count_ones()
    }

    /// Number of distinct `(class, label)` arrow pairs (the CSR pair
    /// count) — the compiled twin of [`WeakSchema::num_arrow_pairs`].
    pub fn num_arrow_pairs(&self) -> usize {
        self.pair_labels.len()
    }

    /// Approximate heap footprint of the specialization matrices and CSR
    /// arrow arrays, in bytes. This is the number the adaptive row
    /// representation exists to shrink — a 100k-class schema is ~2.5 GB
    /// in dense rows (two `100_000²`-bit matrices) but only
    /// `O(spec pairs)` in sparse rows — so the benchmark suite reports it
    /// alongside wall-clock time. Interned name storage is excluded: it
    /// is identical under every representation.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.supers.heap_bytes()
            + self.subs.heap_bytes()
            + self.row_start.len() * size_of::<u32>()
            + self.pair_labels.len() * size_of::<LabelId>()
            + self.pair_ranges.len() * size_of::<(u32, u32)>()
            + self.targets.len() * size_of::<ClassId>()
    }

    /// Whether any class carries an origin set (a pre-existing implicit
    /// or union class from an earlier merge result fed back in).
    pub(crate) fn has_origin_classes(&self) -> bool {
        self.classes.iter().any(|c| c.origin().is_some())
    }

    /// The class behind `id`.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id as usize]
    }

    /// The label behind `id`.
    pub fn label(&self, id: LabelId) -> &Label {
        &self.labels[id as usize]
    }

    /// The id of `class`, if it belongs to the schema.
    pub fn class_id(&self, class: &Class) -> Option<ClassId> {
        self.classes.binary_search(class).ok().map(|i| i as u32)
    }

    /// The id of `label`, if any arrow uses it.
    pub fn label_id(&self, label: &Label) -> Option<LabelId> {
        self.labels.binary_search(label).ok().map(|i| i as u32)
    }

    /// Whether `sub ⇒ sup` holds, including reflexivity.
    pub fn specializes(&self, sub: ClassId, sup: ClassId) -> bool {
        sub == sup || self.supers.get(sub, sup)
    }

    /// Whether `sub ⇒ sup` holds strictly (`sub ≠ sup`).
    pub fn strictly_specializes(&self, sub: ClassId, sup: ClassId) -> bool {
        self.supers.get(sub, sup)
    }

    /// The labels of arrows leaving `src`, ascending.
    pub fn labels_of(&self, src: ClassId) -> &[LabelId] {
        let lo = self.row_start[src as usize] as usize;
        let hi = self.row_start[src as usize + 1] as usize;
        &self.pair_labels[lo..hi]
    }

    /// `R(p, a)` in id space: the targets of `src`'s `label`-arrows,
    /// ascending; empty if there is no such arrow.
    pub fn arrow_targets(&self, src: ClassId, label: LabelId) -> &[ClassId] {
        let lo = self.row_start[src as usize] as usize;
        let hi = self.row_start[src as usize + 1] as usize;
        match self.pair_labels[lo..hi].binary_search(&label) {
            Ok(offset) => {
                let (start, end) = self.pair_ranges[lo + offset];
                &self.targets[start as usize..end as usize]
            }
            Err(_) => &[],
        }
    }

    /// `MinS(X)` in id space: the members of `members` with no other
    /// member strictly below them, ascending and deduplicated.
    pub fn min_s(&self, members: &[ClassId]) -> Vec<ClassId> {
        let state = self.bits_of(members);
        iter_bits(&self.min_s_bits(&state)).collect()
    }

    /// `MaxS(X)` in id space: the dual of [`CompiledSchema::min_s`].
    pub fn max_s(&self, members: &[ClassId]) -> Vec<ClassId> {
        let state = self.bits_of(members);
        let mut out = state.clone();
        for m in iter_bits(&state) {
            if self.supers.row(m).intersects_dense(&state) {
                clear_bit(&mut out, m);
            }
        }
        iter_bits(&out).collect()
    }

    /// Dense row width (in `u64` words) of this schema's id space.
    pub(crate) fn words(&self) -> usize {
        self.supers.words()
    }

    fn bits_of(&self, members: &[ClassId]) -> Vec<u64> {
        let mut bits = vec![0u64; self.words()];
        for &m in members {
            set_bit(&mut bits, m);
        }
        bits
    }

    /// `MinS` over a bitset state: clears every member with another member
    /// strictly below it (a word-wise intersection per member).
    fn min_s_bits(&self, state: &[u64]) -> Vec<u64> {
        let mut out = vec![0u64; state.len()];
        self.min_s_bits_into(state, &mut out);
        out
    }

    /// [`CompiledSchema::min_s_bits`] into a caller-provided row — the
    /// allocation-free form the fixpoint runs on.
    fn min_s_bits_into(&self, state: &[u64], out: &mut [u64]) {
        out.copy_from_slice(state);
        for m in iter_bits(state) {
            if self.subs.row(m).intersects_dense(state) {
                clear_bit(out, m);
            }
        }
    }

    fn pairs_of(&self, src: ClassId) -> impl Iterator<Item = (LabelId, (u32, u32))> + '_ {
        let lo = self.row_start[src as usize] as usize;
        let hi = self.row_start[src as usize + 1] as usize;
        self.pair_labels[lo..hi]
            .iter()
            .copied()
            .zip(self.pair_ranges[lo..hi].iter().copied())
    }
}

fn transpose(supers: &SpecMatrix, n: usize) -> SpecMatrix {
    let words = supers.words();
    // Walking rows in ascending `p` appends each `p` to its targets'
    // id lists in sorted order, so every transposed row finalizes
    // without a sort.
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
    for p in 0..n as u32 {
        for q in supers.row(p).iter() {
            lists[q as usize].push(p);
        }
    }
    SpecMatrix::from_rows(
        lists
            .into_iter()
            .map(|ids| SpecRow::from_sorted_ids(ids, words))
            .collect(),
        words,
    )
}

// ---------------------------------------------------------------------------
// The id-space closure engine
// ---------------------------------------------------------------------------

/// Computes the strict transitive closure of the direct edges in the
/// `direct` bit matrix (self-loops tolerated and dropped), or a cycle
/// witness as an id path.
fn closed_supers(n: usize, direct: &SpecMatrix) -> Result<SpecMatrix, Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }

    let words = n.div_ceil(64);
    let mut color = vec![Color::White; n];
    let mut finish: Vec<u32> = Vec::with_capacity(n);

    for root in 0..n as u32 {
        if color[root as usize] != Color::White {
            continue;
        }
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                color[node as usize] = Color::Black;
                finish.push(node);
                continue;
            }
            match color[node as usize] {
                Color::Black | Color::Gray => continue,
                Color::White => {}
            }
            color[node as usize] = Color::Gray;
            stack.push((node, true));
            for next in direct.row(node).iter() {
                if next == node {
                    continue;
                }
                match color[next as usize] {
                    Color::White => stack.push((next, false)),
                    // `next` is an ancestor on the DFS stack: cycle.
                    Color::Gray => return Err(extract_cycle_ids(direct, next)),
                    Color::Black => {}
                }
            }
        }
    }

    // Finish order lists every reachable node after its descendants, so one
    // pass suffices: row(p) = ⋃ { {q} ∪ row(q) | p → q direct }. The union
    // accumulates in one dense scratch row (a few KB even at 100k
    // classes); each finished row then stores adaptively.
    let mut rows: Vec<SpecRow> = (0..n).map(|_| SpecRow::Sparse(Vec::new())).collect();
    let mut acc = vec![0u64; words];
    for &node in &finish {
        acc.iter_mut().for_each(|w| *w = 0);
        for next in direct.row(node).iter() {
            if next == node {
                continue;
            }
            set_bit(&mut acc, next);
            rows[next as usize].as_ref().or_into_dense(&mut acc);
        }
        rows[node as usize] = SpecRow::from_dense(&acc, words);
    }
    Ok(SpecMatrix::from_rows(rows, words))
}

/// Reconstructs a shortest cycle through `start` (known to lie on one) by
/// BFS over the direct edges; mirrors the symbolic witness extraction so
/// both engines report comparable paths.
fn extract_cycle_ids(direct: &SpecMatrix, start: u32) -> Vec<u32> {
    let n = direct.len();
    let mut pred = vec![u32::MAX; n];
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        for next in direct.row(node).iter() {
            if next == start {
                let mut rev = vec![start, node];
                let mut current = node;
                while current != start {
                    current = pred[current as usize];
                    rev.push(current);
                }
                rev.reverse();
                return rev;
            }
            if next != node && pred[next as usize] == u32::MAX {
                pred[next as usize] = node;
                queue.push_back(next);
            }
        }
    }
    vec![start, start]
}

/// Raw id-space schema parts: dense symbol tables, direct specialization
/// edges as bit rows, raw arrows as per-class `label ↦ target-bits` maps.
/// The accumulation format of every compiled construction path — bitsets
/// deduplicate union passes for free.
pub(crate) struct RawDense {
    classes: Vec<Class>,
    labels: Vec<Label>,
    direct: SpecMatrix,
    raw_arrows: Vec<BTreeMap<u32, SpecRow>>,
}

impl RawDense {
    fn new(classes: Vec<Class>, labels: Vec<Label>) -> Self {
        let n = classes.len();
        let words = n.div_ceil(64);
        RawDense {
            classes,
            labels,
            direct: SpecMatrix::new(n, words),
            raw_arrows: vec![BTreeMap::new(); n],
        }
    }

    fn words(&self) -> usize {
        self.direct.words()
    }
}

/// Closes [`RawDense`] parts into a [`CompiledSchema`]: transitive closure
/// of the specializations, then the W1/W2 arrow closure, all on bitsets.
/// The error is a specialization cycle as an id path.
fn compile_dense(parts: RawDense) -> Result<CompiledSchema, CycleIds> {
    compile_dense_mt(parts, 1)
}

/// [`compile_dense`] with the W1/W2 arrow closure sharded over `threads`
/// scoped workers. The specialization closure is one dependency-ordered
/// pass and stays sequential; the arrow closure is per-class independent
/// once the closed `supers` rows exist, so each worker emits the CSR
/// segment for a contiguous class range and the segments are stitched in
/// chunk order — byte-identical arrays to the sequential pass at every
/// thread count.
fn compile_dense_mt(parts: RawDense, threads: usize) -> Result<CompiledSchema, CycleIds> {
    let RawDense {
        classes,
        labels,
        direct,
        raw_arrows: raw,
    } = parts;
    let n = classes.len();
    let labels_len = labels.len();
    let supers = match closed_supers(n, &direct) {
        Ok(supers) => supers,
        Err(path) => return Err(CycleIds { path, classes }),
    };
    let subs = transpose(&supers, n);

    let words = supers.words();
    let mut has_supers = vec![0u64; words];
    for p in 0..n as u32 {
        if !supers.row(p).is_empty() {
            set_bit(&mut has_supers, p);
        }
    }

    let workers = parallel::throttled_threads(threads, n, 64);
    let segments = parallel::map_chunks(n, workers, |range| {
        arrow_rows(range, &raw, &supers, &has_supers, words, labels_len)
    });
    // The raw rows are spent; recycle dense payloads for the next
    // pipeline stage (sparse rows are ordinary small vectors).
    scratch::with_pool(|pool| {
        for mut by_label in raw {
            while let Some((_, row)) = by_label.pop_first() {
                row.recycle(pool);
            }
        }
    });

    let mut row_start = Vec::with_capacity(n + 1);
    row_start.push(0u32);
    let mut pair_labels = Vec::new();
    let mut pair_ranges: Vec<(u32, u32)> = Vec::new();
    let mut targets: Vec<u32> = Vec::new();
    for segment in segments {
        let target_base = targets.len() as u32;
        let mut pair_count = *row_start.last().expect("seeded with 0");
        for pairs in segment.pairs_per_class {
            pair_count += pairs;
            row_start.push(pair_count);
        }
        pair_labels.extend(segment.pair_labels);
        pair_ranges.extend(
            segment
                .pair_ranges
                .into_iter()
                .map(|(start, end)| (start + target_base, end + target_base)),
        );
        targets.extend(segment.targets);
    }

    Ok(CompiledSchema {
        classes,
        labels,
        supers,
        subs,
        row_start,
        pair_labels,
        pair_ranges,
        targets,
    })
}

/// One worker's slice of the closed CSR arrow arrays: the rows for a
/// contiguous class range, with target ranges relative to the segment's
/// own `targets` array (rebased when segments are stitched).
struct CsrSegment {
    pairs_per_class: Vec<u32>,
    pair_labels: Vec<LabelId>,
    pair_ranges: Vec<(u32, u32)>,
    targets: Vec<ClassId>,
}

/// The W1/W2 arrow closure for the classes in `range`. W1 (inherit raw
/// arrows from every strict super) then W2 (close each target set
/// upward); one pass of each suffices, as in the symbolic engine. Two
/// fast paths skip the per-pair scratch work on the common shape: a
/// class with no strict supers inherits nothing (its raw rows are
/// final), and a target set containing no class with supers is already
/// upward closed.
///
/// Inheritance accumulates into a **dense per-label table** (`Option`
/// slots indexed by label id, plus a touched list) rather than a map:
/// a class with `s` strict supers of `k` labels each pays `s·k` array
/// indexings instead of `s·k` tree-map operations — this loop is the
/// single hottest piece of completing an inheritance-heavy schema,
/// where every implicit class inherits every origin's arrows. All
/// scratch rows come from the worker's pool.
fn arrow_rows(
    range: std::ops::Range<usize>,
    raw: &[BTreeMap<u32, SpecRow>],
    supers: &SpecMatrix,
    has_supers: &[u64],
    words: usize,
    labels_len: usize,
) -> CsrSegment {
    let mut segment = CsrSegment {
        pairs_per_class: Vec::with_capacity(range.len()),
        pair_labels: Vec::new(),
        pair_ranges: Vec::new(),
        targets: Vec::new(),
    };
    scratch::with_pool(|pool| {
        let mut acc_rows: Vec<Option<Vec<u64>>> = (0..labels_len).map(|_| None).collect();
        let mut touched: Vec<u32> = Vec::new();
        let mut closed_buf = pool.take(words);
        for p in range {
            let before = segment.pair_labels.len() as u32;
            let mut emit = |label: u32, bits: RowRef<'_>, segment: &mut CsrSegment| {
                let start = segment.targets.len() as u32;
                if bits.intersects_dense(has_supers) {
                    closed_buf.iter_mut().for_each(|w| *w = 0);
                    bits.or_into_dense(&mut closed_buf);
                    for t in bits.iter() {
                        supers.row(t).or_into_dense(&mut closed_buf);
                    }
                    segment.targets.extend(iter_bits(&closed_buf));
                } else {
                    segment.targets.extend(bits.iter());
                }
                segment.pair_labels.push(label);
                segment
                    .pair_ranges
                    .push((start, segment.targets.len() as u32));
            };
            if supers.row(p as u32).is_empty() {
                for (&label, bits) in &raw[p] {
                    emit(label, bits.as_ref(), &mut segment);
                }
            } else {
                let mut accumulate =
                    |label: u32, bits: RowRef<'_>, touched: &mut Vec<u32>| match &mut acc_rows
                        [label as usize]
                    {
                        Some(row) => bits.or_into_dense(row),
                        slot @ None => {
                            // Pool rows come back zeroed, so OR = copy.
                            let mut row = pool.take(words);
                            bits.or_into_dense(&mut row);
                            *slot = Some(row);
                            touched.push(label);
                        }
                    };
                for (&label, bits) in &raw[p] {
                    accumulate(label, bits.as_ref(), &mut touched);
                }
                for q in supers.row(p as u32).iter() {
                    for (&label, bits) in &raw[q as usize] {
                        accumulate(label, bits.as_ref(), &mut touched);
                    }
                }
                touched.sort_unstable();
                for &label in &touched {
                    let row = acc_rows[label as usize].take().expect("touched label");
                    emit(label, RowRef::Dense(&row), &mut segment);
                    pool.put(row);
                }
                touched.clear();
            }
            segment
                .pairs_per_class
                .push(segment.pair_labels.len() as u32 - before);
        }
        pool.put(closed_buf);
    });
    segment
}

/// [`compile_dense`] over edge/triple lists — a test-only convenience for
/// exercising the closure engine on hand-written id-space parts.
///
/// `classes` and `labels` must be sorted and deduplicated (ids are their
/// indices).
#[cfg(test)]
pub(crate) fn compile_from_raw(
    classes: Vec<Class>,
    labels: Vec<Label>,
    spec: &[(u32, u32)],
    arrows: &[(u32, u32, u32)],
) -> Result<CompiledSchema, CycleIds> {
    let mut parts = RawDense::new(classes, labels);
    for &(sub, sup) in spec {
        if sub != sup {
            parts.direct.set(sub, sup);
        }
    }
    let words = parts.words();
    for &(src, label, tgt) in arrows {
        parts.raw_arrows[src as usize]
            .entry(label)
            .or_insert_with(|| SpecRow::empty(words))
            .set(tgt);
    }
    compile_dense(parts)
}

/// A specialization cycle found while closing id-space parts: the id path
/// plus the class table to translate it (handed back so construction paths
/// need not keep a copy of the table for the error case).
#[derive(Debug)]
pub(crate) struct CycleIds {
    path: Vec<u32>,
    classes: Vec<Class>,
}

impl From<CycleIds> for SchemaError {
    fn from(cycle: CycleIds) -> SchemaError {
        SchemaError::SpecializationCycle(CycleWitness {
            path: cycle
                .path
                .into_iter()
                .map(|id| cycle.classes[id as usize].clone())
                .collect(),
        })
    }
}

/// The compiled closure engine behind [`WeakSchema::close`]: interns the
/// raw symbolic parts, closes in id space and decompiles the result.
pub(crate) fn close_ids(
    mut classes: BTreeSet<Class>,
    spec_edges: BTreeMap<Class, BTreeSet<Class>>,
    raw_arrows: Vec<(Class, Label, Class)>,
) -> Result<WeakSchema, SchemaError> {
    // Classes are whatever was declared plus every edge endpoint.
    for (sub, sups) in &spec_edges {
        classes.insert(sub.clone());
        classes.extend(sups.iter().cloned());
    }
    for (src, _, tgt) in &raw_arrows {
        classes.insert(src.clone());
        classes.insert(tgt.clone());
    }
    let labels: BTreeSet<Label> = raw_arrows.iter().map(|(_, l, _)| l.clone()).collect();

    let class_vec: Vec<Class> = classes.into_iter().collect();
    let label_vec: Vec<Label> = labels.into_iter().collect();
    let mut parts = RawDense::new(class_vec, label_vec);
    let words = parts.words();
    let cid: FastMap<&Class, u32> = parts
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c, i as u32))
        .collect();
    let lid: FastMap<&Label, u32> = parts
        .labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l, i as u32))
        .collect();

    for (sub, sups) in &spec_edges {
        let p = cid[sub];
        let row = parts.direct.row_mut(p);
        for sup in sups {
            let q = cid[sup];
            if p != q {
                row.set(q);
            }
        }
    }
    for (src, label, tgt) in &raw_arrows {
        parts.raw_arrows[cid[src] as usize]
            .entry(lid[label])
            .or_insert_with(|| SpecRow::empty(words))
            .set(cid[tgt]);
    }
    drop((cid, lid));

    Ok(compile_dense(parts)?.decompile())
}

/// Merges an already-merged sorted run with another sorted iterator,
/// deduplicating.
fn merge_sorted<'a, T: Ord + ?Sized>(
    merged: &[&'a T],
    next: impl Iterator<Item = &'a T>,
) -> Vec<&'a T> {
    let mut out: Vec<&'a T> = Vec::with_capacity(merged.len());
    let mut left = merged.iter().peekable();
    let mut right = next.peekable();
    loop {
        match (left.peek(), right.peek()) {
            (Some(&&l), Some(&r)) => match l.cmp(r) {
                std::cmp::Ordering::Less => {
                    out.push(l);
                    left.next();
                }
                std::cmp::Ordering::Greater => {
                    out.push(r);
                    right.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(l);
                    left.next();
                    right.next();
                }
            },
            (Some(&&l), None) => {
                out.push(l);
                left.next();
            }
            (None, Some(&r)) => {
                out.push(r);
                right.next();
            }
            (None, None) => break,
        }
    }
    out
}

/// Batch-joins `schemas` with one interning pass: the least upper bound is
/// computed entirely in id space and returned in both forms, so callers
/// (notably [`crate::merge::merge_compiled`]) can continue in id space
/// without recompiling.
pub(crate) fn join_compiled<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<(WeakSchema, CompiledSchema), SchemaError> {
    let schemas: Vec<&WeakSchema> = schemas.into_iter().collect();
    let compiled = join_compiled_ids(&schemas, 1)?;
    Ok((compiled.decompile(), compiled))
}

/// One worker's partition of a sharded join: the direct-edge bit matrix
/// and raw arrow rows of its input slice, over the *shared* interner
/// (the global class/label tables every partition indexes with the same
/// ids). Partials merge by pure bitwise OR — the tree-reduction node of
/// the parallel engine.
struct DensePartial {
    direct: SpecMatrix,
    raw_arrows: Vec<BTreeMap<u32, SpecRow>>,
}

impl DensePartial {
    fn new(n: usize, words: usize) -> Self {
        DensePartial {
            direct: SpecMatrix::new(n, words),
            raw_arrows: vec![BTreeMap::new(); n],
        }
    }

    /// Walks one closed input into the partial. The inputs are closed,
    /// and a union of closed relations re-closes to the same result, so
    /// feeding the closed pairs as direct edges is exact (and how
    /// Prop. 4.1 computes `S`). The nested maps are walked structurally
    /// — one id lookup per class row, label run and target, not three
    /// per triple — and the union accumulates straight into bit rows
    /// (recycled through the worker's pool), which deduplicate for free.
    fn intern(
        &mut self,
        schema: &WeakSchema,
        cid: &FastMap<&Class, u32>,
        lid: &FastMap<&Label, u32>,
        words: usize,
        pool: &mut ScratchPool,
    ) {
        for (sub, sups) in &schema.supers {
            let row = self.direct.row_mut(cid[sub]);
            for sup in sups {
                // Sups iterate in class (= id) order, so sparse rows
                // accumulate by appends.
                row.set(cid[sup]);
            }
        }
        for (src, by_label) in &schema.arrows {
            let by_label_ids = &mut self.raw_arrows[cid[src] as usize];
            for (label, tgts) in by_label {
                let bits = by_label_ids
                    .entry(lid[label])
                    .or_insert_with(|| empty_row(words, pool));
                for tgt in tgts {
                    bits.set(cid[tgt]);
                }
            }
        }
    }

    /// ORs `other` into `self` — one tree-reduction node. Commutative
    /// and associative (it is a set union in bit form), so the reduction
    /// shape cannot change the result.
    fn absorb(&mut self, other: DensePartial) {
        self.direct.or_matrix(&other.direct);
        for (dst, src) in self.raw_arrows.iter_mut().zip(other.raw_arrows) {
            for (label, bits) in src {
                match dst.entry(label) {
                    std::collections::btree_map::Entry::Occupied(mut entry) => {
                        entry.get_mut().or_row(bits.as_ref());
                    }
                    std::collections::btree_map::Entry::Vacant(entry) => {
                        entry.insert(bits);
                    }
                }
            }
        }
    }
}

/// [`join_compiled`] without the symbolic materialization, sharded over
/// `threads` workers — the join stage of the parallel engine.
///
/// The global class/label tables are built first (sorted unions of the
/// inputs' already-sorted tables — cheaper than per-insert set
/// building), so every worker interns against the *same* id space. The
/// input list is then partitioned into contiguous chunks, each worker
/// walks its chunk into a [`DensePartial`], and the partials are
/// reduced pairwise in a tree of scoped workers. One closure pass at
/// the root finishes the job: closing once over the OR of the partials
/// equals closing at every tree node (a union of closed relations
/// re-closes to the same result), so the result is identical to the
/// sequential [`join_compiled`] at every thread count — only cheaper.
pub(crate) fn join_compiled_ids(
    schemas: &[&WeakSchema],
    threads: usize,
) -> Result<CompiledSchema, SchemaError> {
    let mut merged: Vec<&Class> = Vec::new();
    for schema in schemas {
        merged = merge_sorted(&merged, schema.classes());
    }
    let mut labels: BTreeSet<&Label> = BTreeSet::new();
    for schema in schemas {
        for by_label in schema.arrows.values() {
            labels.extend(by_label.keys());
        }
    }
    let class_vec: Vec<Class> = merged.into_iter().cloned().collect();
    let label_vec: Vec<Label> = labels.into_iter().cloned().collect();

    let mut parts = RawDense::new(class_vec, label_vec);
    let n = parts.classes.len();
    let words = parts.words();
    let cid: FastMap<&Class, u32> = parts
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c, i as u32))
        .collect();
    let lid: FastMap<&Label, u32> = parts
        .labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l, i as u32))
        .collect();

    let workers = parallel::throttled_threads(threads, schemas.len(), 8);
    let mut partials = parallel::map_chunks(schemas.len(), workers, |range| {
        let mut partial = DensePartial::new(n, words);
        scratch::with_pool(|pool| {
            for schema in &schemas[range] {
                partial.intern(schema, &cid, &lid, words, pool);
            }
        });
        partial
    });
    // Pairwise tree reduction. OR is commutative/associative, so the
    // result is the same whatever the pairing; rounds of scoped workers
    // keep the reduction depth logarithmic in the partition count.
    while partials.len() > 1 {
        let mut pairs: Vec<(DensePartial, DensePartial)> = Vec::new();
        let mut leftover: Option<DensePartial> = None;
        let mut iter = partials.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => pairs.push((left, right)),
                None => leftover = Some(left),
            }
        }
        partials = if pairs.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .into_iter()
                    .map(|(mut left, right)| {
                        scope.spawn(move || {
                            left.absorb(right);
                            left
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("join reduction worker panicked"))
                    .collect()
            })
        } else {
            pairs
                .into_iter()
                .map(|(mut left, right)| {
                    left.absorb(right);
                    left
                })
                .collect()
        };
        partials.extend(leftover);
    }
    if let Some(total) = partials.pop() {
        parts.direct = total.direct;
        parts.raw_arrows = total.raw_arrows;
    }

    drop((cid, lid));
    Ok(compile_dense_mt(parts, threads)?)
}

/// Builds the canonical-class view of a proper schema in id space: for
/// every `(class, label)` arrow pair, the least target — the `t` with
/// every other target equal to `t` or strictly above it. Returns exactly
/// what the symbolic walk in `ProperSchema::try_new` computes (least =
/// unique minimal below-or-equal everything, for finite posets), with
/// the same `NoCanonicalClass` witness when a pair has no least target,
/// but via per-pair bit tests against the closed `supers` rows.
pub(crate) fn canonical_map(
    cs: &CompiledSchema,
) -> Result<BTreeMap<Class, BTreeMap<Label, Class>>, SchemaError> {
    let mut canonical: BTreeMap<Class, BTreeMap<Label, Class>> = BTreeMap::new();
    for p in 0..cs.classes.len() as u32 {
        let mut by_label: BTreeMap<Label, Class> = BTreeMap::new();
        for (label, (start, end)) in cs.pairs_of(p) {
            let targets = &cs.targets[start as usize..end as usize];
            let least = targets
                .iter()
                .copied()
                .find(|&t| targets.iter().all(|&u| u == t || cs.supers.get(t, u)));
            match least {
                Some(t) => {
                    by_label.insert(
                        cs.labels[label as usize].clone(),
                        cs.classes[t as usize].clone(),
                    );
                }
                None => {
                    return Err(SchemaError::NoCanonicalClass {
                        class: cs.classes[p as usize].clone(),
                        label: cs.labels[label as usize].clone(),
                        minimal_targets: cs
                            .min_s(targets)
                            .into_iter()
                            .map(|t| cs.classes[t as usize].clone())
                            .collect(),
                    });
                }
            }
        }
        if !by_label.is_empty() {
            canonical.insert(cs.classes[p as usize].clone(), by_label);
        }
    }
    Ok(canonical)
}

/// Joins `extras` onto an already-compiled join result without walking
/// the base symbolically: the base's class/label tables, closed bit rows
/// and CSR arrows transfer through an old-id → new-id remap (pure row
/// copies when the extras introduce no symbol sorting before an existing
/// one), and only the extras pay the symbolic interning walk.
///
/// This is the *cross-generation interner reuse* behind the registry's
/// incremental re-merge: the cached join of the unchanged members enters
/// the next join as a compiled artifact, so a publish pays interning
/// proportional to the changed member, not the whole member set. The
/// result is identical to [`join_compiled`] over the base's decompiled
/// form plus the extras — both feed the same closed relations into the
/// same closure engine.
pub(crate) fn join_onto_compiled(
    base: &CompiledSchema,
    extras: &[&WeakSchema],
) -> Result<CompiledSchema, SchemaError> {
    // Merged symbol tables: sorted unions of the base tables (already
    // sorted) and the extras' symbols.
    let mut merged_classes: Vec<&Class> = base.classes.iter().collect();
    for schema in extras {
        merged_classes = merge_sorted(&merged_classes, schema.classes());
    }
    let mut merged_labels: Vec<&Label> = base.labels.iter().collect();
    for schema in extras {
        let mut extra: BTreeSet<&Label> = BTreeSet::new();
        for by_label in schema.arrows.values() {
            extra.extend(by_label.keys());
        }
        merged_labels = merge_sorted(&merged_labels, extra.into_iter());
    }

    // Old-id → new-id maps by a linear co-walk (both tables sorted; every
    // base symbol survives into the union).
    fn remap<T: Ord>(old: &[T], merged: &[&T]) -> Vec<u32> {
        let mut map = Vec::with_capacity(old.len());
        let mut j = 0usize;
        for symbol in old {
            while merged[j] != symbol {
                j += 1;
            }
            map.push(j as u32);
            j += 1;
        }
        map
    }
    let cmap = remap(&base.classes, &merged_classes);
    let lmap = remap(&base.labels, &merged_labels);
    // Identity iff no extra symbol sorts before an existing one (in
    // particular whenever the extras' symbols all already exist — the
    // steady-state registry publish).
    let ids_stable = cmap.iter().enumerate().all(|(i, &m)| i as u32 == m);

    let class_vec: Vec<Class> = merged_classes.into_iter().cloned().collect();
    let label_vec: Vec<Label> = merged_labels.into_iter().cloned().collect();
    let mut parts = RawDense::new(class_vec, label_vec);
    let words = parts.words();

    // Base specializations: the closed rows feed in as direct edges (a
    // union of closed relations re-closes to the same result). The
    // seeded rows are empty, so OR-ing a base row in is a copy; under a
    // remap the ids re-enter ascending (the remap is monotone), keeping
    // sparse accumulation append-only.
    for p in 0..base.classes.len() as u32 {
        if ids_stable {
            parts.direct.row_mut(p).or_row(base.supers.row(p));
        } else {
            let row = parts.direct.row_mut(cmap[p as usize]);
            for q in base.supers.row(p).iter() {
                row.set(cmap[q as usize]);
            }
        }
    }
    // Base arrows: CSR runs become per-label rows under the remap (the
    // CSR targets are ascending, so these build append-only too).
    for p in 0..base.classes.len() as u32 {
        let np = if ids_stable { p } else { cmap[p as usize] };
        let row = &mut parts.raw_arrows[np as usize];
        for (label, (start, end)) in base.pairs_of(p) {
            let mut bits = SpecRow::empty(words);
            for &t in &base.targets[start as usize..end as usize] {
                bits.set(if ids_stable { t } else { cmap[t as usize] });
            }
            row.insert(lmap[label as usize], bits);
        }
    }

    // Extras: the same symbolic walk as `join_compiled`, unioning into
    // the seeded rows.
    let cid: FastMap<&Class, u32> = parts
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c, i as u32))
        .collect();
    let lid: FastMap<&Label, u32> = parts
        .labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l, i as u32))
        .collect();
    for schema in extras {
        for (sub, sups) in &schema.supers {
            let row = parts.direct.row_mut(cid[sub]);
            for sup in sups {
                row.set(cid[sup]);
            }
        }
        for (src, by_label) in &schema.arrows {
            let by_label_ids = &mut parts.raw_arrows[cid[src] as usize];
            for (label, tgts) in by_label {
                let bits = by_label_ids
                    .entry(lid[label])
                    .or_insert_with(|| SpecRow::empty(words));
                for tgt in tgts {
                    bits.set(cid[tgt]);
                }
            }
        }
    }

    drop((cid, lid));
    Ok(compile_dense(parts)?)
}

/// Builds the completed schema `(C̄, Ē, S̄)` in id space — the compiled
/// twin of the symbolic `assemble` in [`crate::complete`] (which see for
/// the rule-by-rule commentary). `entries` pairs each `Imp` state (bits
/// over `cs` ids) with the class standing for its meet; the paper's S̄/Ē
/// rules become bit operations over the old rows, the implicit classes
/// get fresh ids appended after the old table, and one `compile_dense`
/// pass closes the extended graph. Returns the completed schema in both
/// forms (the compiled twin feeds the canonical-map construction of
/// `ProperSchema`).
pub(crate) fn assemble_ids(
    cs: &CompiledSchema,
    entries: &[(Vec<u64>, Class)],
    threads: usize,
) -> Result<(WeakSchema, CompiledSchema), SchemaError> {
    let n = cs.classes.len();
    let old_words = cs.words();

    // Extended class table: implicit classes not already present (i.e. not
    // rediscovered from an earlier merge) get fresh ids after the old ones.
    let mut ext_classes: Vec<Class> = cs.classes.clone();
    let mut new_ids: FastMap<&Class, u32> = FastMap::default();
    let ids: Vec<u32> = entries
        .iter()
        .map(|(_, class)| match cs.class_id(class) {
            Some(id) => id,
            None => *new_ids.entry(class).or_insert_with(|| {
                ext_classes.push(class.clone());
                (ext_classes.len() - 1) as u32
            }),
        })
        .collect();
    let m = ext_classes.len();
    let ext_words = m.div_ceil(64);
    // Whether any entry resolved to a pre-existing class id (< n): only
    // then can setting an implicit-target bit disturb a later subset
    // test, forcing the Ē pass below onto snapshots.
    let any_rediscovered = ids.iter().any(|&id| (id as usize) < n);

    // Entries bucketed by their first (lowest-id) state member: `Y ⊆ R`
    // requires `min(Y) ∈ R`, so scanning R's set bits against these
    // buckets visits each candidate entry exactly once and skips the
    // (overwhelmingly common) entries sharing no member with R at all —
    // the difference between O(pairs × entries) and O(pairs × hits) in
    // the Ē passes.
    let mut first_buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut min_state_size = u32::MAX;
    for (j, (state, _)) in entries.iter().enumerate() {
        if let Some(first) = iter_bits(state).next() {
            first_buckets[first as usize].push(j as u32);
        }
        min_state_size = min_state_size.min(popcount(state));
    }
    let subset = |state: &[u64], reached: &[u64]| -> bool {
        state.iter().zip(reached).all(|(s, r)| s & !r == 0)
    };

    let mut parts = RawDense::new(ext_classes, cs.labels.clone());
    scratch::with_pool(|pool| {
        // The old closed relations feed in as direct edges: re-closing a
        // closed relation is the identity. The seeded rows are empty, so
        // OR-ing the old row in is a copy; CSR targets are ascending, so
        // sparse accumulation stays append-only.
        for p in 0..n as u32 {
            parts.direct.row_mut(p).or_row(cs.supers.row(p));
            for (label, (start, end)) in cs.pairs_of(p) {
                let mut bits = empty_row(ext_words, pool);
                for &t in &cs.targets[start as usize..end as usize] {
                    bits.set(t);
                }
                parts.raw_arrows[p as usize].insert(label, bits);
            }
        }

        // Per entry: `up` = every old class some member specializes (the
        // reflexive upward closure of the state), and the flattened origin
        // names as ids (`None` when a name is not a class of the schema — no
        // rule can then place anything below the implicit class).
        let mut ups = StateArena::new(ext_words);
        let mut flats: Vec<Option<Vec<u32>>> = Vec::with_capacity(entries.len());
        let mut up_buf = pool.take(ext_words);
        for (state, _) in entries {
            up_buf.iter_mut().for_each(|w| *w = 0);
            for q in iter_bits(state) {
                set_bit(&mut up_buf, q);
                cs.supers.row(q).or_into_dense(&mut up_buf[..old_words]);
            }
            ups.push(&up_buf);

            let mut flat: Vec<u32> = Vec::new();
            let mut all_present = true;
            for q in iter_bits(state) {
                let class = cs.class(q);
                if class.origin().is_none() {
                    flat.push(q);
                } else {
                    for name in class.flattened_names() {
                        match cs.class_id(&Class::Named(name)) {
                            Some(id) => flat.push(id),
                            None => all_present = false,
                        }
                    }
                }
            }
            flat.sort_unstable();
            flat.dedup();
            flats.push(all_present.then_some(flat));
        }
        pool.put(up_buf);

        // S̄: X ⇒ p for p ∈ up(X); p ⇒ X when p specializes every flattened
        // origin of X; X ⇒ Y when every flattened origin of Y is in up(X).
        let mut cand = pool.take(ext_words);
        let mut down = pool.take(ext_words);
        for i in 0..entries.len() {
            let xe = ids[i];
            parts
                .direct
                .row_mut(xe)
                .or_row(RowRef::Dense(ups.get(i as u32)));
            if let Some(flat) = &flats[i] {
                down.iter_mut().for_each(|w| *w = 0);
                for (word, slot) in down.iter_mut().enumerate().take(old_words) {
                    let covered = (word + 1) * 64;
                    *slot = if covered <= n {
                        u64::MAX
                    } else {
                        u64::MAX >> (covered - n)
                    };
                }
                for &f in flat {
                    cand.iter_mut().for_each(|w| *w = 0);
                    set_bit(&mut cand, f);
                    cs.subs.row(f).or_into_dense(&mut cand[..old_words]);
                    and_into(&mut down, &cand);
                }
                for p in iter_bits(&down) {
                    parts.direct.set(p, xe);
                }
            }
        }
        pool.put(cand);
        pool.put(down);
        for i in 0..entries.len() {
            let up = ups.get(i as u32);
            for (j, flat) in flats.iter().enumerate() {
                if ids[i] == ids[j] {
                    continue;
                }
                let Some(flat) = flat else { continue };
                if flat.iter().all(|&f| get_bit(up, f)) {
                    parts.direct.set(ids[i], ids[j]);
                }
            }
        }

        // Ē into implicit targets: x --a--> Y whenever Y ⊆ R(x, a).
        // Rows with fewer targets than the smallest entry state cannot
        // contain one; candidate entries come from the first-member
        // buckets of the row's old-id bits. Rediscovered entry ids are
        // the one case where setting a target bit can disturb a later
        // test, so only that (rare, origin-carrying) shape pays for a
        // snapshot.
        let mut snapshot = pool.take(ext_words);
        let mut hits: Vec<u32> = Vec::new();
        for x in 0..n {
            for bits in parts.raw_arrows[x].values_mut() {
                if bits.popcount() < min_state_size {
                    continue;
                }
                hits.clear();
                {
                    let test: RowRef<'_> = if any_rediscovered {
                        snapshot.iter_mut().for_each(|w| *w = 0);
                        bits.as_ref().or_into_dense(&mut snapshot);
                        RowRef::Dense(&snapshot)
                    } else {
                        bits.as_ref()
                    };
                    for b in test.iter() {
                        if (b as usize) >= n {
                            break;
                        }
                        for &j in &first_buckets[b as usize] {
                            if test.contains_all_dense(&entries[j as usize].0) {
                                hits.push(j);
                            }
                        }
                    }
                }
                for &j in &hits {
                    bits.set(ids[j as usize]);
                }
            }
        }
        pool.put(snapshot);

        // Ē out of implicit classes: R̄(X, a) = R(X, a), plus implicit
        // targets contained in it.
        let label_words = cs.labels.len().div_ceil(64);
        let mut label_bits = pool.take(label_words);
        for (i, (state, _)) in entries.iter().enumerate() {
            let xe = ids[i];
            label_bits.iter_mut().for_each(|w| *w = 0);
            for q in iter_bits(state) {
                for &label in cs.labels_of(q) {
                    set_bit(&mut label_bits, label);
                }
            }
            for label in iter_bits(&label_bits) {
                let mut reached = pool.take(ext_words);
                for q in iter_bits(state) {
                    for &t in cs.arrow_targets(q, label) {
                        set_bit(&mut reached, t);
                    }
                }
                if is_zero(&reached) {
                    pool.put(reached);
                    continue;
                }
                let mut full = pool.take(ext_words);
                full.copy_from_slice(&reached);
                if popcount(&reached) >= min_state_size {
                    for b in iter_bits(&reached) {
                        if (b as usize) >= n {
                            break;
                        }
                        for &j in &first_buckets[b as usize] {
                            if subset(&entries[j as usize].0, &reached) {
                                set_bit(&mut full, ids[j as usize]);
                            }
                        }
                    }
                }
                pool.put(reached);
                match parts.raw_arrows[xe as usize].entry(label) {
                    std::collections::btree_map::Entry::Occupied(mut entry) => {
                        entry.get_mut().or_row(RowRef::Dense(&full));
                        pool.put(full);
                    }
                    std::collections::btree_map::Entry::Vacant(entry) => {
                        if row::accumulate_sparse(ext_words) {
                            entry.insert(SpecRow::from_dense(&full, ext_words));
                            pool.put(full);
                        } else {
                            entry.insert(SpecRow::Dense(full));
                        }
                    }
                }
            }
        }
        pool.put(label_bits);
    });

    let compiled = compile_dense_mt(parts, threads)?;
    Ok((compiled.decompile(), compiled))
}

// ---------------------------------------------------------------------------
// The Imp fixpoint in id space
// ---------------------------------------------------------------------------

/// A discovery witness in id space: follow `labels` from `start`.
pub(crate) struct IdWitness {
    pub(crate) start: ClassId,
    pub(crate) labels: Vec<LabelId>,
}

/// A dedup bucket: almost always a single state per hash, so the
/// spill vector (and its allocation) is reserved for actual collisions.
enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

impl Bucket {
    fn contains(&self, arena: &StateArena, row: &[u64]) -> bool {
        match self {
            Bucket::One(index) => arena.get(*index) == row,
            Bucket::Many(indices) => indices.iter().any(|&index| arena.get(index) == row),
        }
    }

    fn push(&mut self, index: u32) {
        match self {
            Bucket::One(first) => *self = Bucket::Many(vec![*first, index]),
            Bucket::Many(indices) => indices.push(index),
        }
    }
}

/// The fixpoint's dedup table: row hash → arena indices with that hash.
/// Full rows are compared on collision, so the table is exact; keying by
/// hash instead of by owned `Vec<u64>` saves one allocation per
/// *candidate* (most candidates are rediscoveries of known states).
struct StateTable {
    arena: StateArena,
    seen: FastMap<u64, Bucket>,
}

impl StateTable {
    fn new(words: usize) -> Self {
        StateTable {
            arena: StateArena::new(words),
            seen: FastMap::default(),
        }
    }

    /// Interns `row`, returning its index if it was new.
    fn insert(&mut self, row: &[u64]) -> Option<u32> {
        match self.seen.entry(hash_row(row)) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                if entry.get().contains(&self.arena, row) {
                    return None;
                }
                let index = self.arena.push(row);
                entry.get_mut().push(index);
                Some(index)
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                let index = self.arena.push(row);
                entry.insert(Bucket::One(index));
                Some(index)
            }
        }
    }
}

/// A candidate successor produced by one frontier expansion: the frontier
/// unit it came from, the label stepped through, and the MinS-canonical
/// state reached.
type Candidate = (u32, LabelId, Vec<u64>);

/// How one discovered state was first reached: through `label` from
/// either a class (`seed`, `parent` is a [`ClassId`]) or an earlier
/// state (`parent` is a state index). Witness paths materialize by
/// walking these records backwards — storing the chain instead of a
/// cloned label path per state turns witness bookkeeping from
/// O(states × depth) allocations into O(states) plain integers.
struct Step {
    parent: u32,
    label: LabelId,
    seed: bool,
}

/// The `I∞` fixpoint's output: every reachable MinS-canonical state (as
/// a class-id bitset in one flat arena) with its first-discovery step
/// chain, in discovery order.
pub(crate) struct DiscoveredStates {
    arena: StateArena,
    steps: Vec<Step>,
}

impl DiscoveredStates {
    /// Number of discovered states.
    pub(crate) fn len(&self) -> usize {
        self.steps.len()
    }

    /// The state bitset at `index` (ascending class-id bits).
    pub(crate) fn bits(&self, index: u32) -> &[u64] {
        self.arena.get(index)
    }

    /// Materializes the first-discovery witness of state `index`.
    pub(crate) fn witness(&self, index: u32) -> IdWitness {
        let mut labels = Vec::new();
        let mut current = index;
        loop {
            let step = &self.steps[current as usize];
            labels.push(step.label);
            if step.seed {
                labels.reverse();
                return IdWitness {
                    start: step.parent,
                    labels,
                };
            }
            current = step.parent;
        }
    }
}

/// Runs the `I∞` fixpoint of §4.2 on the compiled schema: every reachable
/// MinS-canonical state (as a class-id bitset) with its first-discovery
/// witness, in discovery order. Mirrors the symbolic
/// `reference`-module discovery exactly — classes and labels are iterated
/// in sorted (= id) order, so witnesses agree.
///
/// The fixpoint is a frontier/worklist BFS. Processing the queue in FIFO
/// order is the same as processing it index-by-index, so each wave
/// (`processed..len`) can be *expanded* by up to `threads` scoped workers
/// — each computes the successor candidates of a contiguous frontier
/// chunk — while all *insertion* happens on the calling thread, walking
/// the chunks in frontier order through the same dedup the sequential
/// path uses. Discovery order, witnesses and the returned states are
/// therefore identical at every thread count. Scratch rows come from the
/// per-thread pools; discovered states live in a flat arena.
pub(crate) fn discover_states_ids(cs: &CompiledSchema, threads: usize) -> DiscoveredStates {
    let n = cs.classes.len();
    let words = cs.words();
    if n == 0 || cs.pair_labels.is_empty() {
        return DiscoveredStates {
            arena: StateArena::new(words),
            steps: Vec::new(),
        };
    }
    let label_words = cs.labels.len().div_ceil(64);
    let mut table = StateTable::new(words);
    let mut steps: Vec<Step> = Vec::new();

    // I₁: R(p, a) for every class and label, canonicalized by MinS —
    // expanded per class chunk, inserted in (class, label) order.
    // Singleton target sets (the common case) are their own MinS.
    let seed_workers = parallel::throttled_threads(threads, n, 128);
    let seed_chunks = parallel::map_chunks(n, seed_workers, |range| {
        let mut out: Vec<Candidate> = Vec::new();
        scratch::with_pool(|pool| {
            for p in range {
                for (label, (start, end)) in cs.pairs_of(p as u32) {
                    let mut reached = pool.take(words);
                    for &t in &cs.targets[start as usize..end as usize] {
                        set_bit(&mut reached, t);
                    }
                    let state = if end - start == 1 {
                        reached
                    } else {
                        let mut min = pool.take(words);
                        cs.min_s_bits_into(&reached, &mut min);
                        pool.put(reached);
                        min
                    };
                    out.push((p as u32, label, state));
                }
            }
        });
        out
    });
    scratch::with_pool(|pool| {
        for chunk in seed_chunks {
            for (p, label, state) in chunk {
                if table.insert(&state).is_some() {
                    steps.push(Step {
                        parent: p,
                        label,
                        seed: true,
                    });
                }
                pool.put(state);
            }
        }
    });

    // Iₙ₊₁ = R(X, a), stepping from canonical states (exact by W1).
    // Singleton states are skipped: stepping from `{q}` through `a` gives
    // `MinS(R(q, a))`, which the I₁ seeding above already inserted — the
    // symbolic engine re-derives (and re-rejects) these, harmlessly.
    let mut processed = 0usize;
    while processed < table.arena.len() {
        let frontier_end = table.arena.len();
        let frontier_len = frontier_end - processed;
        let arena = &table.arena;
        let wave_workers = parallel::throttled_threads(threads, frontier_len, 32);
        let wave_chunks = parallel::map_chunks(frontier_len, wave_workers, |range| {
            let mut out: Vec<Candidate> = Vec::new();
            scratch::with_pool(|pool| {
                let mut state_labels = pool.take(label_words);
                for offset in range {
                    let index = (processed + offset) as u32;
                    let state = arena.get(index);
                    if popcount(state) < 2 {
                        continue;
                    }
                    state_labels.iter_mut().for_each(|w| *w = 0);
                    for member in iter_bits(state) {
                        for &label in cs.labels_of(member) {
                            set_bit(&mut state_labels, label);
                        }
                    }
                    for label in iter_bits(&state_labels) {
                        let mut reached = pool.take(words);
                        for member in iter_bits(state) {
                            for &t in cs.arrow_targets(member, label) {
                                set_bit(&mut reached, t);
                            }
                        }
                        if is_zero(&reached) {
                            pool.put(reached);
                            continue;
                        }
                        let mut next = pool.take(words);
                        cs.min_s_bits_into(&reached, &mut next);
                        pool.put(reached);
                        out.push((index, label, next));
                    }
                }
                pool.put(state_labels);
            });
            out
        });
        scratch::with_pool(|pool| {
            for chunk in wave_chunks {
                for (parent, label, state) in chunk {
                    if table.insert(&state).is_some() {
                        steps.push(Step {
                            parent,
                            label,
                            seed: false,
                        });
                    }
                    pool.put(state);
                }
            }
        });
        processed = frontier_end;
    }

    DiscoveredStates {
        arena: table.arena,
        steps,
    }
}

/// Translates an id-space state bitset back to a symbolic class set.
pub(crate) fn state_classes(cs: &CompiledSchema, bits: &[u64]) -> BTreeSet<Class> {
    iter_bits(bits).map(|id| cs.class(id).clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    fn sample() -> WeakSchema {
        WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .specialize("Police-dog", "Dog")
            .arrow("Dog", "age", "int")
            .arrow("Dog", "kind", "Breed")
            .arrow("Police-dog", "id-num", "int")
            .arrow("Lives", "occ", "Dog")
            .build()
            .unwrap()
    }

    #[test]
    fn compile_decompile_round_trips() {
        let g = sample();
        let compiled = CompiledSchema::compile(&g);
        assert_eq!(compiled.decompile(), g);
        assert_eq!(compiled.num_classes(), g.num_classes());
        assert_eq!(compiled.num_arrows(), g.num_arrows());
        assert_eq!(compiled.num_specializations(), g.num_specializations());
    }

    #[test]
    fn empty_schema_compiles() {
        let compiled = CompiledSchema::compile(&WeakSchema::empty());
        assert_eq!(compiled.num_classes(), 0);
        assert_eq!(compiled.decompile(), WeakSchema::empty());
    }

    #[test]
    fn id_queries_agree_with_symbolic() {
        let g = sample();
        let cs = CompiledSchema::compile(&g);
        let dog = cs.class_id(&c("Dog")).unwrap();
        let police = cs.class_id(&c("Police-dog")).unwrap();
        let age = cs.label_id(&l("age")).unwrap();
        assert!(cs.specializes(police, dog));
        assert!(cs.strictly_specializes(police, dog));
        assert!(!cs.specializes(dog, police));
        assert!(cs.specializes(dog, dog), "reflexive");
        assert!(!cs.strictly_specializes(dog, dog), "strict");
        // Police-dog inherits Dog's age arrow (W1 closure is compiled in).
        let targets = cs.arrow_targets(police, age);
        assert_eq!(targets.len(), 1);
        assert_eq!(cs.class(targets[0]), &c("int"));
        assert!(cs.class_id(&c("Cat")).is_none());
        assert!(cs.label_id(&l("nope")).is_none());
    }

    #[test]
    fn min_s_and_max_s_in_id_space() {
        let g = WeakSchema::builder()
            .specialize("C", "A")
            .specialize("C", "B")
            .build()
            .unwrap();
        let cs = CompiledSchema::compile(&g);
        let all: Vec<u32> = (0..cs.num_classes() as u32).collect();
        let min: Vec<&Class> = cs.min_s(&all).iter().map(|&i| cs.class(i)).collect();
        assert_eq!(min, vec![&c("C")]);
        let max: Vec<&Class> = cs.max_s(&all).iter().map(|&i| cs.class(i)).collect();
        assert_eq!(max, vec![&c("A"), &c("B")]);
        // Agreement with the symbolic antichains on the same set.
        let sym_min = g.min_s(cs.min_s(&all).iter().map(|&i| cs.class(i)));
        assert_eq!(sym_min.len(), 1);
    }

    #[test]
    fn compile_from_raw_closes_w1_w2() {
        // p' ⇒ p, p --a--> q, q ⇒ q' must close to p' --a--> q'.
        let classes = vec![c("p"), c("p'"), c("q"), c("q'")];
        let labels = vec![l("a")];
        let spec = [(1, 0), (2, 3)];
        let arrows = [(0, 0, 2)];
        let cs = compile_from_raw(classes, labels, &spec, &arrows).unwrap();
        let symbolic = WeakSchema::builder()
            .specialize("p'", "p")
            .specialize("q", "q'")
            .arrow("p", "a", "q")
            .build()
            .unwrap();
        assert_eq!(cs.decompile(), symbolic);
    }

    #[test]
    fn compile_from_raw_reports_cycles() {
        let classes = vec![c("a"), c("b"), c("c")];
        let spec = [(0, 1), (1, 2), (2, 0)];
        let err = compile_from_raw(classes, vec![], &spec, &[]).unwrap_err();
        assert_eq!(err.path.first(), err.path.last());
        assert!(err.path.len() >= 3);
        // The witness follows direct edges.
        for pair in err.path.windows(2) {
            assert!(spec.contains(&(pair[0], pair[1])), "non-edge {pair:?}");
        }
    }

    #[test]
    fn bit_iteration_crosses_word_boundaries() {
        let mut row = vec![0u64; 2];
        for i in [0u32, 63, 64, 100] {
            set_bit(&mut row, i);
        }
        assert_eq!(iter_bits(&row).collect::<Vec<_>>(), vec![0, 63, 64, 100]);
        assert!(get_bit(&row, 63) && !get_bit(&row, 62));
        clear_bit(&mut row, 63);
        assert!(!get_bit(&row, 63));
    }

    #[test]
    fn discovery_matches_symbolic_fixpoint() {
        let g = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .arrow("B1", "b", "T1")
            .arrow("B2", "b", "T2")
            .build()
            .unwrap();
        let cs = CompiledSchema::compile(&g);
        let states = discover_states_ids(&cs, 1);
        let sets: BTreeSet<BTreeSet<Class>> = (0..states.len() as u32)
            .map(|i| state_classes(&cs, states.bits(i)))
            .collect();
        // {B1,B2} and {T1,T2} plus the singleton seeds.
        assert!(sets.contains(&[c("B1"), c("B2")].into_iter().collect()));
        assert!(sets.contains(&[c("T1"), c("T2")].into_iter().collect()));
    }

    #[test]
    fn discovery_is_thread_count_invariant() {
        // A chain of multi-target steps plus a specialization order, so
        // the fixpoint has several waves and non-trivial MinS work.
        let mut builder = WeakSchema::builder();
        for i in 0..30usize {
            builder = builder
                .arrow(format!("C{i}"), "a", format!("B{i}"))
                .arrow(format!("C{i}"), "a", format!("B{}", (i + 7) % 30))
                .arrow(format!("B{i}"), "b", format!("T{}", i % 5))
                .arrow(format!("B{i}"), "b", format!("T{}", (i + 1) % 5));
        }
        for i in 1..10usize {
            builder = builder.specialize(format!("T{}", i % 5), format!("B{i}"));
        }
        let g = builder.build().unwrap();
        let cs = CompiledSchema::compile(&g);
        let sequential = discover_states_ids(&cs, 1);
        for threads in [2, 3, 4, 8] {
            let parallel = discover_states_ids(&cs, threads);
            assert_eq!(parallel.len(), sequential.len());
            for i in 0..sequential.len() as u32 {
                assert_eq!(
                    sequential.bits(i),
                    parallel.bits(i),
                    "states agree in discovery order"
                );
                let (seq, par) = (sequential.witness(i), parallel.witness(i));
                assert_eq!(seq.start, par.start);
                assert_eq!(seq.labels, par.labels, "witnesses agree");
            }
        }
    }

    #[test]
    fn sharded_join_is_thread_count_invariant() {
        // Enough inputs that the per-worker minimum (8 schemas) yields
        // several partitions — the chunked interning, `absorb` OR-merge
        // and multi-round tree reduction all genuinely execute.
        let mut schemas = Vec::new();
        for i in 0..40usize {
            schemas.push(
                WeakSchema::builder()
                    .arrow(
                        format!("C{}", i % 7),
                        format!("f{i}"),
                        format!("T{}", i % 5),
                    )
                    .arrow(format!("C{}", i % 7), "shared", format!("T{}", (i + 1) % 5))
                    .specialize(format!("C{}", i % 7), "Top")
                    .build()
                    .unwrap(),
            );
        }
        let refs: Vec<&WeakSchema> = schemas.iter().collect();
        assert!(
            parallel::throttled_threads(8, refs.len(), 8) >= 4,
            "the test must actually shard"
        );
        let sequential = join_compiled_ids(&refs, 1).unwrap();
        for threads in [2, 3, 4, 8] {
            let sharded = join_compiled_ids(&refs, threads).unwrap();
            assert_eq!(sharded, sequential, "bit-identical at {threads} threads");
        }
        // And equal to the historical batch join.
        let (weak, compiled) = join_compiled(refs.iter().copied()).unwrap();
        assert_eq!(compiled, sequential);
        assert_eq!(weak, sequential.decompile());
    }

    #[test]
    fn large_schema_round_trips_across_word_boundary() {
        // > 64 classes so the bitset rows span multiple words.
        let mut builder = WeakSchema::builder();
        for i in 0..70 {
            builder = builder.class(format!("C{i:03}"));
        }
        for i in 1..70usize {
            builder = builder.specialize(format!("C{:03}", i), format!("C{:03}", i / 2));
        }
        for i in 0..35usize {
            builder = builder.arrow(format!("C{i:03}"), "f", format!("C{:03}", 69 - i));
        }
        let g = builder.build().unwrap();
        let cs = CompiledSchema::compile(&g);
        assert_eq!(cs.decompile(), g);
    }
}
