//! Participation constraints (§6, Fig. 11).
//!
//! Every arrow of an annotated schema carries one of three constraints:
//!
//! * `1` — every instance of the source **must** have the attribute,
//! * `0/1` — an instance **may** have it,
//! * `0` — an instance **may not** have it (the implied constraint of an
//!   arrow that is not drawn).
//!
//! In the *information* ordering, `0/1` is the bottom — it says the least —
//! while `0` and `1` are incomparable maximal elements:
//!
//! ```text
//!       0       1
//!        \     /
//!         0 / 1        (Fig. 11, information order)
//! ```
//!
//! The lower merge takes per-arrow meets (weakest common statement); the
//! upper merge takes joins, which fail on `0` vs `1` — one schema requires
//! what the other forbids.

use std::fmt;

/// A participation constraint on an arrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Participation {
    /// `0`: instances may not have the attribute (undrawn arrows).
    Zero,
    /// `0/1`: instances may or may not have the attribute.
    ZeroOrOne,
    /// `1`: instances must have the attribute.
    One,
}

impl Participation {
    /// All three constraints, for exhaustive tests.
    pub const ALL: [Participation; 3] = [
        Participation::Zero,
        Participation::ZeroOrOne,
        Participation::One,
    ];

    /// The information order: `0/1 ≤ 0`, `0/1 ≤ 1`, reflexivity.
    pub fn le(self, other: Participation) -> bool {
        self == other || self == Participation::ZeroOrOne
    }

    /// The meet (greatest lower bound) in the information order — the
    /// combination rule of the lower merge (§6): agreeing constraints stay,
    /// disagreeing ones weaken to `0/1`.
    pub fn meet(self, other: Participation) -> Participation {
        if self == other {
            self
        } else {
            Participation::ZeroOrOne
        }
    }

    /// The join (least upper bound) in the information order, used by upper
    /// merges of annotated schemas. `None` for `0` vs `1`: the schemas make
    /// contradictory demands and no upper bound exists.
    pub fn join(self, other: Participation) -> Option<Participation> {
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Participation::ZeroOrOne, x) | (x, Participation::ZeroOrOne) => Some(x),
            _ => None,
        }
    }

    /// Whether an arrow with this constraint is drawn at all. The paper's
    /// convention: `0`-arrows are omitted from diagrams and relations.
    pub fn is_present(self) -> bool {
        self != Participation::Zero
    }

    /// Whether instances are required to carry the attribute.
    pub fn is_required(self) -> bool {
        self == Participation::One
    }
}

impl fmt::Display for Participation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Participation::Zero => write!(f, "0"),
            Participation::ZeroOrOne => write!(f, "0/1"),
            Participation::One => write!(f, "1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Participation::*;

    #[test]
    fn meet_table() {
        assert_eq!(Zero.meet(Zero), Zero);
        assert_eq!(One.meet(One), One);
        assert_eq!(ZeroOrOne.meet(ZeroOrOne), ZeroOrOne);
        // The §6 example: an arrow present (1) in one schema and absent (0)
        // in another becomes optional.
        assert_eq!(One.meet(Zero), ZeroOrOne);
        assert_eq!(Zero.meet(ZeroOrOne), ZeroOrOne);
        assert_eq!(One.meet(ZeroOrOne), ZeroOrOne);
    }

    #[test]
    fn join_table() {
        assert_eq!(Zero.join(Zero), Some(Zero));
        assert_eq!(One.join(One), Some(One));
        assert_eq!(ZeroOrOne.join(One), Some(One));
        assert_eq!(ZeroOrOne.join(Zero), Some(Zero));
        assert_eq!(One.join(Zero), None, "required vs forbidden");
        assert_eq!(Zero.join(One), None);
    }

    #[test]
    fn semilattice_laws() {
        for a in Participation::ALL {
            assert_eq!(a.meet(a), a, "idempotent");
            for b in Participation::ALL {
                assert_eq!(a.meet(b), b.meet(a), "commutative");
                for c in Participation::ALL {
                    assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)), "associative");
                }
            }
        }
    }

    #[test]
    fn meet_is_glb_of_le() {
        for a in Participation::ALL {
            for b in Participation::ALL {
                let m = a.meet(b);
                assert!(m.le(a) && m.le(b), "lower bound");
                for c in Participation::ALL {
                    if c.le(a) && c.le(b) {
                        assert!(c.le(m), "greatest lower bound");
                    }
                }
            }
        }
    }

    #[test]
    fn join_is_lub_of_le() {
        for a in Participation::ALL {
            for b in Participation::ALL {
                match a.join(b) {
                    Some(j) => {
                        assert!(a.le(j) && b.le(j), "upper bound");
                        for c in Participation::ALL {
                            if a.le(c) && b.le(c) {
                                assert!(j.le(c), "least upper bound");
                            }
                        }
                    }
                    None => {
                        // No upper bound exists at all.
                        for c in Participation::ALL {
                            assert!(!(a.le(c) && b.le(c)));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn le_is_partial_order() {
        for a in Participation::ALL {
            assert!(a.le(a));
            for b in Participation::ALL {
                if a.le(b) && b.le(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
                for c in Participation::ALL {
                    if a.le(b) && b.le(c) {
                        assert!(a.le(c), "transitive");
                    }
                }
            }
        }
        assert!(ZeroOrOne.le(Zero));
        assert!(ZeroOrOne.le(One));
        assert!(!Zero.le(One));
        assert!(!One.le(Zero));
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(Zero.to_string(), "0");
        assert_eq!(ZeroOrOne.to_string(), "0/1");
        assert_eq!(One.to_string(), "1");
    }

    #[test]
    fn presence_and_requirement() {
        assert!(!Zero.is_present());
        assert!(ZeroOrOne.is_present());
        assert!(One.is_present());
        assert!(One.is_required());
        assert!(!ZeroOrOne.is_required());
    }
}
