//! Structured merge diagnostics: severity, stable code, message and
//! origin information.
//!
//! The [`crate::merger::Merger`] façade reports everything it noticed
//! while planning and executing a merge as [`Diagnostic`]s instead of
//! scattering information across tuples and ad-hoc strings. Each
//! diagnostic carries a **stable machine-readable code** (surfaced by
//! the `smerge` CLI in both text and `--format json` output) so scripts
//! and CI can match on codes rather than message prose, a severity, and
//! span-like origin info pointing back at the merge inputs — the input
//! index plus the classes and labels involved.
//!
//! Hard failures stay `Result`-shaped ([`crate::MergeError`] /
//! [`crate::SchemaError`], which expose the same stable codes through
//! their `code()` methods); `Diagnostic`s cover everything worth
//! reporting on the *successful* path, plus conversions from the error
//! types for uniform rendering.

use std::fmt;

use crate::class::Class;
use crate::error::{MergeError, SchemaError};
use crate::name::Label;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Severity {
    /// Advisory: a composition observation worth surfacing but below
    /// informational noise — the rover-style tier the supergraph layer
    /// uses for its `H-COMPOSE-*` codes (cross-registry specialization
    /// introduced, implicit class spanning registries, namespace
    /// collision resolved). Ordered below [`Severity::Info`].
    Hint,
    /// Informational: something the merge did that callers may want to
    /// surface (implicit classes introduced, a cached base reused).
    Info,
    /// Suspicious but not fatal: the merge proceeded, the result may not
    /// be what the caller intended.
    Warning,
    /// Fatal: the corresponding operation failed. Produced only by the
    /// [`From`] conversions from the error types.
    Error,
}

impl Severity {
    /// The lower-case wire name, stable across releases.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Hint => "hint",
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Span-like origin information: which merge input a diagnostic points
/// at, and which classes/labels within it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DiagnosticOrigin {
    /// Zero-based index of the offending input in the order it was added
    /// to the [`crate::merger::Merger`], when the diagnostic concerns one
    /// input rather than the merge as a whole.
    pub input: Option<usize>,
    /// The input's name, when the caller supplied one
    /// (e.g. `schema <name> { … }` documents in the CLI).
    pub input_name: Option<String>,
    /// Classes involved, in deterministic order.
    pub classes: Vec<Class>,
    /// Labels involved, in deterministic order.
    pub labels: Vec<Label>,
}

impl DiagnosticOrigin {
    /// Whether no origin information is attached.
    pub fn is_empty(&self) -> bool {
        self.input.is_none()
            && self.input_name.is_none()
            && self.classes.is_empty()
            && self.labels.is_empty()
    }
}

impl fmt::Display for DiagnosticOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(index) = self.input {
            write!(f, "input #{index}")?;
            sep = "; ";
        }
        if let Some(name) = &self.input_name {
            write!(f, "{sep}`{name}`")?;
            sep = "; ";
        }
        if !self.classes.is_empty() {
            write!(f, "{sep}classes: ")?;
            for (i, class) in self.classes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{class}")?;
            }
            sep = "; ";
        }
        if !self.labels.is_empty() {
            write!(f, "{sep}labels: ")?;
            for (i, label) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{label}")?;
            }
        }
        Ok(())
    }
}

/// One structured diagnostic from planning or executing a merge.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct Diagnostic {
    /// How serious it is.
    pub severity: Severity,
    /// Stable machine-readable code (`W-EMPTY-INPUT`, `I-IMPLICIT-CLASSES`,
    /// `E-MERGE-INCOMPATIBLE`, …). Codes never change meaning across
    /// releases; new codes may be added.
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Where it points.
    pub origin: DiagnosticOrigin,
}

impl Diagnostic {
    /// A new diagnostic with no origin info.
    pub fn new(severity: Severity, code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            code,
            message: message.into(),
            origin: DiagnosticOrigin::default(),
        }
    }

    /// An advisory composition hint (`H-…` codes).
    pub fn hint(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Hint, code, message)
    }

    /// An informational diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, message)
    }

    /// A warning.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, message)
    }

    /// An error diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    /// Attaches the input index (and name, when known) the diagnostic
    /// concerns.
    pub fn with_input(mut self, index: usize, name: Option<&str>) -> Self {
        self.origin.input = Some(index);
        self.origin.input_name = name.map(str::to_owned);
        self
    }

    /// Attaches the classes involved.
    pub fn with_classes<I>(mut self, classes: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        self.origin.classes = classes.into_iter().map(Into::into).collect();
        self
    }

    /// Attaches the labels involved.
    pub fn with_labels<I>(mut self, labels: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Label>,
    {
        self.origin.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// The stable code. Identical to reading the `code` field; provided
    /// so `Diagnostic`, [`SchemaError`], [`MergeError`] and the CLI error
    /// type present one uniform `code()` API.
    pub fn code(&self) -> &'static str {
        self.code
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if !self.origin.is_empty() {
            write!(f, " ({})", self.origin)?;
        }
        Ok(())
    }
}

impl From<&SchemaError> for Diagnostic {
    fn from(err: &SchemaError) -> Self {
        let diag = Diagnostic::error(err.code(), err.to_string());
        match err {
            SchemaError::SpecializationCycle(witness) => {
                diag.with_classes(witness.path.iter().cloned())
            }
            SchemaError::NoCanonicalClass { class, label, .. } => diag
                .with_classes([class.clone()])
                .with_labels([label.clone()]),
            SchemaError::UnknownClass(class) => diag.with_classes([class.clone()]),
            SchemaError::KeyLabelNotAnArrow { class, label } => diag
                .with_classes([class.clone()])
                .with_labels([label.clone()]),
            SchemaError::KeyNotInherited { sub, sup } => {
                diag.with_classes([sub.clone(), sup.clone()])
            }
            SchemaError::AnnotationOnMissingArrow {
                class,
                label,
                target,
            } => diag
                .with_classes([class.clone(), target.clone()])
                .with_labels([label.clone()]),
        }
    }
}

impl From<&MergeError> for Diagnostic {
    fn from(err: &MergeError) -> Self {
        match err {
            MergeError::Incompatible(witness) => Diagnostic::error(err.code(), err.to_string())
                .with_classes(witness.path.iter().cloned()),
            MergeError::Inconsistent { left, right } => {
                Diagnostic::error(err.code(), err.to_string())
                    .with_classes([left.clone(), right.clone()])
            }
            MergeError::ParticipationConflict {
                class,
                label,
                target,
            } => Diagnostic::error(err.code(), err.to_string())
                .with_classes([class.clone(), target.clone()])
                .with_labels([label.clone()]),
            MergeError::Schema(inner) => {
                let mut diag = Diagnostic::from(inner);
                diag.message = err.to_string();
                diag
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CycleWitness;

    #[test]
    fn display_includes_code_and_origin() {
        let diag = Diagnostic::warning("W-EMPTY-INPUT", "input schema is empty")
            .with_input(2, Some("orders"));
        let text = diag.to_string();
        assert_eq!(
            text,
            "warning[W-EMPTY-INPUT]: input schema is empty (input #2; `orders`)"
        );
    }

    #[test]
    fn origin_renders_classes_and_labels() {
        let diag = Diagnostic::info("I-X", "msg")
            .with_classes(["A", "B"])
            .with_labels(["a"]);
        assert_eq!(
            diag.to_string(),
            "info[I-X]: msg (classes: A, B; labels: a)"
        );
    }

    #[test]
    fn merge_error_conversion_keeps_code_and_witness() {
        let err = MergeError::Incompatible(CycleWitness {
            path: vec![Class::named("A"), Class::named("B"), Class::named("A")],
        });
        let diag = Diagnostic::from(&err);
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(diag.code(), err.code());
        assert_eq!(diag.origin.classes.len(), 3);
    }

    #[test]
    fn schema_error_conversion_delegates_through_merge_error() {
        let err = MergeError::Schema(SchemaError::UnknownClass(Class::named("X")));
        let diag = Diagnostic::from(&err);
        assert_eq!(diag.code(), "E-SCHEMA-UNKNOWN-CLASS");
        assert!(diag.message.contains("invalid input schema"));
        assert_eq!(diag.origin.classes, vec![Class::named("X")]);
    }

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Hint < Severity::Info);
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Hint.as_str(), "hint");
        assert_eq!(Severity::Warning.as_str(), "warning");
    }

    #[test]
    fn hint_constructor_renders_like_the_other_tiers() {
        let diag = Diagnostic::hint("H-COMPOSE-SPAN", "implicit class spans registries");
        assert_eq!(diag.severity, Severity::Hint);
        assert_eq!(
            diag.to_string(),
            "hint[H-COMPOSE-SPAN]: implicit class spans registries"
        );
    }
}
