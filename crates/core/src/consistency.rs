//! The consistency relationship (§4.2, end).
//!
//! Not every merge makes sense: an implicit class identifies a set of
//! real-world classes, and the schema designer may know that some of them
//! can have no common instances. The paper proposes a *consistency
//! relationship* on `N`: completion then requires every pair of origins of
//! every implicit class to be consistent, and the merge fails otherwise.
//!
//! [`ConsistencyRelation`] supports both polarities — "assume consistent,
//! list exceptions" (the interactive default) and "assume inconsistent,
//! list permissions" (the conservative mode) — since the paper leaves the
//! relationship's construction to the tool.

use std::collections::BTreeSet;

use crate::class::Class;

/// A symmetric relation on classes recording which pairs may be identified
/// by an implicit class. Checking a pair is a set lookup, matching the
/// paper's remark that "checking consistency would be very efficient".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistencyRelation {
    /// Whether unlisted pairs are consistent.
    default_consistent: bool,
    /// Exceptions to the default, stored as ordered pairs (lo, hi).
    exceptions: BTreeSet<(Class, Class)>,
}

impl ConsistencyRelation {
    /// Every pair is consistent unless declared otherwise.
    pub fn assume_consistent() -> Self {
        ConsistencyRelation {
            default_consistent: true,
            exceptions: BTreeSet::new(),
        }
    }

    /// No pair is consistent unless declared otherwise.
    pub fn assume_inconsistent() -> Self {
        ConsistencyRelation {
            default_consistent: false,
            exceptions: BTreeSet::new(),
        }
    }

    fn key(a: Class, b: Class) -> (Class, Class) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Declares `a` and `b` inconsistent (an exception when assuming
    /// consistency; a no-op removal otherwise).
    pub fn declare_inconsistent(&mut self, a: impl Into<Class>, b: impl Into<Class>) {
        let key = Self::key(a.into(), b.into());
        if self.default_consistent {
            self.exceptions.insert(key);
        } else {
            self.exceptions.remove(&key);
        }
    }

    /// Declares `a` and `b` consistent.
    pub fn declare_consistent(&mut self, a: impl Into<Class>, b: impl Into<Class>) {
        let key = Self::key(a.into(), b.into());
        if self.default_consistent {
            self.exceptions.remove(&key);
        } else {
            self.exceptions.insert(key);
        }
    }

    /// Whether `a` and `b` may be identified by an implicit class. Every
    /// class is consistent with itself.
    pub fn consistent(&self, a: &Class, b: &Class) -> bool {
        if a == b {
            return true;
        }
        let key = Self::key(a.clone(), b.clone());
        if self.exceptions.contains(&key) {
            !self.default_consistent
        } else {
            self.default_consistent
        }
    }

    /// Number of explicitly recorded exceptions.
    pub fn num_exceptions(&self) -> usize {
        self.exceptions.len()
    }
}

impl Default for ConsistencyRelation {
    /// The permissive relation, matching the paper's default behaviour
    /// (consistency is an optional refinement).
    fn default() -> Self {
        ConsistencyRelation::assume_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    #[test]
    fn permissive_default() {
        let rel = ConsistencyRelation::assume_consistent();
        assert!(rel.consistent(&c("A"), &c("B")));
    }

    #[test]
    fn conservative_default() {
        let rel = ConsistencyRelation::assume_inconsistent();
        assert!(!rel.consistent(&c("A"), &c("B")));
        assert!(rel.consistent(&c("A"), &c("A")), "reflexive regardless");
    }

    #[test]
    fn exceptions_are_symmetric() {
        let mut rel = ConsistencyRelation::assume_consistent();
        rel.declare_inconsistent(c("Dog"), c("Kennel"));
        assert!(!rel.consistent(&c("Dog"), &c("Kennel")));
        assert!(!rel.consistent(&c("Kennel"), &c("Dog")));
        assert!(rel.consistent(&c("Dog"), &c("Person")));
    }

    #[test]
    fn declarations_can_be_reversed() {
        let mut rel = ConsistencyRelation::assume_consistent();
        rel.declare_inconsistent(c("A"), c("B"));
        assert!(!rel.consistent(&c("A"), &c("B")));
        rel.declare_consistent(c("A"), c("B"));
        assert!(rel.consistent(&c("A"), &c("B")));
        assert_eq!(rel.num_exceptions(), 0);
    }

    #[test]
    fn conservative_with_permissions() {
        let mut rel = ConsistencyRelation::assume_inconsistent();
        rel.declare_consistent(c("Employee"), c("Student"));
        assert!(rel.consistent(&c("Employee"), &c("Student")));
        assert!(!rel.consistent(&c("Employee"), &c("Kennel")));
        // Redundant inconsistency declaration removes the permission.
        rel.declare_inconsistent(c("Employee"), c("Student"));
        assert!(!rel.consistent(&c("Employee"), &c("Student")));
    }

    #[test]
    fn works_with_implicit_classes() {
        let mut rel = ConsistencyRelation::assume_consistent();
        let x = Class::implicit([c("A"), c("B")]);
        rel.declare_inconsistent(x.clone(), c("C"));
        assert!(!rel.consistent(&x, &c("C")));
    }
}
