//! # schema-merge-core
//!
//! An implementation of the schema-merging calculus of **Buneman, Davidson
//! & Kosky, *Theoretical Aspects of Schema Merging*, EDBT 1992**.
//!
//! Database schemas are directed graphs over classes with labelled
//! *arrow* ("attribute of") edges and a *specialization* ("isa") partial
//! order. Placing schemas in an information ordering with bounded joins
//! makes the merge a **least upper bound**: associative, commutative and
//! independent of the order in which schemas — or user assertions — are
//! considered. The calculus proceeds in two steps:
//!
//! 1. the weak join computes the least upper bound of compatible
//!    [`WeakSchema`]s (§4.1);
//! 2. [`complete::complete`] turns the result into a [`ProperSchema`] by
//!    introducing *implicit classes* below incomparable arrow targets
//!    (§4.2), named by their origin set (`{C,D}`).
//!
//! **Every merge goes through one façade: the [`merger::Merger`]
//! builder.** It collects inputs (schemas, annotated schemas, §3 user
//! assertions, an optional cached compiled base), constraints
//! (§4.2 consistency relation, §5 key contributions) and preferences
//! (engine, upper vs §6 lower mode), produces an inspectable
//! [`merger::MergePlan`], and executes into a unified
//! [`merger::MergeReport`] — merged schema, implicit-class table, key
//! assignment, per-input provenance and structured
//! [`diagnostic::Diagnostic`]s with stable codes. The CLI, the `smerge
//! serve` daemon, the registry's incremental re-merge and the benchmark
//! suite all construct `Merger`s, so one code path carries all traffic.
//!
//! Around the façade the crate provides: key constraints with the unique
//! minimal satisfactory assignment (§5, [`keys`]), participation
//! constraints and greatest-lower-bound *lower merges* (§6, [`lower`]),
//! consistency-relation checks (§4.2, [`consistency`]), an interactive
//! [`merge::MergeSession`] (an incremental `Merger` holding its running
//! join compiled), and alpha-isomorphism for comparing results modulo
//! implicit-class naming ([`iso`]).
//!
//! Internally every hot path runs on the **compiled schema core**
//! ([`compile`]): classes and labels are interned to dense `u32` ids,
//! the specialization closure lives in bitset rows and arrows in CSR
//! adjacency. Planning picks the engine — batch compiled, incremental
//! onto a cached base, or the retained symbolic algorithms of
//! [`reference`](mod@crate::reference) for differential testing — and
//! all engines produce equal results.
//!
//! ## Quick example
//!
//! ```
//! use schema_merge_core::prelude::*;
//!
//! // One database knows dogs by license, the other by name.
//! let g1 = WeakSchema::builder()
//!     .arrow("Dog", "license", "int")
//!     .arrow("Dog", "owner", "Person")
//!     .build()?;
//! let g2 = WeakSchema::builder()
//!     .arrow("Dog", "name", "string")
//!     .specialize("Guide-dog", "Dog")
//!     .build()?;
//!
//! let report = Merger::new().schema(&g1).schema(&g2).execute()?;
//! let dog = Class::named("Dog");
//! assert_eq!(report.proper.labels_of(&dog).len(), 3);
//! assert!(report.proper.specializes(&Class::named("Guide-dog"), &dog));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod compile;
pub mod complete;
pub mod compose;
pub mod consistency;
pub mod diagnostic;
pub mod diff;
pub mod error;
pub mod functional;
pub mod iso;
pub mod keys;
pub mod lower;
pub mod merge;
pub mod merger;
pub mod name;
mod order;
pub mod parallel;
pub mod participation;
mod partition;
pub mod proper;
pub mod reference;
pub mod rename;
pub mod restructure;
pub mod row;
pub mod scratch;
pub mod weak;

pub use class::{Class, OriginSet};
pub use compile::{ClassId, CompiledSchema, LabelId};
pub use complete::{
    complete, complete_compiled, complete_with_report, CompletionReport, ImplicitClassInfo,
};
pub use compose::{registry_of, ComposeProvenance};
pub use consistency::ConsistencyRelation;
pub use diagnostic::{Diagnostic, DiagnosticOrigin, Severity};
pub use diff::{diff, merge_contribution, SchemaDiff};
pub use error::{CycleWitness, MergeError, SchemaError};
pub use functional::{merge_functional, FunctionalSchema, Valence};
pub use keys::{KeyAssignment, KeySet, SuperkeyFamily};
pub use lower::{
    annotated_join, lower_complete, lower_merge, AnnotatedSchema, LowerCompletionReport,
};
pub use merge::{are_compatible, weak_join, MergeOutcome, MergeSession};
pub use merger::{
    EnginePreference, InputProvenance, Joined, MergeMode, MergePass, MergePlan, MergeReport,
    MergeTrace, Merger, PlannedEngine, PARALLEL_INPUT_THRESHOLD, PARALLEL_WORK_THRESHOLD,
    PARTITION_CLASS_THRESHOLD,
};
pub use name::{Label, Name};
pub use parallel::default_threads;
pub use participation::Participation;
pub use proper::ProperSchema;
pub use rename::{
    homonym_candidates, synonym_candidates, HomonymCandidate, RenameReport, Renaming,
    SynonymCandidate,
};
pub use restructure::{
    flatten_class, is_flattenable, reify_arrow, RestructureError, RestructureOp, Restructuring,
};
pub use weak::{SchemaBuilder, WeakSchema};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::class::Class;
    pub use crate::compile::CompiledSchema;
    pub use crate::complete::complete;
    pub use crate::consistency::ConsistencyRelation;
    pub use crate::diagnostic::{Diagnostic, Severity};
    pub use crate::error::{MergeError, SchemaError};
    pub use crate::keys::{KeyAssignment, KeySet, SuperkeyFamily};
    pub use crate::lower::{lower_complete, lower_merge, AnnotatedSchema};
    pub use crate::merge::{weak_join, MergeSession};
    pub use crate::merger::{EnginePreference, MergePlan, MergeReport, Merger};
    pub use crate::name::{Label, Name};
    pub use crate::participation::Participation;
    pub use crate::proper::ProperSchema;
    pub use crate::rename::Renaming;
    pub use crate::restructure::Restructuring;
    pub use crate::weak::WeakSchema;
}
