//! # schema-merge-core
//!
//! An implementation of the schema-merging calculus of **Buneman, Davidson
//! & Kosky, *Theoretical Aspects of Schema Merging*, EDBT 1992**.
//!
//! Database schemas are directed graphs over classes with labelled
//! *arrow* ("attribute of") edges and a *specialization* ("isa") partial
//! order. Placing schemas in an information ordering with bounded joins
//! makes the merge a **least upper bound**: associative, commutative and
//! independent of the order in which schemas — or user assertions — are
//! considered. The calculus proceeds in two steps:
//!
//! 1. [`merge::weak_join_all`] computes the least upper bound of
//!    compatible [`WeakSchema`]s (§4.1);
//! 2. [`complete::complete`] turns the result into a [`ProperSchema`] by
//!    introducing *implicit classes* below incomparable arrow targets
//!    (§4.2), named by their origin set (`{C,D}`).
//!
//! Around that core the crate provides: key constraints with the unique
//! minimal satisfactory assignment (§5, [`keys`]), participation
//! constraints and greatest-lower-bound *lower merges* (§6, [`lower`]),
//! consistency-relation checks (§4.2, [`consistency`]), an interactive
//! [`merge::MergeSession`], and alpha-isomorphism for comparing results
//! modulo implicit-class naming ([`iso`]).
//!
//! Internally every hot path runs on the **compiled schema core**
//! ([`compile`]): classes and labels are interned to dense `u32` ids,
//! the specialization closure lives in bitset rows and arrows in CSR
//! adjacency. [`merge_compiled`] is the batch entry point that interns
//! N schemas once and joins in id space; the original symbolic
//! algorithms are retained in the [`reference`](mod@crate::reference)
//! module for differential testing and benchmarking.
//!
//! ## Quick example
//!
//! ```
//! use schema_merge_core::prelude::*;
//!
//! // One database knows dogs by license, the other by name.
//! let g1 = WeakSchema::builder()
//!     .arrow("Dog", "license", "int")
//!     .arrow("Dog", "owner", "Person")
//!     .build()?;
//! let g2 = WeakSchema::builder()
//!     .arrow("Dog", "name", "string")
//!     .specialize("Guide-dog", "Dog")
//!     .build()?;
//!
//! let outcome = merge([&g1, &g2])?;
//! let dog = Class::named("Dog");
//! assert_eq!(outcome.proper.labels_of(&dog).len(), 3);
//! assert!(outcome.proper.specializes(&Class::named("Guide-dog"), &dog));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class;
pub mod compile;
pub mod complete;
pub mod consistency;
pub mod diff;
pub mod error;
pub mod functional;
pub mod iso;
pub mod keys;
pub mod lower;
pub mod merge;
pub mod name;
mod order;
pub mod participation;
pub mod proper;
pub mod reference;
pub mod rename;
pub mod restructure;
pub mod weak;

pub use class::{Class, OriginSet};
pub use compile::{ClassId, CompiledSchema, LabelId};
pub use complete::{
    complete, complete_compiled, complete_from_compiled, complete_with_report, CompletionReport,
    ImplicitClassInfo,
};
pub use consistency::ConsistencyRelation;
pub use diff::{diff, merge_contribution, SchemaDiff};
pub use error::{CycleWitness, MergeError, SchemaError};
pub use functional::{merge_functional, FunctionalSchema, Valence};
pub use keys::{KeyAssignment, KeySet, SuperkeyFamily};
pub use lower::{
    annotated_join, lower_complete, lower_merge, AnnotatedSchema, LowerCompletionReport,
};
pub use merge::{
    are_compatible, merge, merge_compiled, merge_consistent, weak_join, weak_join_all,
    weak_join_all_compiled, weak_join_onto_compiled, MergeOutcome, MergeSession,
};
pub use name::{Label, Name};
pub use participation::Participation;
pub use proper::ProperSchema;
pub use rename::{
    homonym_candidates, synonym_candidates, HomonymCandidate, RenameReport, Renaming,
    SynonymCandidate,
};
pub use restructure::{
    flatten_class, is_flattenable, reify_arrow, RestructureError, RestructureOp, Restructuring,
};
pub use weak::{SchemaBuilder, WeakSchema};

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::class::Class;
    pub use crate::compile::CompiledSchema;
    pub use crate::complete::complete;
    pub use crate::consistency::ConsistencyRelation;
    pub use crate::error::{MergeError, SchemaError};
    pub use crate::keys::{KeyAssignment, KeySet, SuperkeyFamily};
    pub use crate::lower::{lower_complete, lower_merge, AnnotatedSchema};
    pub use crate::merge::{merge, merge_compiled, weak_join, weak_join_all, MergeSession};
    pub use crate::name::{Label, Name};
    pub use crate::participation::Participation;
    pub use crate::proper::ProperSchema;
    pub use crate::rename::Renaming;
    pub use crate::restructure::Restructuring;
    pub use crate::weak::WeakSchema;
}
