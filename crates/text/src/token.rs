//! The DSL lexer.
//!
//! Identifiers are free-form (they may contain `-`, `#`, `.` — the paper
//! uses names like `Guide-dog`, `SS#`, `id-num`), so the arrow syntax
//! `--label-->` is lexed as a single token: `--` starts an arrow label,
//! which runs to the matching `-->`. A trailing `?` inside marks the
//! arrow optional (`--occ?-->`). Comments run from `//` to end of line.

use std::fmt;

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line for diagnostics.
    pub line: usize,
}

/// The token kinds of the DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `schema` keyword.
    Schema,
    /// `class` keyword.
    Class,
    /// `key` keyword.
    Key,
    /// An identifier (class name, schema name or key label).
    Ident(String),
    /// An arrow `--label-->` (optional if written `--label?-->`).
    Arrow {
        /// The label between the dashes.
        label: String,
        /// Whether the `?` optional marker was present.
        optional: bool,
    },
    /// `=>`.
    FatArrow,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `|`.
    Pipe,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Schema => write!(f, "`schema`"),
            TokenKind::Class => write!(f, "`class`"),
            TokenKind::Key => write!(f, "`key`"),
            TokenKind::Ident(text) => write!(f, "identifier `{text}`"),
            TokenKind::Arrow { label, optional } => {
                write!(
                    f,
                    "arrow `--{label}{}-->`",
                    if *optional { "?" } else { "" }
                )
            }
            TokenKind::FatArrow => write!(f, "`=>`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Pipe => write!(f, "`|`"),
        }
    }
}

/// A lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Characters that terminate an identifier.
fn is_ident_break(c: char, next: Option<char>) -> bool {
    match c {
        '{' | '}' | ';' | ',' | '|' => true,
        c if c.is_whitespace() => true,
        '=' if next == Some('>') => true,
        '-' if next == Some('-') => true,
        '/' if next == Some('/') => true,
        _ => false,
    }
}

/// Lexes a full source text.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    line,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    line,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    line,
                });
                i += 1;
            }
            '=' if next == Some('>') => {
                tokens.push(Token {
                    kind: TokenKind::FatArrow,
                    line,
                });
                i += 2;
            }
            '-' if next == Some('-') => {
                // `--label-->` or `--label?-->`.
                let start_line = line;
                i += 2;
                let label_start = i;
                // Scan to the closing `-->`.
                let mut end = None;
                let mut j = i;
                while j + 2 < chars.len() + 1 {
                    if j + 3 <= chars.len()
                        && chars[j] == '-'
                        && chars[j + 1] == '-'
                        && chars[j + 2] == '>'
                    {
                        end = Some(j);
                        break;
                    }
                    if j >= chars.len() || chars[j] == '\n' {
                        break;
                    }
                    j += 1;
                }
                let end = end.ok_or_else(|| LexError {
                    message: "unterminated arrow: expected `-->`".into(),
                    line: start_line,
                })?;
                let mut label: String = chars[label_start..end].iter().collect();
                let optional = label.ends_with('?');
                if optional {
                    label.pop();
                }
                if label.is_empty() {
                    return Err(LexError {
                        message: "empty arrow label".into(),
                        line: start_line,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Arrow { label, optional },
                    line: start_line,
                });
                i = end + 3;
            }
            _ => {
                let start = i;
                while i < chars.len() && !is_ident_break(chars[i], chars.get(i + 1).copied()) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match text.as_str() {
                    "schema" => TokenKind::Schema,
                    "class" => TokenKind::Class,
                    "key" => TokenKind::Key,
                    _ => TokenKind::Ident(text),
                };
                tokens.push(Token { kind, line });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("schema Dogs { class Guide-dog; }"),
            vec![
                TokenKind::Schema,
                TokenKind::Ident("Dogs".into()),
                TokenKind::LBrace,
                TokenKind::Class,
                TokenKind::Ident("Guide-dog".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn arrows() {
        assert_eq!(
            kinds("Dog --age--> int;"),
            vec![
                TokenKind::Ident("Dog".into()),
                TokenKind::Arrow {
                    label: "age".into(),
                    optional: false
                },
                TokenKind::Ident("int".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn optional_arrows() {
        assert_eq!(
            kinds("Lives --occ?--> Dog;")[1],
            TokenKind::Arrow {
                label: "occ".into(),
                optional: true
            }
        );
    }

    #[test]
    fn fat_arrow_and_braces() {
        assert_eq!(
            kinds("{C,D} => E | F"),
            vec![
                TokenKind::LBrace,
                TokenKind::Ident("C".into()),
                TokenKind::Comma,
                TokenKind::Ident("D".into()),
                TokenKind::RBrace,
                TokenKind::FatArrow,
                TokenKind::Ident("E".into()),
                TokenKind::Pipe,
                TokenKind::Ident("F".into()),
            ]
        );
    }

    #[test]
    fn exotic_identifiers() {
        // Names from the paper: SS#, id-num, Police-dog.
        assert_eq!(
            kinds("SS# id-num Police-dog"),
            vec![
                TokenKind::Ident("SS#".into()),
                TokenKind::Ident("id-num".into()),
                TokenKind::Ident("Police-dog".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("class A; // the A class\nclass B;").len(),
            6,
            "comment tokens are dropped"
        );
    }

    #[test]
    fn line_numbers() {
        let tokens = lex("class A;\nclass B;").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[3].line, 2);
    }

    #[test]
    fn unterminated_arrow_is_an_error() {
        let err = lex("Dog --age-> int").unwrap_err();
        assert!(err.message.contains("unterminated arrow"));
        let err2 = lex("Dog --age").unwrap_err();
        assert!(err2.message.contains("unterminated"));
    }

    #[test]
    fn empty_arrow_label_is_an_error() {
        assert!(lex("A ----> B").is_err());
    }

    #[test]
    fn labels_may_contain_single_dashes() {
        assert_eq!(
            kinds("R --id-num--> int;")[1],
            TokenKind::Arrow {
                label: "id-num".into(),
                optional: false
            }
        );
    }
}
