//! The `smerge serve` wire protocol: line-oriented commands and
//! dot-framed text blocks.
//!
//! The registry daemon speaks a deliberately small, human-typeable
//! protocol over TCP — every request is one command line, optionally
//! followed by a *block* (for `PUT` payloads), and every response is one
//! status line, optionally followed by a block:
//!
//! ```text
//! C: PUT inventory
//! C: schema inventory { Part --price--> money; }
//! C: .
//! S: OK hash=0f3a90b11c2d4e55 generation=3 members=2
//! C: MERGED
//! S: DATA schema
//! S: schema merged {
//! S:     ...
//! S: .
//! ```
//!
//! A block is a run of lines terminated by a line containing only `.`;
//! payload lines that *start* with a dot are escaped by doubling it
//! (SMTP-style dot stuffing), so arbitrary schema text — including a
//! class named `.` — round-trips. [`encode_block`] and [`BlockCollector`]
//! are the two halves of that framing; both are plain string machines
//! with no I/O, shared by the server, the client and the tests.

use std::fmt;

/// The line that terminates a block.
pub const BLOCK_TERMINATOR: &str = ".";

/// A request from a client, one per line. `PUT` is followed by a
/// dot-framed block carrying the schema document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Publish a schema version under a member name (block payload).
    Put(String),
    /// Fetch the current version of a member, printed canonically.
    Get(String),
    /// Remove a member and its versions from the registry.
    Delete(String),
    /// Fetch the canonical merged view.
    Merged,
    /// Fetch registry statistics.
    Stats,
    /// Fetch the daemon's telemetry as Prometheus-style exposition text
    /// (latency summaries, counters, gauges).
    Metrics,
    /// List members with their current version hashes.
    List,
    /// Evaluate a schema-space path query against the merged view.
    Query(String),
    /// Attach a fresh member registry to the daemon's supergraph under a
    /// namespace. Subsequent `PUT registry/member` lines route to it.
    Attach(String),
    /// Detach a member registry (its members leave the next composition).
    Detach(String),
    /// Compose every attached registry into the supergraph view and
    /// report generation, strategy and hint count.
    Compose,
    /// Fetch the composed supergraph: statistics, per-registry
    /// contributions, hints and the composed schema as a block.
    Supergraph,
    /// Force a snapshot + WAL compaction on a durable registry.
    Snapshot,
    /// Fetch the registry's resilience state: `ok`/`degraded`, retry
    /// counters, the last storage error, fault-injection counters when
    /// injection is live.
    Health,
    /// Liveness probe.
    Ping,
    /// Stop the daemon (after draining in-flight connections).
    Shutdown,
    /// Close this connection.
    Quit,
}

impl Command {
    /// Parses one request line. Member names are single whitespace-free
    /// tokens; `QUERY` takes the rest of the line verbatim (paths contain
    /// no spaces in practice, but `{A,B}` origin syntax is preserved).
    pub fn parse(line: &str) -> Result<Command, ProtocolError> {
        let trimmed = line.trim();
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((verb, rest)) => (verb, rest.trim()),
            None => (trimmed, ""),
        };
        let name_arg = |what: &'static str| -> Result<String, ProtocolError> {
            if rest.is_empty() {
                return Err(ProtocolError::MissingArgument(what));
            }
            if rest.split_whitespace().count() > 1 {
                return Err(ProtocolError::TrailingInput(rest.to_string()));
            }
            Ok(rest.to_string())
        };
        let bare = |command: Command| -> Result<Command, ProtocolError> {
            if rest.is_empty() {
                Ok(command)
            } else {
                Err(ProtocolError::TrailingInput(rest.to_string()))
            }
        };
        match verb.to_ascii_uppercase().as_str() {
            "" => Err(ProtocolError::Empty),
            "PUT" => Ok(Command::Put(name_arg("member name")?)),
            "GET" => Ok(Command::Get(name_arg("member name")?)),
            "DELETE" => Ok(Command::Delete(name_arg("member name")?)),
            "MERGED" => bare(Command::Merged),
            "STATS" => bare(Command::Stats),
            "METRICS" => bare(Command::Metrics),
            "LIST" => bare(Command::List),
            "QUERY" => {
                if rest.is_empty() {
                    Err(ProtocolError::MissingArgument("path"))
                } else {
                    Ok(Command::Query(rest.to_string()))
                }
            }
            "ATTACH" => Ok(Command::Attach(name_arg("registry name")?)),
            "DETACH" => Ok(Command::Detach(name_arg("registry name")?)),
            "COMPOSE" => bare(Command::Compose),
            "SUPERGRAPH" => bare(Command::Supergraph),
            "SNAPSHOT" => bare(Command::Snapshot),
            "HEALTH" => bare(Command::Health),
            "PING" => bare(Command::Ping),
            "SHUTDOWN" => bare(Command::Shutdown),
            "QUIT" => bare(Command::Quit),
            other => Err(ProtocolError::UnknownCommand(other.to_string())),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Put(name) => write!(f, "PUT {name}"),
            Command::Get(name) => write!(f, "GET {name}"),
            Command::Delete(name) => write!(f, "DELETE {name}"),
            Command::Merged => write!(f, "MERGED"),
            Command::Stats => write!(f, "STATS"),
            Command::Metrics => write!(f, "METRICS"),
            Command::List => write!(f, "LIST"),
            Command::Query(path) => write!(f, "QUERY {path}"),
            Command::Attach(name) => write!(f, "ATTACH {name}"),
            Command::Detach(name) => write!(f, "DETACH {name}"),
            Command::Compose => write!(f, "COMPOSE"),
            Command::Supergraph => write!(f, "SUPERGRAPH"),
            Command::Snapshot => write!(f, "SNAPSHOT"),
            Command::Health => write!(f, "HEALTH"),
            Command::Ping => write!(f, "PING"),
            Command::Shutdown => write!(f, "SHUTDOWN"),
            Command::Quit => write!(f, "QUIT"),
        }
    }
}

/// The first word of every response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; the detail is the rest of the line.
    Ok,
    /// Success; the detail is the rest of the line and a dot-framed
    /// block follows.
    Data,
    /// Failure; the detail is the error message.
    Err,
}

impl Status {
    /// The wire keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Data => "DATA",
            Status::Err => "ERR",
        }
    }
}

/// Splits a response line into its status and detail text.
pub fn parse_status_line(line: &str) -> Result<(Status, &str), ProtocolError> {
    let trimmed = line.trim_end();
    let (word, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((word, rest)) => (word, rest.trim_start()),
        None => (trimmed, ""),
    };
    match word {
        "OK" => Ok((Status::Ok, rest)),
        "DATA" => Ok((Status::Data, rest)),
        "ERR" => Ok((Status::Err, rest)),
        other => Err(ProtocolError::UnknownStatus(other.to_string())),
    }
}

/// Formats a response status line (no trailing newline).
pub fn status_line(status: Status, detail: &str) -> String {
    if detail.is_empty() {
        status.as_str().to_string()
    } else {
        format!("{} {detail}", status.as_str())
    }
}

/// Encodes a payload as a dot-framed block: each line dot-stuffed, then
/// the terminator line. The result always ends with a newline and is
/// ready to write after a `DATA` status line or a `PUT` command line.
pub fn encode_block(payload: &str) -> String {
    let mut out = String::with_capacity(payload.len() + 8);
    for line in payload.lines() {
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(BLOCK_TERMINATOR);
    out.push('\n');
    out
}

/// The receiving half of the block framing: feed raw lines (without
/// their newline) until [`BlockCollector::push`] reports the terminator,
/// then take the decoded payload with [`BlockCollector::finish`].
#[derive(Debug, Default)]
pub struct BlockCollector {
    payload: String,
    done: bool,
}

impl BlockCollector {
    /// An empty collector.
    pub fn new() -> Self {
        BlockCollector::default()
    }

    /// Consumes one raw line. Returns `true` once the terminator line
    /// arrives (the terminator itself is not part of the payload).
    /// Further pushes after that are ignored.
    pub fn push(&mut self, line: &str) -> bool {
        if self.done {
            return true;
        }
        if line == BLOCK_TERMINATOR {
            self.done = true;
            return true;
        }
        let unstuffed = line.strip_prefix('.').filter(|_| line.starts_with(".."));
        match unstuffed {
            Some(rest) => self.payload.push_str(rest),
            None => self.payload.push_str(line),
        }
        self.payload.push('\n');
        false
    }

    /// Whether the terminator has been seen.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The decoded payload (every line newline-terminated).
    pub fn finish(self) -> String {
        self.payload
    }
}

/// A malformed request or response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// An empty command line.
    Empty,
    /// An unrecognized command verb.
    UnknownCommand(String),
    /// An unrecognized response status word.
    UnknownStatus(String),
    /// A command missing its required argument.
    MissingArgument(&'static str),
    /// Extra input after a complete command.
    TrailingInput(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty command"),
            ProtocolError::UnknownCommand(verb) => write!(f, "unknown command `{verb}`"),
            ProtocolError::UnknownStatus(word) => write!(f, "unknown response status `{word}`"),
            ProtocolError::MissingArgument(what) => write!(f, "missing {what}"),
            ProtocolError::TrailingInput(rest) => write!(f, "unexpected trailing input `{rest}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_and_round_trip() {
        for (line, expected) in [
            ("PUT inventory", Command::Put("inventory".into())),
            ("get shelf", Command::Get("shelf".into())),
            ("DELETE a-b", Command::Delete("a-b".into())),
            ("MERGED", Command::Merged),
            ("stats", Command::Stats),
            ("METRICS", Command::Metrics),
            ("metrics", Command::Metrics),
            ("LIST", Command::List),
            (
                "QUERY Dog.owner[{A,B}]",
                Command::Query("Dog.owner[{A,B}]".into()),
            ),
            ("ATTACH billing", Command::Attach("billing".into())),
            ("detach billing", Command::Detach("billing".into())),
            ("COMPOSE", Command::Compose),
            ("supergraph", Command::Supergraph),
            ("snapshot", Command::Snapshot),
            ("HEALTH", Command::Health),
            ("health", Command::Health),
            ("PING", Command::Ping),
            ("SHUTDOWN", Command::Shutdown),
            ("QUIT", Command::Quit),
        ] {
            let parsed = Command::parse(line).unwrap();
            assert_eq!(parsed, expected, "{line}");
            // Display emits the canonical form, which re-parses.
            assert_eq!(Command::parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn command_errors() {
        assert_eq!(Command::parse("  "), Err(ProtocolError::Empty));
        assert!(matches!(
            Command::parse("FROB x"),
            Err(ProtocolError::UnknownCommand(_))
        ));
        assert_eq!(
            Command::parse("PUT"),
            Err(ProtocolError::MissingArgument("member name"))
        );
        assert!(matches!(
            Command::parse("PUT two words"),
            Err(ProtocolError::TrailingInput(_))
        ));
        assert!(matches!(
            Command::parse("MERGED now"),
            Err(ProtocolError::TrailingInput(_))
        ));
        assert_eq!(
            Command::parse("QUERY"),
            Err(ProtocolError::MissingArgument("path"))
        );
        assert_eq!(
            Command::parse("ATTACH"),
            Err(ProtocolError::MissingArgument("registry name"))
        );
        assert!(matches!(
            Command::parse("COMPOSE now"),
            Err(ProtocolError::TrailingInput(_))
        ));
    }

    #[test]
    fn status_lines_round_trip() {
        assert_eq!(
            parse_status_line("OK hash=1 generation=2").unwrap(),
            (Status::Ok, "hash=1 generation=2")
        );
        assert_eq!(parse_status_line("DATA").unwrap(), (Status::Data, ""));
        assert_eq!(
            parse_status_line("ERR merge failed: cycle").unwrap(),
            (Status::Err, "merge failed: cycle")
        );
        assert!(parse_status_line("NOPE x").is_err());
        assert_eq!(status_line(Status::Ok, ""), "OK");
        assert_eq!(status_line(Status::Err, "bad"), "ERR bad");
    }

    #[test]
    fn block_framing_round_trips() {
        let payload = "schema S {\n    Dog --age--> int;\n}\n";
        let encoded = encode_block(payload);
        assert!(encoded.ends_with(".\n"));
        let mut collector = BlockCollector::new();
        let mut finished = false;
        for line in encoded.lines() {
            finished = collector.push(line);
            if finished {
                break;
            }
        }
        assert!(finished && collector.is_done());
        assert_eq!(collector.finish(), payload);
    }

    #[test]
    fn dot_stuffing_protects_leading_dots() {
        let payload = ".leading\n..double\nplain\n";
        let encoded = encode_block(payload);
        assert!(encoded.starts_with("..leading\n...double\n"));
        let mut collector = BlockCollector::new();
        for line in encoded.lines() {
            if collector.push(line) {
                break;
            }
        }
        assert_eq!(collector.finish(), payload);
    }

    #[test]
    fn empty_block() {
        assert_eq!(encode_block(""), ".\n");
        let mut collector = BlockCollector::new();
        assert!(collector.push("."));
        assert_eq!(collector.finish(), "");
    }
}
