//! The DSL parser: tokens → annotated schemas with key assignments.

use std::fmt;

use schema_merge_core::lower::AnnotatedSchema;
use schema_merge_core::{Class, KeyAssignment, KeySet, SchemaError};

use crate::token::{lex, LexError, Token, TokenKind};

/// A schema as written in a document: its name, the (annotated) graph and
/// any key declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedSchema {
    /// The `schema <name>` header.
    pub name: String,
    /// The parsed schema (arrows marked `?` are participation `0/1`).
    pub schema: AnnotatedSchema,
    /// The `key` declarations.
    pub keys: KeyAssignment,
}

/// A parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Lexing failed.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        /// What was found, or `None` at end of input.
        found: Option<TokenKind>,
        /// What the parser was looking for.
        expected: String,
        /// 1-based source line.
        line: usize,
    },
    /// The schema body was parsed but is not a valid schema (e.g. cyclic
    /// isa declarations).
    Invalid {
        /// The schema's name.
        schema: String,
        /// The underlying error.
        error: SchemaError,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(err) => write!(f, "{err}"),
            ParseError::Unexpected {
                found,
                expected,
                line,
            } => match found {
                Some(kind) => write!(f, "line {line}: expected {expected}, found {kind}"),
                None => write!(f, "line {line}: expected {expected}, found end of input"),
            },
            ParseError::Invalid { schema, error } => {
                write!(f, "schema {schema} is invalid: {error}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(err) => Some(err),
            ParseError::Invalid { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> Self {
        ParseError::Lex(err)
    }
}

pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    pub(crate) position: usize,
}

impl Parser {
    pub(crate) fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.position).map(|t| &t.kind)
    }

    pub(crate) fn line(&self) -> usize {
        self.tokens
            .get(self.position)
            .or_else(|| self.tokens.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    pub(crate) fn advance(&mut self) -> Option<TokenKind> {
        let token = self.tokens.get(self.position).cloned();
        self.position += 1;
        token.map(|t| t.kind)
    }

    pub(crate) fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::Unexpected {
            found: self.peek().cloned(),
            expected: expected.to_string(),
            line: self.line(),
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(kind) {
            self.advance();
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    pub(crate) fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => match self.advance() {
                Some(TokenKind::Ident(text)) => Ok(text),
                _ => unreachable!("peeked an identifier"),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    /// classref := IDENT | "{" IDENT ("," IDENT)+ "}" | "{" IDENT ("|" IDENT)+ "}"
    pub(crate) fn class_ref(&mut self) -> Result<Class, ParseError> {
        if self.peek() != Some(&TokenKind::LBrace) {
            return Ok(Class::named(self.ident("a class name")?));
        }
        self.advance();
        let first = self.ident("an origin class name")?;
        let mut members = vec![first];
        let meet = match self.peek() {
            Some(TokenKind::Comma) => true,
            Some(TokenKind::Pipe) => false,
            _ => return Err(self.unexpected("`,` or `|` in an implicit class literal")),
        };
        let separator = if meet {
            TokenKind::Comma
        } else {
            TokenKind::Pipe
        };
        while self.peek() == Some(&separator) {
            self.advance();
            members.push(self.ident("an origin class name")?);
        }
        self.expect(&TokenKind::RBrace, "`}` closing the implicit class literal")?;
        let classes = members.into_iter().map(Class::named);
        let class = if meet {
            Class::try_implicit(classes)
        } else {
            Class::try_implicit_union(classes)
        };
        class.ok_or_else(|| ParseError::Unexpected {
            found: None,
            expected: "at least two distinct origin classes".into(),
            line: self.line(),
        })
    }
}

/// Parses a document of `schema <name> { … }` blocks.
pub fn parse_document(source: &str) -> Result<Vec<NamedSchema>, ParseError> {
    let mut parser = Parser {
        tokens: lex(source)?,
        position: 0,
    };
    let mut schemas = Vec::new();
    while parser.peek().is_some() {
        schemas.push(parse_one(&mut parser)?);
    }
    Ok(schemas)
}

/// Parses a document expected to contain exactly one schema.
pub fn parse_schema(source: &str) -> Result<NamedSchema, ParseError> {
    let mut schemas = parse_document(source)?;
    match (schemas.len(), schemas.pop()) {
        (1, Some(schema)) => Ok(schema),
        (_, last) => Err(ParseError::Unexpected {
            found: None,
            expected: format!(
                "exactly one schema in the document (found {})",
                if last.is_some() { "several" } else { "none" }
            ),
            line: 1,
        }),
    }
}

fn parse_one(parser: &mut Parser) -> Result<NamedSchema, ParseError> {
    parser.expect(&TokenKind::Schema, "`schema`")?;
    let name = parser.ident("a schema name")?;
    parser.expect(&TokenKind::LBrace, "`{` opening the schema body")?;

    let mut builder = AnnotatedSchema::builder();
    let mut keys = KeyAssignment::new();

    loop {
        match parser.peek() {
            Some(TokenKind::RBrace) => {
                parser.advance();
                break;
            }
            Some(TokenKind::Class) => {
                parser.advance();
                let class = parser.class_ref()?;
                parser.expect(&TokenKind::Semi, "`;` after a class declaration")?;
                builder = builder.class(class);
            }
            Some(TokenKind::Key) => {
                parser.advance();
                let class = parser.class_ref()?;
                parser.expect(&TokenKind::LBrace, "`{` opening the key labels")?;
                let mut labels = Vec::new();
                if parser.peek() != Some(&TokenKind::RBrace) {
                    labels.push(parser.ident("a key label")?);
                    while parser.peek() == Some(&TokenKind::Comma) {
                        parser.advance();
                        labels.push(parser.ident("a key label")?);
                    }
                }
                parser.expect(&TokenKind::RBrace, "`}` closing the key labels")?;
                parser.expect(&TokenKind::Semi, "`;` after a key declaration")?;
                keys.add_key(class, KeySet::new(labels));
            }
            Some(TokenKind::Ident(_)) | Some(TokenKind::LBrace) => {
                let source_class = parser.class_ref()?;
                match parser.peek() {
                    Some(TokenKind::FatArrow) => {
                        parser.advance();
                        let target = parser.class_ref()?;
                        parser.expect(&TokenKind::Semi, "`;` after a specialization")?;
                        builder = builder.specialize(source_class, target);
                    }
                    Some(TokenKind::Arrow { .. }) => {
                        let (label, optional) = match parser.advance() {
                            Some(TokenKind::Arrow { label, optional }) => (label, optional),
                            _ => unreachable!("peeked an arrow"),
                        };
                        let target = parser.class_ref()?;
                        parser.expect(&TokenKind::Semi, "`;` after an arrow")?;
                        builder = if optional {
                            builder.optional_arrow(source_class, label, target)
                        } else {
                            builder.arrow(source_class, label, target)
                        };
                    }
                    _ => return Err(parser.unexpected("`=>` or `--label-->` after a class")),
                }
            }
            _ => return Err(parser.unexpected("a schema item or `}`")),
        }
    }

    let schema = builder.build().map_err(|error| ParseError::Invalid {
        schema: name.clone(),
        error,
    })?;
    Ok(NamedSchema { name, schema, keys })
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::{Label, Participation};

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn parse_figure_2_style_schema() {
        let doc = parse_schema(
            "schema Dogs {\n\
             \tGuide-dog => Dog;\n\
             \tPolice-dog => Dog;\n\
             \tDog --age--> int;\n\
             \tDog --kind--> breed;\n\
             \tPolice-dog --id-num--> int;\n\
             \tLives --occ--> Dog;\n\
             \tLives --home--> Kennel;\n\
             \tKennel --addr--> place;\n\
             }",
        )
        .unwrap();
        assert_eq!(doc.name, "Dogs");
        let schema = doc.schema.schema();
        assert!(schema.specializes(&c("Guide-dog"), &c("Dog")));
        assert!(
            schema.has_arrow(&c("Guide-dog"), &l("age"), &c("int")),
            "closure applies"
        );
        assert_eq!(schema.num_classes(), 8);
    }

    #[test]
    fn parse_optional_arrows() {
        let doc = parse_schema("schema S { Dog --chip?--> int; }").unwrap();
        assert_eq!(
            doc.schema.participation(&c("Dog"), &l("chip"), &c("int")),
            Participation::ZeroOrOne
        );
    }

    #[test]
    fn parse_keys() {
        let doc = parse_schema(
            "schema S {\n\
             Person --SS#--> int;\n\
             Person --Name--> text;\n\
             Person --Address--> text;\n\
             key Person {SS#};\n\
             key Person {Name, Address};\n\
             }",
        )
        .unwrap();
        let family = doc.keys.family(&c("Person"));
        assert_eq!(family.num_keys(), 2);
        assert!(doc.keys.validate(doc.schema.schema()).is_ok());
    }

    #[test]
    fn parse_implicit_class_literals() {
        let doc =
            parse_schema("schema S { class {B1,B2}; {B1,B2} => B1; C --a--> {B1,B2}; }").unwrap();
        let meet = Class::implicit([c("B1"), c("B2")]);
        assert!(doc.schema.schema().contains_class(&meet));
        assert!(doc.schema.schema().specializes(&meet, &c("B1")));

        let doc2 = parse_schema("schema S { class {A|B}; }").unwrap();
        assert!(doc2
            .schema
            .schema()
            .contains_class(&Class::implicit_union([c("A"), c("B")])));
    }

    #[test]
    fn parse_multiple_schemas() {
        let docs = parse_document("schema A { class X; }\nschema B { X --f--> Y; }").unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].name, "A");
        assert_eq!(docs[1].name, "B");
    }

    #[test]
    fn empty_document() {
        assert!(parse_document("  // nothing here\n").unwrap().is_empty());
        assert!(parse_schema("").is_err());
    }

    #[test]
    fn error_reporting_carries_lines() {
        let err = parse_document("schema S {\nclass ;\n}").unwrap_err();
        match err {
            ParseError::Unexpected { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn cyclic_schema_is_rejected_at_build() {
        let err = parse_document("schema S { A => B; B => A; }").unwrap_err();
        assert!(matches!(err, ParseError::Invalid { .. }));
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn missing_semicolons_are_reported() {
        let err = parse_document("schema S { A => B }").unwrap_err();
        assert!(err.to_string().contains("`;`"));
    }

    #[test]
    fn singleton_implicit_literal_is_rejected() {
        let err = parse_document("schema S { class {A,A}; }").unwrap_err();
        assert!(err.to_string().contains("two distinct origin classes"));
    }

    #[test]
    fn mixed_separators_are_rejected() {
        assert!(parse_document("schema S { class {A,B|C}; }").is_err());
    }
}
