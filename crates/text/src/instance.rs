//! Instance literals: a text format for the data half of the system.
//!
//! Schema files describe the `(C, E, S)` graphs; instance files describe
//! their §1 "semantic basis" — objects, extents and attribute values —
//! with syntax deliberately parallel to the schema DSL:
//!
//! ```text
//! instance shelter {
//!     rex => Dog;             // rex is an instance of Dog
//!     rex => Guide-dog;
//!     ann => Person;
//!     rex --owner--> ann;     // rex's owner-attribute is ann
//! }
//! ```
//!
//! `o => C` reads "o is a member of C's extent", mirroring the schema
//! DSL's `A => B` ("every instance of A is an instance of B"); the arrow
//! statement mirrors `p --a--> q`. Class positions accept implicit-class
//! literals (`{C,D}` / `{C|D}`) so instances of *merged* schemas
//! round-trip. Objects are named; [`NamedInstance`] keeps the symbol
//! table so query results print as names rather than raw oids.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use schema_merge_core::{Class, Label};
use schema_merge_instance::{Instance, InstanceBuilder, Oid};

use crate::parse::{ParseError, Parser};
use crate::token::{lex, TokenKind};

/// A parsed instance with its object-name symbol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedInstance {
    /// The `instance <name>` header.
    pub name: String,
    /// The instance itself.
    pub instance: Instance,
    symbols: BTreeMap<String, Oid>,
}

impl NamedInstance {
    /// Wraps an instance with an explicit symbol table. Object names
    /// must be unique per oid for printing to round-trip.
    pub fn new(
        name: impl Into<String>,
        instance: Instance,
        symbols: BTreeMap<String, Oid>,
    ) -> Self {
        NamedInstance {
            name: name.into(),
            instance,
            symbols,
        }
    }

    /// The oid bound to an object name.
    pub fn oid(&self, name: &str) -> Option<Oid> {
        self.symbols.get(name).copied()
    }

    /// The first name bound to an oid (names are unique in parsed
    /// instances).
    pub fn name_of(&self, oid: Oid) -> Option<&str> {
        self.symbols
            .iter()
            .find(|(_, &bound)| bound == oid)
            .map(|(name, _)| name.as_str())
    }

    /// All `(name, oid)` bindings, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, Oid)> {
        self.symbols.iter().map(|(name, &oid)| (name.as_str(), oid))
    }

    /// Renders a set of oids as sorted names (falling back to `#n` for
    /// unnamed objects, e.g. from a union's renumbering).
    pub fn render_objects<'a>(&self, oids: impl IntoIterator<Item = &'a Oid>) -> Vec<String> {
        let mut names: Vec<String> = oids
            .into_iter()
            .map(|&oid| {
                self.name_of(oid)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("#{}", oid.0))
            })
            .collect();
        names.sort();
        names
    }
}

/// Parses a document of `instance <name> { … }` blocks.
pub fn parse_instances(source: &str) -> Result<Vec<NamedInstance>, ParseError> {
    let mut parser = Parser {
        tokens: lex(source)?,
        position: 0,
    };
    let mut instances = Vec::new();
    while parser.peek().is_some() {
        instances.push(parse_one(&mut parser)?);
    }
    Ok(instances)
}

/// Parses a document expected to contain exactly one instance.
pub fn parse_instance(source: &str) -> Result<NamedInstance, ParseError> {
    let mut instances = parse_instances(source)?;
    match (instances.len(), instances.pop()) {
        (1, Some(instance)) => Ok(instance),
        (_, last) => Err(ParseError::Unexpected {
            found: None,
            expected: format!(
                "exactly one instance in the document (found {})",
                if last.is_some() { "several" } else { "none" }
            ),
            line: 1,
        }),
    }
}

fn parse_one(parser: &mut Parser) -> Result<NamedInstance, ParseError> {
    // `instance` is a contextual keyword: the schema lexer sees it as an
    // ordinary identifier.
    match parser.peek() {
        Some(TokenKind::Ident(word)) if word == "instance" => {
            parser.advance();
        }
        _ => return Err(parser.unexpected("`instance`")),
    }
    let name = parser.ident("an instance name")?;
    parser.expect(&TokenKind::LBrace, "`{` opening the instance body")?;

    let mut builder = InstanceBuilder::default();
    let mut symbols: BTreeMap<String, Oid> = BTreeMap::new();
    let resolve =
        |builder: &mut InstanceBuilder, symbols: &mut BTreeMap<String, Oid>, object: String| {
            *symbols
                .entry(object)
                .or_insert_with(|| builder.object(Vec::<Class>::new()))
        };

    loop {
        match parser.peek() {
            Some(TokenKind::RBrace) => {
                parser.advance();
                break;
            }
            Some(TokenKind::Ident(_)) => {
                let object = parser.ident("an object name")?;
                let oid = resolve(&mut builder, &mut symbols, object);
                match parser.peek() {
                    Some(TokenKind::FatArrow) => {
                        parser.advance();
                        let class = parser.class_ref()?;
                        builder.classify(oid, class);
                    }
                    Some(TokenKind::Arrow {
                        optional: false, ..
                    }) => {
                        let Some(TokenKind::Arrow { label, .. }) = parser.advance() else {
                            unreachable!("peeked an arrow");
                        };
                        let target = parser.ident("a target object name")?;
                        let target_oid = resolve(&mut builder, &mut symbols, target);
                        builder.attr(oid, Label::new(&label), target_oid);
                    }
                    _ => {
                        return Err(parser.unexpected(
                            "`=> Class` (membership) or `--label--> object` (attribute)",
                        ))
                    }
                }
                parser.expect(&TokenKind::Semi, "`;` ending the statement")?;
            }
            _ => return Err(parser.unexpected("an object statement or `}`")),
        }
    }
    Ok(NamedInstance {
        name,
        instance: builder.build(),
        symbols,
    })
}

/// Pretty-prints an instance; inverse of [`parse_instance`] for
/// instances whose objects are all named.
pub fn print_instance(named: &NamedInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "instance {} {{", named.name);
    for (name, oid) in named.symbols() {
        for class in named.instance.classes_of(oid) {
            let class_text = match &class {
                Class::Named(n) => n.to_string(),
                other => other.to_string(),
            };
            let _ = writeln!(out, "    {name} => {class_text};");
        }
    }
    for (object, label, value) in named.instance.attributes() {
        let object_name = named
            .name_of(object)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", object.0));
        let value_name = named
            .name_of(value)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", value.0));
        let _ = writeln!(out, "    {object_name} --{label}--> {value_name};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHELTER: &str = "\
instance shelter {
    rex => Dog;
    rex => Guide-dog;
    ann => Person;
    rex --owner--> ann;
}";

    #[test]
    fn parses_memberships_and_attributes() {
        let named = parse_instance(SHELTER).expect("parses");
        assert_eq!(named.name, "shelter");
        let rex = named.oid("rex").expect("rex bound");
        let ann = named.oid("ann").expect("ann bound");
        assert!(named.instance.in_extent(&Class::named("Dog"), rex));
        assert!(named.instance.in_extent(&Class::named("Guide-dog"), rex));
        assert_eq!(named.instance.attr(rex, &Label::new("owner")), Some(ann));
        assert_eq!(named.name_of(rex), Some("rex"));
    }

    #[test]
    fn forward_references_work() {
        let named = parse_instance("instance i { rex --owner--> ann; ann => Person; rex => Dog; }")
            .expect("parses");
        let rex = named.oid("rex").unwrap();
        let ann = named.oid("ann").unwrap();
        assert_eq!(named.instance.attr(rex, &Label::new("owner")), Some(ann));
        assert!(named.instance.in_extent(&Class::named("Person"), ann));
    }

    #[test]
    fn implicit_class_literals_parse() {
        let named = parse_instance("instance i { x => {C,D}; y => {A|B}; }").expect("parses");
        let x = named.oid("x").unwrap();
        let y = named.oid("y").unwrap();
        let meet = Class::implicit([Class::named("C"), Class::named("D")]);
        let union = Class::implicit_union([Class::named("A"), Class::named("B")]);
        assert!(named.instance.in_extent(&meet, x));
        assert!(named.instance.in_extent(&union, y));
    }

    #[test]
    fn multiple_instances_per_document() {
        let all =
            parse_instances("instance a { x => C; }\ninstance b { y => D; }").expect("parses");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "a");
        assert_eq!(all[1].name, "b");
        assert!(parse_instance("instance a { } instance b { }").is_err());
    }

    type Memberships = Vec<(String, String)>;
    type Attributes = Vec<(String, String, String)>;

    /// The name-keyed view of an instance: oids are parse-order
    /// artifacts, so round-trips are compared modulo renumbering.
    fn by_name(named: &NamedInstance) -> (Memberships, Attributes) {
        let mut memberships = Vec::new();
        for (name, oid) in named.symbols() {
            for class in named.instance.classes_of(oid) {
                memberships.push((name.to_string(), class.to_string()));
            }
        }
        let mut attrs = Vec::new();
        for (object, label, value) in named.instance.attributes() {
            attrs.push((
                named.name_of(object).expect("named").to_string(),
                label.to_string(),
                named.name_of(value).expect("named").to_string(),
            ));
        }
        memberships.sort();
        attrs.sort();
        (memberships, attrs)
    }

    #[test]
    fn print_round_trips_modulo_oid_renumbering() {
        let named = parse_instance(SHELTER).expect("parses");
        let printed = print_instance(&named);
        let reparsed = parse_instance(&printed).expect("round-trips");
        assert_eq!(by_name(&reparsed), by_name(&named));
        // And printing is a fixpoint from the first round-trip on.
        assert_eq!(print_instance(&reparsed), printed);
    }

    #[test]
    fn parse_errors_are_informative() {
        for (source, needle) in [
            ("instanc x { }", "`instance`"),
            ("instance x  y => C; }", "`{`"),
            ("instance x { y C; }", "membership"),
            ("instance x { y => C }", "`;`"),
            ("instance x { y --a?--> z; }", "membership"),
        ] {
            let err = parse_instances(source).unwrap_err().to_string();
            assert!(err.contains(needle), "`{source}` → {err}");
        }
    }

    #[test]
    fn render_objects_prefers_names() {
        let named = parse_instance(SHELTER).expect("parses");
        let rex = named.oid("rex").unwrap();
        let stranger = Oid(99);
        let rendered = named.render_objects([&rex, &stranger]);
        assert_eq!(rendered, vec!["#99".to_string(), "rex".to_string()]);
    }
}
