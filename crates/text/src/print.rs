//! Canonical pretty-printing (round-trips through the parser) and an
//! ASCII rendering for terminals.

use std::fmt::Write as _;

use schema_merge_core::{Class, Participation};

use crate::parse::NamedSchema;

fn class_token(class: &Class) -> String {
    // `Class`'s Display already uses the DSL's `{A,B}` / `{A|B}` syntax.
    class.to_string()
}

/// Prints one schema in canonical DSL form. The output parses back to an
/// equal [`NamedSchema`].
pub fn print_schema(doc: &NamedSchema) -> String {
    let mut out = String::new();
    let schema = doc.schema.schema();
    let _ = writeln!(out, "schema {} {{", doc.name);
    for class in schema.classes() {
        let _ = writeln!(out, "    class {};", class_token(class));
    }
    for (sub, sup) in schema.specialization_pairs() {
        let _ = writeln!(out, "    {} => {};", class_token(sub), class_token(sup));
    }
    for (src, label, tgt) in schema.arrow_triples() {
        let marker = match doc.schema.participation(src, label, tgt) {
            Participation::One => "",
            _ => "?",
        };
        let _ = writeln!(
            out,
            "    {} --{label}{marker}--> {};",
            class_token(src),
            class_token(tgt)
        );
    }
    for class in doc.keys.keyed_classes() {
        for key in doc.keys.family(class).minimal_keys() {
            let labels: Vec<String> = key.labels().map(|l| l.to_string()).collect();
            let _ = writeln!(
                out,
                "    key {} {{{}}};",
                class_token(class),
                labels.join(", ")
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Prints a document of several schemas.
pub fn print_document(docs: &[NamedSchema]) -> String {
    docs.iter().map(print_schema).collect::<Vec<_>>().join("\n")
}

/// A compact ASCII rendering: one block per class with its
/// generalizations and attributes — the terminal stand-in for the
/// prototype's graphical schema display.
pub fn render_ascii(doc: &NamedSchema) -> String {
    let schema = doc.schema.schema();
    let mut out = String::new();
    let _ = writeln!(out, "== schema {} ==", doc.name);
    for class in schema.classes() {
        let _ = write!(out, "{class}");
        let supers = schema.strict_supers(class);
        if !supers.is_empty() {
            let names: Vec<String> = supers.iter().map(|c| c.to_string()).collect();
            let _ = write!(out, " => {}", names.join(", "));
        }
        let _ = writeln!(out);
        for label in schema.labels_of(class) {
            let targets = schema.arrow_targets(class, &label);
            let minimal = schema.min_s(&targets);
            for target in minimal {
                let marker = match doc.schema.participation(class, &label, &target) {
                    Participation::One => "",
                    _ => "?",
                };
                let _ = writeln!(out, "  .{label}{marker} : {target}");
            }
        }
        let family = doc.keys.family(class);
        if !family.is_none() {
            let _ = writeln!(out, "  keys {family}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_document, parse_schema};

    const DOGS: &str = "schema Dogs {\n\
        Guide-dog => Dog;\n\
        Dog --age--> int;\n\
        Lives --occ?--> Dog;\n\
        key Dog {age};\n\
        }";

    #[test]
    fn print_parse_round_trip() {
        let doc = parse_schema(DOGS).unwrap();
        let printed = print_schema(&doc);
        let reparsed = parse_schema(&printed).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn round_trip_with_implicit_classes() {
        let doc = parse_schema(
            "schema S { {B1,B2} => B1; {B1,B2} => B2; C --a--> {B1,B2}; class {X|Y}; }",
        )
        .unwrap();
        let printed = print_schema(&doc);
        assert!(printed.contains("{B1,B2}"));
        assert!(printed.contains("{X|Y}"));
        assert_eq!(parse_schema(&printed).unwrap(), doc);
    }

    #[test]
    fn document_round_trip() {
        let docs = parse_document("schema A { class X; }\nschema B { Y --f--> Z; }").unwrap();
        let printed = print_document(&docs);
        assert_eq!(parse_document(&printed).unwrap(), docs);
    }

    #[test]
    fn ascii_rendering_mentions_structure() {
        let doc = parse_schema(DOGS).unwrap();
        let text = render_ascii(&doc);
        assert!(text.contains("== schema Dogs =="));
        assert!(text.contains("Guide-dog => Dog"));
        assert!(text.contains(".age : int"));
        assert!(text.contains(".occ? : Dog"));
        assert!(text.contains("keys {{age}}"));
    }

    #[test]
    fn printing_is_deterministic() {
        let doc = parse_schema(DOGS).unwrap();
        assert_eq!(print_schema(&doc), print_schema(&doc));
    }
}
