//! Graphviz DOT export — the stand-in for the prototype's graphical
//! interface (§1, §7).
//!
//! Solid labelled edges are arrows, dashed unlabelled edges are
//! specializations (drawn sub → sup like the paper's double arrows).
//! Implicit classes render as dashed boxes (meet) or dashed diamonds
//! (union); optional arrows are drawn grey with a `?` suffix.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use schema_merge_core::{Class, Participation};

use crate::parse::NamedSchema;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Draw only the transitive reduction of the specialization order
    /// (default true — the closure clutters the picture).
    pub reduce_specializations: bool,
    /// Draw only minimal arrow targets (default true, mirroring the
    /// paper's figures which omit derivable edges).
    pub reduce_arrows: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            reduce_specializations: true,
            reduce_arrows: true,
        }
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a schema as a Graphviz digraph.
pub fn to_dot(doc: &NamedSchema, options: &DotOptions) -> String {
    let schema = doc.schema.schema();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&doc.name));
    let _ = writeln!(out, "    rankdir=BT;");
    let _ = writeln!(out, "    node [shape=box, fontname=\"Helvetica\"];");

    // Stable node ids.
    let ids: BTreeMap<&Class, String> = schema
        .classes()
        .enumerate()
        .map(|(i, class)| (class, format!("n{i}")))
        .collect();

    for (class, id) in &ids {
        let label = escape(&class.to_string());
        let style = match class {
            Class::Named(_) => String::new(),
            Class::Implicit(_) => ", style=dashed".to_string(),
            Class::ImplicitUnion(_) => ", style=dashed, shape=diamond".to_string(),
        };
        let keys = doc.keys.family(class);
        let tooltip = if keys.is_none() {
            String::new()
        } else {
            format!(", tooltip=\"keys {}\"", escape(&keys.to_string()))
        };
        let _ = writeln!(out, "    {id} [label=\"{label}\"{style}{tooltip}];");
    }

    for (sub, sup) in schema.specialization_pairs() {
        if options.reduce_specializations {
            let covered = schema
                .strict_supers(sub)
                .iter()
                .any(|mid| mid != sup && schema.specializes(mid, sup));
            if covered {
                continue;
            }
        }
        let _ = writeln!(
            out,
            "    {} -> {} [style=dashed, arrowhead=onormal];",
            ids[sub], ids[sup]
        );
    }

    for (src, label, tgt) in schema.arrow_triples() {
        if options.reduce_arrows {
            let derivable_from_super = schema
                .strict_supers(src)
                .iter()
                .any(|sup| schema.has_arrow(sup, label, tgt));
            let tighter = schema
                .arrow_targets(src, label)
                .iter()
                .any(|other| other != tgt && schema.specializes(other, tgt));
            if derivable_from_super || tighter {
                continue;
            }
        }
        let optional = doc.schema.participation(src, label, tgt) != Participation::One;
        let suffix = if optional { "?" } else { "" };
        let color = if optional {
            ", color=gray50, fontcolor=gray50"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {} -> {} [label=\"{}{suffix}\"{color}];",
            ids[src],
            ids[tgt],
            escape(label.as_str())
        );
    }

    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_schema;

    fn dogs() -> NamedSchema {
        parse_schema(
            "schema Dogs {\n\
             Guide-dog => Dog;\n\
             Dog --age--> int;\n\
             Lives --occ?--> Dog;\n\
             C --a--> {B1,B2};\n\
             {B1,B2} => B1;\n\
             {B1,B2} => B2;\n\
             key Dog {age};\n\
             }",
        )
        .unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&dogs(), &DotOptions::default());
        assert!(dot.starts_with("digraph \"Dogs\""));
        assert!(dot.contains("label=\"Dog\""));
        assert!(dot.contains("label=\"{B1,B2}\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"age\""));
        assert!(dot.contains("label=\"occ?\""), "optional arrows are marked");
        assert!(dot.contains("tooltip=\"keys"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn reduction_omits_derivable_edges() {
        let reduced = to_dot(&dogs(), &DotOptions::default());
        let full = to_dot(
            &dogs(),
            &DotOptions {
                reduce_specializations: false,
                reduce_arrows: false,
            },
        );
        // Guide-dog's inherited age arrow appears only unreduced.
        assert!(full.matches("label=\"age\"").count() > reduced.matches("label=\"age\"").count());
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn deterministic_output() {
        let a = to_dot(&dogs(), &DotOptions::default());
        let b = to_dot(&dogs(), &DotOptions::default());
        assert_eq!(a, b);
    }
}
