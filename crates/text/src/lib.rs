//! # schema-merge-text
//!
//! The user-facing surface of the prototype (§1, §7): a textual schema
//! DSL with a hand-written lexer/parser, a canonical pretty-printer that
//! round-trips, and Graphviz/ASCII renderers standing in for the paper's
//! graphical interface.
//!
//! ```text
//! schema Dogs {
//!     class Kennel;
//!     Guide-dog => Dog;
//!     Dog --age--> int;
//!     Lives --occ?--> Dog;        // optional arrow (participation 0/1)
//!     key Dog {license};
//! }
//! ```
//!
//! Implicit classes print and parse as their origin sets: `{C,D}` (meet,
//! §4.2) and `{C|D}` (union, §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod instance;
pub mod parse;
pub mod print;
pub mod protocol;
pub mod token;

pub use dot::{to_dot, DotOptions};
pub use instance::{parse_instance, parse_instances, print_instance, NamedInstance};
pub use parse::{parse_document, parse_schema, NamedSchema, ParseError};
pub use print::{print_document, print_schema, render_ascii};
pub use protocol::{
    encode_block, parse_status_line, status_line, BlockCollector, Command, ProtocolError, Status,
};
