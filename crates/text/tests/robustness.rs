//! Parser robustness: arbitrary input never panics, and every failure
//! carries a usable diagnostic. Valid-ish fragments exercise error
//! recovery positions.

use proptest::prelude::*;

use schema_merge_text::{parse_document, ParseError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_input_never_panics(input in ".{0,200}") {
        // Any outcome is fine; panicking is not.
        let _ = parse_document(&input);
    }

    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("schema".to_string()),
                Just("class".to_string()),
                Just("key".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just(",".to_string()),
                Just("|".to_string()),
                Just("=>".to_string()),
                Just("--a-->".to_string()),
                Just("--x?-->".to_string()),
                Just("Dog".to_string()),
                Just("int".to_string()),
            ],
            0..30,
        )
    ) {
        let input = tokens.join(" ");
        match parse_document(&input) {
            Ok(docs) => {
                // Whatever parsed must print-parse round-trip.
                let printed = schema_merge_text::print_document(&docs);
                prop_assert_eq!(parse_document(&printed).expect("round trip"), docs);
            }
            Err(err) => {
                // Diagnostics always render.
                prop_assert!(!err.to_string().is_empty());
            }
        }
    }
}

#[test]
fn diagnostics_name_the_missing_piece() {
    let cases = [
        ("schema", "a schema name"),
        ("schema S", "`{`"),
        ("schema S { class", "a class name"),
        ("schema S { Dog --a--> }", "class"),
        ("schema S { key Dog }", "`{`"),
        ("schema S { Dog => Dog;", "a schema item or `}`"),
    ];
    for (input, expected) in cases {
        let err = parse_document(input).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains(expected),
            "{input:?} should mention {expected:?}, got: {message}"
        );
    }
}

#[test]
fn deep_nesting_in_class_literals_is_handled() {
    // The parser reads nested origin literals only through names (the
    // lexer treats `{` as structure), so this is a parse error, not a
    // crash.
    let result = parse_document("schema S { class {A,{B,C}}; }");
    assert!(result.is_err());
}

#[test]
fn long_inputs_parse_in_reasonable_time() {
    let mut source = String::from("schema Big {\n");
    for i in 0..2000 {
        source.push_str(&format!("C{} --f--> D{};\n", i, i % 97));
    }
    source.push('}');
    let docs = parse_document(&source).unwrap();
    assert_eq!(docs[0].schema.schema().num_arrows(), 2000);
}

#[test]
fn error_type_is_structured() {
    match parse_document("schema S { A => B; B => A; }").unwrap_err() {
        ParseError::Invalid { schema, .. } => assert_eq!(schema, "S"),
        other => panic!("expected Invalid, got {other:?}"),
    }
}
