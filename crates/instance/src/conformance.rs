//! Conformance of instances to schemas.
//!
//! The graph model's meaning (§2): `p --a--> q` says every instance of
//! `p` has an `a`-attribute in `q`; `p ⇒ q` says every instance of `p` is
//! an instance of `q`. For proper schemas it suffices to check each
//! *canonical* arrow — the W2-derived arrows to supertargets follow from
//! extent monotonicity. Participation constraints (§6) weaken or drop the
//! "must have" part; keys (§5) forbid distinct objects agreeing on a key.

use std::fmt;

use schema_merge_core::lower::AnnotatedSchema;
use schema_merge_core::{Class, KeyAssignment, Label, Participation, ProperSchema};

use crate::instance::{Instance, Oid};

/// Why an instance fails to conform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConformanceError {
    /// `sub ⇒ sup` but some object of `sub`'s extent is missing from
    /// `sup`'s.
    ExtentNotContained {
        /// The specialization source.
        sub: Class,
        /// The specialization target.
        sup: Class,
        /// The escaping object.
        object: Oid,
    },
    /// An object lacks a required attribute.
    MissingAttribute {
        /// The object.
        object: Oid,
        /// Its class.
        class: Class,
        /// The required attribute.
        label: Label,
    },
    /// An attribute value lies outside the canonical target's extent.
    ValueOutsideTarget {
        /// The object.
        object: Oid,
        /// Its class.
        class: Class,
        /// The attribute.
        label: Label,
        /// The canonical target class.
        target: Class,
        /// The offending value.
        value: Oid,
    },
    /// Two distinct objects agree on a key.
    KeyViolation {
        /// The keyed class.
        class: Class,
        /// The first object.
        left: Oid,
        /// The second object.
        right: Oid,
    },
    /// An object carries an attribute that no arrow of any of its
    /// classes sanctions (§6: absent arrows have participation `0` —
    /// "an instance of p may not have an a-arrow").
    UnsanctionedAttribute {
        /// The object.
        object: Oid,
        /// The unsanctioned attribute.
        label: Label,
        /// Its value.
        value: Oid,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::ExtentNotContained { sub, sup, object } => {
                write!(
                    f,
                    "{object} is in extent({sub}) but not extent({sup}) despite {sub} => {sup}"
                )
            }
            ConformanceError::MissingAttribute {
                object,
                class,
                label,
            } => write!(f, "{object} : {class} lacks required attribute {label}"),
            ConformanceError::ValueOutsideTarget {
                object,
                class,
                label,
                target,
                value,
            } => write!(
                f,
                "{object} : {class} has {label} = {value}, which is outside extent({target})"
            ),
            ConformanceError::KeyViolation { class, left, right } => {
                write!(f, "{left} and {right} agree on a key of {class}")
            }
            ConformanceError::UnsanctionedAttribute {
                object,
                label,
                value,
            } => {
                write!(
                    f,
                    "{object} has {label} = {value}, but no arrow of any of its classes \
                     sanctions a {label}-attribute"
                )
            }
        }
    }
}

impl std::error::Error for ConformanceError {}

impl Instance {
    /// Checks conformance to a proper schema: extent containment along
    /// `⇒` and, for every canonical arrow `p ·a⇀ q`, a defined `a`-value
    /// inside `extent(q)` for every object of `extent(p)`.
    pub fn conforms(&self, schema: &ProperSchema) -> Result<(), ConformanceError> {
        self.check_extents(schema.as_weak())?;
        for (class, label, target) in schema.canonical_arrows() {
            for object in self.extent(class) {
                match self.attr(object, label) {
                    None => {
                        return Err(ConformanceError::MissingAttribute {
                            object,
                            class: class.clone(),
                            label: label.clone(),
                        })
                    }
                    Some(value) => {
                        if !self.in_extent(target, value) {
                            return Err(ConformanceError::ValueOutsideTarget {
                                object,
                                class: class.clone(),
                                label: label.clone(),
                                target: target.clone(),
                                value,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks conformance to an annotated proper schema (§6):
    ///
    /// * **requirement** — for each canonical arrow `p ·a⇀ q` with
    ///   participation `1`, every object of `extent(p)` has a defined
    ///   `a`-value inside `extent(q)`;
    /// * **justification** — every *present* attribute `o.a = v` must be
    ///   sanctioned by some arrow `p --a--> q` of the schema with
    ///   `o ∈ extent(p)` and `v ∈ extent(q)`. Absent arrows have
    ///   participation `0` ("may not have", §6), so an attribute no
    ///   class of `o` sanctions is a violation.
    ///
    /// Justification is per-object, not per-class: when the lower merge
    /// drops a specialization edge, an object may sit in two extents of
    /// which only one carries the arrow (e.g. `o ∈ A ∩ C` where `A ⇒ C`
    /// held in the member schema but not in the merge, and only `A` has
    /// the `a`-arrow). Demanding that *every* class of `o` with an
    /// `a`-arrow types the value would wrongly reject such member
    /// instances — §6 promises they remain instances of the merge.
    pub fn conforms_annotated(
        &self,
        annotated: &AnnotatedSchema,
        proper: &ProperSchema,
    ) -> Result<(), ConformanceError> {
        self.check_extents(proper.as_weak())?;

        // Requirement side.
        for (class, label, target) in proper.canonical_arrows() {
            if annotated.participation(class, label, target) != Participation::One {
                continue;
            }
            for object in self.extent(class) {
                match self.attr(object, label) {
                    None => {
                        return Err(ConformanceError::MissingAttribute {
                            object,
                            class: class.clone(),
                            label: label.clone(),
                        })
                    }
                    Some(value) => {
                        if !self.in_extent(target, value) {
                            return Err(ConformanceError::ValueOutsideTarget {
                                object,
                                class: class.clone(),
                                label: label.clone(),
                                target: target.clone(),
                                value,
                            });
                        }
                    }
                }
            }
        }

        // Justification side.
        let weak = proper.as_weak();
        for ((object, label), value) in &self.attrs {
            let sanctioned = self.classes_of(*object).iter().any(|class| {
                weak.arrow_targets(class, label)
                    .iter()
                    .any(|target| self.in_extent(target, *value))
            });
            if !sanctioned {
                return Err(ConformanceError::UnsanctionedAttribute {
                    object: *object,
                    label: label.clone(),
                    value: *value,
                });
            }
        }
        Ok(())
    }

    /// Checks the key semantics of §5: two objects in a keyed class's
    /// extent that are defined and equal on every label of some key must
    /// be the same object. Objects missing any key attribute never match.
    pub fn satisfies_keys(&self, keys: &KeyAssignment) -> Result<(), ConformanceError> {
        for class in keys.keyed_classes() {
            let family = keys.family(class);
            let extent: Vec<Oid> = self.extent(class).into_iter().collect();
            for key in family.minimal_keys() {
                for (i, &left) in extent.iter().enumerate() {
                    for &right in &extent[i + 1..] {
                        let agree = key.labels().all(|label| {
                            match (self.attr(left, label), self.attr(right, label)) {
                                (Some(a), Some(b)) => a == b,
                                _ => false,
                            }
                        });
                        // The empty key vacuously identifies everything.
                        if agree || key.is_empty() {
                            return Err(ConformanceError::KeyViolation {
                                class: class.clone(),
                                left,
                                right,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn check_extents(
        &self,
        schema: &schema_merge_core::WeakSchema,
    ) -> Result<(), ConformanceError> {
        for (sub, sup) in schema.specialization_pairs() {
            for object in self.extent(sub) {
                if !self.in_extent(sup, object) {
                    return Err(ConformanceError::ExtentNotContained {
                        sub: sub.clone(),
                        sup: sup.clone(),
                        object,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::{complete, KeySet, WeakSchema};

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn dog_schema() -> ProperSchema {
        ProperSchema::try_new(
            WeakSchema::builder()
                .specialize("Guide-dog", "Dog")
                .arrow("Dog", "age", "int")
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn conforming_instance_passes() {
        let mut b = Instance::builder();
        let five = b.object(["int"]);
        let rex = b.object(["Dog"]);
        let fido = b.object(["Guide-dog", "Dog"]);
        b.attr(rex, "age", five);
        b.attr(fido, "age", five);
        assert_eq!(b.build().conforms(&dog_schema()), Ok(()));
    }

    #[test]
    fn extent_containment_is_enforced() {
        let mut b = Instance::builder();
        let fido = b.object(["Guide-dog"]); // not in Dog!
        let five = b.object(["int"]);
        b.attr(fido, "age", five);
        let err = b.build().conforms(&dog_schema()).unwrap_err();
        assert!(matches!(err, ConformanceError::ExtentNotContained { .. }));
    }

    #[test]
    fn missing_required_attribute() {
        let mut b = Instance::builder();
        b.object(["Dog"]);
        let err = b.build().conforms(&dog_schema()).unwrap_err();
        assert!(matches!(err, ConformanceError::MissingAttribute { .. }));
    }

    #[test]
    fn value_outside_target() {
        let mut b = Instance::builder();
        let rex = b.object(["Dog"]);
        let bogus = b.object(["text"]);
        b.attr(rex, "age", bogus);
        let err = b.build().conforms(&dog_schema()).unwrap_err();
        assert!(matches!(err, ConformanceError::ValueOutsideTarget { .. }));
    }

    #[test]
    fn implicit_class_conformance_via_populated_extents() {
        // Merge makes C's a-arrow target {B1,B2}; an object with its
        // value in both B1 and B2 conforms once implicit extents are
        // populated.
        let weak = WeakSchema::builder()
            .arrow("C", "a", "B1")
            .arrow("C", "a", "B2")
            .build()
            .unwrap();
        let proper = complete(&weak).unwrap();

        let mut b = Instance::builder();
        let v = b.object(["B1", "B2"]);
        let o = b.object(["C"]);
        b.attr(o, "a", v);
        let instance = b.build().populate_implicit_extents(proper.as_weak());
        assert_eq!(instance.conforms(&proper), Ok(()));

        // A value in only B1 does not conform: the canonical target is
        // the implicit {B1,B2} class.
        let mut b2 = Instance::builder();
        let v1 = b2.object(["B1"]);
        b2.class("B2");
        let o2 = b2.object(["C"]);
        b2.attr(o2, "a", v1);
        let bad = b2.build().populate_implicit_extents(proper.as_weak());
        assert!(bad.conforms(&proper).is_err());
    }

    #[test]
    fn annotated_conformance_optional_attributes() {
        let annotated = AnnotatedSchema::builder()
            .arrow("Dog", "name", "text")
            .optional_arrow("Dog", "chip", "int")
            .build()
            .unwrap();
        let proper = ProperSchema::try_new(annotated.schema().clone()).unwrap();

        let mut b = Instance::builder();
        let n = b.object(["text"]);
        let rex = b.object(["Dog"]);
        b.attr(rex, "name", n);
        // chip omitted: fine, it is optional.
        assert_eq!(b.build().conforms_annotated(&annotated, &proper), Ok(()));

        // But a present chip must be an int: no arrow of Dog sanctions a
        // chip-attribute valued in text.
        let mut b2 = Instance::builder();
        let n2 = b2.object(["text"]);
        let rex2 = b2.object(["Dog"]);
        b2.attr(rex2, "name", n2);
        b2.attr(rex2, "chip", n2);
        assert!(matches!(
            b2.build().conforms_annotated(&annotated, &proper),
            Err(ConformanceError::UnsanctionedAttribute { .. })
        ));

        // The §6 padding scenario: an object in two extents where only
        // one class carries the arrow is sanctioned per-object, not
        // per-class (the lower merge may have dropped the isa edge that
        // related them).
        let annotated2 = AnnotatedSchema::builder()
            .optional_arrow("A", "k", "A")
            .optional_arrow("C", "k", "F")
            .class("F")
            .build()
            .unwrap();
        let proper2 = ProperSchema::try_new(annotated2.schema().clone()).unwrap();
        let mut b4 = Instance::builder();
        b4.class("F");
        let o = b4.object(["A", "C"]);
        let target = b4.object(["A"]);
        b4.attr(o, "k", target);
        assert_eq!(
            b4.build().conforms_annotated(&annotated2, &proper2),
            Ok(()),
            "the A-arrow justifies o.k even though o is also in C"
        );

        // And a missing required name fails.
        let mut b3 = Instance::builder();
        b3.object(["Dog"]);
        assert!(matches!(
            b3.build().conforms_annotated(&annotated, &proper),
            Err(ConformanceError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn key_violation_detection() {
        let mut keys = KeyAssignment::new();
        keys.add_key(c("Person"), KeySet::new(["SS#"]));

        let mut b = Instance::builder();
        let ssn = b.object(["int"]);
        let alice = b.object(["Person"]);
        let alice2 = b.object(["Person"]);
        b.attr(alice, "SS#", ssn);
        b.attr(alice2, "SS#", ssn);
        let err = b.build().satisfies_keys(&keys).unwrap_err();
        assert!(matches!(err, ConformanceError::KeyViolation { .. }));
    }

    #[test]
    fn keys_ignore_objects_missing_the_attribute() {
        let mut keys = KeyAssignment::new();
        keys.add_key(c("Person"), KeySet::new(["SS#"]));

        let mut b = Instance::builder();
        b.object(["Person"]);
        b.object(["Person"]);
        assert_eq!(b.build().satisfies_keys(&keys), Ok(()));
    }

    #[test]
    fn distinct_key_values_pass() {
        let mut keys = KeyAssignment::new();
        keys.add_key(c("Person"), KeySet::new(["SS#"]));

        let mut b = Instance::builder();
        let s1 = b.object(["int"]);
        let s2 = b.object(["int"]);
        let p1 = b.object(["Person"]);
        let p2 = b.object(["Person"]);
        b.attr(p1, "SS#", s1);
        b.attr(p2, "SS#", s2);
        assert_eq!(b.build().satisfies_keys(&keys), Ok(()));
    }

    #[test]
    fn projection_theorem_upper_merge() {
        // An instance of the merged schema projects to an instance of
        // each input (§6 opening).
        let g1 = WeakSchema::builder()
            .arrow("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "text")
            .specialize("Guide-dog", "Dog")
            .build()
            .unwrap();
        let merged = schema_merge_core::Merger::new()
            .schemas([&g1, &g2])
            .execute()
            .unwrap()
            .proper;

        let mut b = Instance::builder();
        let five = b.object(["int"]);
        let n = b.object(["text"]);
        let rex = b.object(["Dog"]);
        let fido = b.object(["Guide-dog", "Dog"]);
        for dog in [rex, fido] {
            b.attr(dog, "age", five);
            b.attr(dog, "name", n);
        }
        let instance = b.build().populate_implicit_extents(merged.as_weak());
        assert_eq!(instance.conforms(&merged), Ok(()));

        for input in [&g1, &g2] {
            let projected = instance.project(input);
            let proper_input = ProperSchema::try_new(input.clone()).unwrap();
            assert_eq!(projected.conforms(&proper_input), Ok(()));
        }
    }
}
