//! # schema-merge-instance
//!
//! Instances of schemas: the semantic basis the paper appeals to when it
//! asks what a merge should *mean* (§1: "This semantic basis should be
//! related to the notion of an instance of a schema").
//!
//! An [`Instance`] assigns each class an extent of objects and each
//! object (partial) attribute values. Conformance is checked against
//! proper schemas ([`Instance::conforms`]), annotated schemas with
//! participation constraints ([`Instance::conforms_annotated`], §6) and
//! key assignments ([`Instance::satisfies_keys`], §5).
//!
//! The two directions of the merge semantics become executable theorems:
//!
//! * **upper merge** — an instance of the merged schema *projects* onto
//!   an instance of every input ([`Instance::project`]);
//! * **lower merge** — the union of instances of the inputs, after
//!   key-driven entity resolution, is an instance of the lower merge
//!   ([`union_instances`], §6; object correspondence by keys, §5 end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod federation;
pub mod generator;
pub mod instance;
pub mod query;
pub mod resolution;

pub use conformance::ConformanceError;
pub use federation::{FederatedView, Federation, Member};
pub use instance::{Instance, InstanceBuilder, Oid};
pub use query::{find_by_key, KeyLookup, PathQuery, Step};
pub use resolution::{union_instances, ResolutionReport};
