//! Path queries over instances — the "user views" of §1 made executable.
//!
//! The paper's motivation is "to provide user views that combine existing
//! databases" (§1). A merged schema is only a view if one can *ask it
//! questions*, so this module gives instances a minimal query language:
//! start from a class extent, then alternate
//!
//! * [`PathQuery::follow`] — map every current object through an
//!   attribute (objects without the attribute drop out; attributes are
//!   functional per D1, so this is a partial map, not a join);
//! * [`PathQuery::restrict`] — keep only objects in another class's
//!   extent (specialization tests, implicit-class membership, …).
//!
//! [`PathQuery::trace`] keeps the association from each starting object
//! to its reachable set, and [`find_by_key`] performs the §5 key lookup
//! ("two objects with the same `SS#` are the same person" — so `SS#`
//! locates a person).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use schema_merge_core::{Class, KeyAssignment, KeySet, Label, WeakSchema};

use crate::instance::{Instance, Oid};

/// One navigation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Replace each object by its `label`-attribute value, dropping
    /// objects that lack one.
    Follow(Label),
    /// Keep only objects in the class's extent.
    Restrict(Class),
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Follow(label) => write!(f, ".{label}"),
            Step::Restrict(class) => write!(f, "[{class}]"),
        }
    }
}

/// A query: a starting class extent and a sequence of steps.
///
/// ```
/// use schema_merge_instance::{Instance, PathQuery};
/// use schema_merge_core::Class;
///
/// let mut b = Instance::builder();
/// let rex = b.object([Class::named("Dog")]);
/// let ann = b.object([Class::named("Person")]);
/// b.attr(rex, "owner", ann);
/// let instance = b.build();
///
/// let owners = PathQuery::extent("Dog").follow("owner").eval(&instance);
/// assert_eq!(owners.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    start: Class,
    steps: Vec<Step>,
}

impl PathQuery {
    /// A query returning the extent of `class`.
    pub fn extent(class: impl Into<Class>) -> Self {
        PathQuery {
            start: class.into(),
            steps: Vec::new(),
        }
    }

    /// Appends a [`Step::Follow`].
    pub fn follow(mut self, label: impl Into<Label>) -> Self {
        self.steps.push(Step::Follow(label.into()));
        self
    }

    /// Appends a [`Step::Restrict`].
    pub fn restrict(mut self, class: impl Into<Class>) -> Self {
        self.steps.push(Step::Restrict(class.into()));
        self
    }

    /// The starting class.
    pub fn start(&self) -> &Class {
        &self.start
    }

    /// The navigation steps, in order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Evaluates to the set of objects reachable at the end of the path.
    pub fn eval(&self, instance: &Instance) -> BTreeSet<Oid> {
        let mut current = instance.extent(&self.start);
        for step in &self.steps {
            current = apply(instance, &current, step);
        }
        current
    }

    /// Evaluates the query in *schema space*: instead of walking object
    /// attributes, walks the schema's closed arrow relation, answering
    /// "which classes can this path reach in the merged view".
    ///
    /// The starting extent is the class together with everything
    /// specializing it (the classes whose objects would populate the
    /// extent); [`Step::Follow`] maps each class to the *minimal* targets
    /// of its labelled arrows (the canonical answers — W2 would otherwise
    /// drag in every generalization); [`Step::Restrict`] keeps classes
    /// specializing the restriction, so implicit-class restrictions like
    /// `[{A,B}]` work over merged schemas. This is how the registry
    /// daemon serves `QUERY` against the canonical merged schema without
    /// holding any instance data.
    pub fn eval_classes(&self, schema: &WeakSchema) -> BTreeSet<Class> {
        let mut current: BTreeSet<Class> = if schema.contains_class(&self.start) {
            let mut extent = schema.strict_subs(&self.start);
            extent.insert(self.start.clone());
            extent
        } else {
            BTreeSet::new()
        };
        for step in &self.steps {
            current = match step {
                Step::Follow(label) => {
                    let mut reached = BTreeSet::new();
                    for class in &current {
                        reached.extend(schema.min_s(&schema.arrow_targets(class, label)));
                    }
                    reached
                }
                Step::Restrict(class) => current
                    .into_iter()
                    .filter(|member| schema.specializes(member, class))
                    .collect(),
            };
        }
        current
    }

    /// Evaluates keeping provenance: each starting object maps to the
    /// set (∅ or a singleton, unless a `restrict` empties it) of objects
    /// it reaches. Objects whose path dies are retained with an empty
    /// image, so callers can distinguish "no dogs" from "dogs without
    /// owners".
    pub fn trace(&self, instance: &Instance) -> BTreeMap<Oid, BTreeSet<Oid>> {
        let mut out = BTreeMap::new();
        for origin in instance.extent(&self.start) {
            let mut current: BTreeSet<Oid> = [origin].into();
            for step in &self.steps {
                current = apply(instance, &current, step);
            }
            out.insert(origin, current);
        }
        out
    }
}

fn apply(instance: &Instance, current: &BTreeSet<Oid>, step: &Step) -> BTreeSet<Oid> {
    match step {
        Step::Follow(label) => current
            .iter()
            .filter_map(|&oid| instance.attr(oid, label))
            .collect(),
        Step::Restrict(class) => {
            let extent = instance.extent(class);
            current.intersection(&extent).copied().collect()
        }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)?;
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

/// Finds the objects of `class` whose attributes match every `(label,
/// value)` pair. When the pairs cover a key of `class` under `keys`, §5
/// guarantees at most one object in a key-satisfying instance — the
/// lookup is then a *dereference*. Returns the matches either way (an
/// instance that violates its keys can yield several).
pub fn find_by_key(
    instance: &Instance,
    class: &Class,
    pairs: &[(Label, Oid)],
    keys: &KeyAssignment,
) -> KeyLookup {
    let matches: BTreeSet<Oid> = instance
        .extent(class)
        .into_iter()
        .filter(|&oid| {
            pairs
                .iter()
                .all(|(label, value)| instance.attr(oid, label) == Some(*value))
        })
        .collect();
    let labels = KeySet::new(pairs.iter().map(|(label, _)| label.clone()));
    let covers_key = keys.family(class).is_superkey(&labels);
    KeyLookup {
        matches,
        covers_key,
    }
}

/// The result of [`find_by_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyLookup {
    /// Objects matching all the given attribute values.
    pub matches: BTreeSet<Oid>,
    /// Whether the looked-up labels form a (super)key of the class, i.e.
    /// whether §5 promises uniqueness.
    pub covers_key: bool,
}

impl KeyLookup {
    /// The unique match, if the labels covered a key and exactly one
    /// object matched.
    pub fn unique(&self) -> Option<Oid> {
        if self.covers_key && self.matches.len() == 1 {
            self.matches.iter().next().copied()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// Two dogs, one owned; owner lives in a kennel. Plus a cat.
    fn menagerie() -> (Instance, Oid, Oid, Oid, Oid) {
        let mut b = Instance::builder();
        let rex = b.object([c("Dog"), c("Guide-dog")]);
        let fido = b.object([c("Dog")]);
        let ann = b.object([c("Person")]);
        let hut = b.object([c("Kennel")]);
        let cat = b.object([c("Cat")]);
        b.attr(rex, "owner", ann);
        b.attr(ann, "home", hut);
        b.attr(cat, "owner", ann);
        let instance = b.build();
        (instance, rex, fido, ann, hut)
    }

    #[test]
    fn extent_query() {
        let (instance, rex, fido, ..) = menagerie();
        let dogs = PathQuery::extent("Dog").eval(&instance);
        assert_eq!(dogs, [rex, fido].into());
    }

    #[test]
    fn follow_drops_objects_without_the_attribute() {
        let (instance, _, _, ann, _) = menagerie();
        let owners = PathQuery::extent("Dog").follow("owner").eval(&instance);
        assert_eq!(owners, [ann].into(), "fido has no owner");
    }

    #[test]
    fn multi_step_path() {
        let (instance, _, _, _, hut) = menagerie();
        let homes = PathQuery::extent("Dog")
            .follow("owner")
            .follow("home")
            .eval(&instance);
        assert_eq!(homes, [hut].into());
    }

    #[test]
    fn restrict_to_subclass() {
        let (instance, rex, ..) = menagerie();
        let guide_dogs = PathQuery::extent("Dog")
            .restrict(c("Guide-dog"))
            .eval(&instance);
        assert_eq!(guide_dogs, [rex].into());
    }

    #[test]
    fn restrict_to_disjoint_class_is_empty() {
        let (instance, ..) = menagerie();
        let none = PathQuery::extent("Dog").restrict(c("Cat")).eval(&instance);
        assert!(none.is_empty());
    }

    #[test]
    fn missing_class_yields_empty() {
        let (instance, ..) = menagerie();
        assert!(PathQuery::extent("Unicorn").eval(&instance).is_empty());
        assert!(PathQuery::extent("Unicorn")
            .follow("horn")
            .eval(&instance)
            .is_empty());
    }

    #[test]
    fn trace_keeps_provenance() {
        let (instance, rex, fido, ann, _) = menagerie();
        let traced = PathQuery::extent("Dog").follow("owner").trace(&instance);
        assert_eq!(traced[&rex], [ann].into());
        assert!(traced[&fido].is_empty(), "fido's path dies but is reported");
    }

    #[test]
    fn schema_space_extent_includes_specializations() {
        let schema = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Dog", "owner", "Person")
            .build()
            .unwrap();
        let dogs = PathQuery::extent("Dog").eval_classes(&schema);
        assert_eq!(dogs, [c("Dog"), c("Guide-dog")].into());
        assert!(PathQuery::extent("Unicorn")
            .eval_classes(&schema)
            .is_empty());
    }

    #[test]
    fn schema_space_follow_takes_minimal_targets() {
        // W2 closes `owner` targets upward to Agent; the canonical answer
        // is the minimal class Person.
        let schema = WeakSchema::builder()
            .specialize("Person", "Agent")
            .arrow("Dog", "owner", "Person")
            .build()
            .unwrap();
        let owners = PathQuery::extent("Dog")
            .follow("owner")
            .eval_classes(&schema);
        assert_eq!(owners, [c("Person")].into());
    }

    #[test]
    fn schema_space_restrict_uses_specialization() {
        let schema = WeakSchema::builder()
            .specialize("Guide-dog", "Dog")
            .arrow("Kennel", "houses", "Guide-dog")
            .arrow("Kennel", "houses", "Cat")
            .build()
            .unwrap();
        let housed_dogs = PathQuery::extent("Kennel")
            .follow("houses")
            .restrict(c("Dog"))
            .eval_classes(&schema);
        assert_eq!(housed_dogs, [c("Guide-dog")].into());
    }

    #[test]
    fn query_displays_as_a_path() {
        let q = PathQuery::extent("Dog")
            .follow("owner")
            .restrict(c("Person"))
            .follow("home");
        assert_eq!(q.to_string(), "Dog.owner[Person].home");
        assert_eq!(q.start(), &c("Dog"));
        assert_eq!(q.steps().len(), 3);
    }

    #[test]
    fn key_lookup_dereferences() {
        let mut b = Instance::builder();
        let ssn1 = b.object([c("int")]);
        let ssn2 = b.object([c("int")]);
        let p1 = b.object([c("Person")]);
        let p2 = b.object([c("Person")]);
        b.attr(p1, "SS#", ssn1);
        b.attr(p2, "SS#", ssn2);
        let instance = b.build();

        let mut keys = KeyAssignment::default();
        keys.add_key(c("Person"), KeySet::new([l("SS#")]));

        let hit = find_by_key(&instance, &c("Person"), &[(l("SS#"), ssn1)], &keys);
        assert!(hit.covers_key);
        assert_eq!(hit.unique(), Some(p1));

        let miss = find_by_key(&instance, &c("Person"), &[(l("SS#"), Oid(999))], &keys);
        assert!(miss.matches.is_empty());
        assert_eq!(miss.unique(), None);
    }

    #[test]
    fn non_key_lookup_reports_no_uniqueness_promise() {
        let mut b = Instance::builder();
        let blond = b.object([c("colour")]);
        let p1 = b.object([c("Person")]);
        let p2 = b.object([c("Person")]);
        b.attr(p1, "hair", blond);
        b.attr(p2, "hair", blond);
        let instance = b.build();

        let keys = KeyAssignment::default();
        let hit = find_by_key(&instance, &c("Person"), &[(l("hair"), blond)], &keys);
        assert!(!hit.covers_key);
        assert_eq!(hit.matches.len(), 2);
        assert_eq!(hit.unique(), None, "two matches and no key promise");
    }

    #[test]
    fn superkey_lookup_counts_as_key() {
        let mut b = Instance::builder();
        let ssn = b.object([c("int")]);
        let name = b.object([c("string")]);
        let p = b.object([c("Person")]);
        b.attr(p, "SS#", ssn);
        b.attr(p, "name", name);
        let instance = b.build();

        let mut keys = KeyAssignment::default();
        keys.add_key(c("Person"), KeySet::new([l("SS#")]));
        let family = keys.family(&c("Person"));
        assert!(family.is_superkey(&KeySet::new([l("SS#"), l("name")])));

        let hit = find_by_key(
            &instance,
            &c("Person"),
            &[(l("SS#"), ssn), (l("name"), name)],
            &keys,
        );
        assert!(hit.covers_key);
        assert_eq!(hit.unique(), Some(p));
    }
}
