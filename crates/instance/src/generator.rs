//! Deterministic conforming-instance generation for proper schemas.
//!
//! Used by integration tests and the benchmark harness to exercise the
//! semantic theorems at scale. A tiny xorshift PRNG keeps the crate
//! dependency-free while staying seed-reproducible.

use schema_merge_core::{Class, ProperSchema};

use crate::instance::{Instance, Oid};

/// A minimal xorshift64* generator — deterministic and dependency-free.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (a zero seed is bumped to a constant).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Generates an instance conforming to `proper` with `per_class` objects
/// whose *primary* class is each schema class.
///
/// Each object joins its primary class's extent and every superclass's
/// (extent containment). Its attribute values are drawn from the extent
/// of the primary class's canonical targets; D2 guarantees those values
/// also satisfy every superclass's arrows.
pub fn conforming_instance(proper: &ProperSchema, per_class: usize, seed: u64) -> Instance {
    let mut rng = XorShift::new(seed);
    let mut builder = Instance::builder();

    // Pass 1: allocate objects.
    let mut primaries: Vec<(Class, Vec<Oid>)> = Vec::new();
    for class in proper.classes() {
        let mut members = Vec::with_capacity(per_class);
        for _ in 0..per_class {
            let mut classes: Vec<Class> = vec![class.clone()];
            classes.extend(proper.strict_supers(class));
            members.push(builder.object(classes));
        }
        primaries.push((class.clone(), members));
    }
    let snapshot = builder.build();

    // Pass 2: assign attribute values from canonical-target extents.
    for (class, members) in &primaries {
        let labels = proper.labels_of(class);
        for label in labels {
            let target = proper
                .canonical_target(class, &label)
                .expect("proper schemas have canonical targets")
                .clone();
            let pool: Vec<Oid> = snapshot.extent(&target).into_iter().collect();
            debug_assert!(!pool.is_empty() || per_class == 0);
            for &member in members {
                if pool.is_empty() {
                    continue;
                }
                let value = pool[rng.below(pool.len())];
                builder.attr(member, label.clone(), value);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::WeakSchema;

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut zero = XorShift::new(0);
        let _ = zero.next_u64(); // must not loop at zero
    }

    fn sample_schema() -> ProperSchema {
        ProperSchema::try_new(
            WeakSchema::builder()
                .specialize("Guide-dog", "Dog")
                .arrow("Dog", "age", "int")
                .arrow("Dog", "home", "Kennel")
                .arrow("Kennel", "addr", "place")
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn generated_instances_conform() {
        let proper = sample_schema();
        for seed in [1, 7, 99] {
            let instance = conforming_instance(&proper, 3, seed);
            assert_eq!(instance.conforms(&proper), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let proper = sample_schema();
        assert_eq!(
            conforming_instance(&proper, 2, 5),
            conforming_instance(&proper, 2, 5)
        );
    }

    #[test]
    fn subclass_objects_satisfy_inherited_arrows() {
        let proper = sample_schema();
        let instance = conforming_instance(&proper, 1, 3);
        let guide = Class::named("Guide-dog");
        for oid in instance.extent(&guide) {
            assert!(instance
                .attr(oid, &schema_merge_core::Label::new("age"))
                .is_some());
        }
    }

    #[test]
    fn cyclic_schemas_are_handled() {
        // Person --spouse--> Person: objects can reference each other.
        let proper = ProperSchema::try_new(
            WeakSchema::builder()
                .arrow("Person", "spouse", "Person")
                .build()
                .unwrap(),
        )
        .unwrap();
        let instance = conforming_instance(&proper, 4, 11);
        assert_eq!(instance.conforms(&proper), Ok(()));
    }

    #[test]
    fn zero_objects_is_a_valid_empty_instance() {
        let proper = sample_schema();
        let instance = conforming_instance(&proper, 0, 1);
        assert_eq!(instance.conforms(&proper), Ok(()));
    }
}
