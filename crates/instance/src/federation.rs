//! Federated databases over lower merges (§6).
//!
//! "This kind of merge is likely to arise in, for example, the
//! formulation of federated database systems" (§6): each member database
//! keeps its own schema and data; the federation's view schema is the
//! *greatest lower bound* of the member schemas, so that
//!
//! 1. every member instance is already an instance of the view, and
//! 2. the *union* of the member instances — coalesced by the shared key
//!    assignment (§5 end) — is an instance of the view too.
//!
//! [`Federation`] packages the § 6 pipeline: collect members, lower-merge
//! their annotated schemas, complete the result (union classes above
//! disagreeing targets), union the instances with entity resolution, and
//! expose the outcome as a queryable [`FederatedView`]. Both guarantees
//! above are checked by [`FederatedView::check`], and exercised as
//! properties in this crate's tests.

use std::collections::BTreeSet;
use std::fmt;

use schema_merge_core::{
    lower_complete, lower_merge, AnnotatedSchema, KeyAssignment, LowerCompletionReport,
    ProperSchema, SchemaError,
};

use crate::conformance::ConformanceError;
use crate::instance::{Instance, Oid};
use crate::query::PathQuery;
use crate::resolution::{union_instances, ResolutionReport};

/// One member database of a federation.
#[derive(Debug, Clone)]
pub struct Member {
    /// A display name for reports ("branch-office", "legacy-crm", …).
    pub name: String,
    /// The member's schema with participation annotations. Plain schemas
    /// enter via [`AnnotatedSchema::all_required`].
    pub schema: AnnotatedSchema,
    /// The member's data.
    pub instance: Instance,
}

/// A collection of member databases sharing a key assignment.
#[derive(Debug, Clone, Default)]
pub struct Federation {
    members: Vec<Member>,
    keys: KeyAssignment,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Sets the shared key assignment used for entity resolution (§5
    /// end: keys "determine when an object in the extent of a class in an
    /// instance of one schema corresponds to an object … in an instance
    /// of another schema").
    pub fn with_keys(mut self, keys: KeyAssignment) -> Self {
        self.keys = keys;
        self
    }

    /// Adds a member database.
    pub fn member(
        mut self,
        name: impl Into<String>,
        schema: AnnotatedSchema,
        instance: Instance,
    ) -> Self {
        self.members.push(Member {
            name: name.into(),
            schema,
            instance,
        });
        self
    }

    /// The members, in insertion order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The shared key assignment.
    pub fn keys(&self) -> &KeyAssignment {
        &self.keys
    }

    /// Builds the federated view: lower-merge the member schemas (§6),
    /// complete with union classes, union the instances under the key
    /// assignment, and populate implicit-class extents.
    pub fn view(&self) -> Result<FederatedView, SchemaError> {
        let merged = lower_merge(self.members.iter().map(|m| &m.schema));
        let (annotated, proper, completion) = lower_complete(&merged)?;
        let instances: Vec<&Instance> = self.members.iter().map(|m| &m.instance).collect();
        let (unioned, resolution) = union_instances(&instances, &self.keys);
        let instance = unioned.populate_implicit_extents(proper.as_weak());
        Ok(FederatedView {
            schema: annotated,
            proper,
            completion,
            instance,
            resolution,
            keys: self.keys.clone(),
        })
    }
}

/// The queryable result of federating the members.
#[derive(Debug, Clone)]
pub struct FederatedView {
    /// The lower-merged schema with participation annotations.
    pub schema: AnnotatedSchema,
    /// Its completion into a proper schema (union classes included).
    pub proper: ProperSchema,
    /// What lower completion introduced.
    pub completion: LowerCompletionReport,
    /// The coalesced instance, with implicit extents populated.
    pub instance: Instance,
    /// Entity-resolution statistics from the union.
    pub resolution: ResolutionReport,
    keys: KeyAssignment,
}

impl FederatedView {
    /// Runs a path query against the coalesced instance.
    pub fn query(&self, query: &PathQuery) -> BTreeSet<Oid> {
        query.eval(&self.instance)
    }

    /// Runs a path query in schema space against the completed federated
    /// schema — "which classes can this path reach", answerable even for
    /// a schema-only federation with no member data (the registry daemon's
    /// `QUERY`). See [`PathQuery::eval_classes`].
    pub fn query_classes(&self, query: &PathQuery) -> BTreeSet<schema_merge_core::Class> {
        query.eval_classes(self.proper.as_weak())
    }

    /// Verifies the §6 guarantee on the view itself: the coalesced union
    /// instance conforms to the lower-merged (annotated, completed)
    /// schema and satisfies the shared keys.
    pub fn check(&self) -> Result<(), ConformanceError> {
        self.instance
            .conforms_annotated(&self.schema, &self.proper)?;
        self.instance.satisfies_keys(&self.keys)
    }

    /// Verifies the other half of the §6 guarantee for one member: the
    /// member's own instance, viewed through the federated schema (with
    /// implicit extents populated), conforms to it.
    pub fn check_member(&self, member: &Member) -> Result<(), ConformanceError> {
        let viewed = member
            .instance
            .populate_implicit_extents(self.proper.as_weak());
        viewed.conforms_annotated(&self.schema, &self.proper)
    }
}

impl fmt::Display for FederatedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "federated view: {} classes ({} union classes), {} objects, {} key + {} congruence \
             identifications",
            self.proper.as_weak().num_classes(),
            self.completion.unions.len(),
            self.instance.objects().len(),
            self.resolution.key_identifications,
            self.resolution.congruence_identifications,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::{Class, KeySet, Label, Participation, WeakSchema};

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// §6's example: one schema has dogs with name and age, the other
    /// dogs with name and breed.
    fn member_schemas() -> (AnnotatedSchema, AnnotatedSchema) {
        let g1 = WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "age", "int")
            .build()
            .expect("valid");
        let g2 = WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "breed", "breed")
            .build()
            .expect("valid");
        (
            AnnotatedSchema::all_required(g1),
            AnnotatedSchema::all_required(g2),
        )
    }

    fn shelter_a() -> (Instance, Oid) {
        let mut b = Instance::builder();
        let n = b.object([c("string")]);
        let a = b.object([c("int")]);
        let rex = b.object([c("Dog")]);
        b.attr(rex, "name", n);
        b.attr(rex, "age", a);
        (b.build(), rex)
    }

    fn shelter_b() -> (Instance, Oid) {
        let mut b = Instance::builder();
        let n = b.object([c("string")]);
        let k = b.object([c("breed")]);
        let fido = b.object([c("Dog")]);
        b.attr(fido, "name", n);
        b.attr(fido, "breed", k);
        (b.build(), fido)
    }

    fn two_shelters() -> Federation {
        let (s1, s2) = member_schemas();
        let (i1, _) = shelter_a();
        let (i2, _) = shelter_b();
        Federation::new()
            .member("shelter-a", s1, i1)
            .member("shelter-b", s2, i2)
    }

    #[test]
    fn view_weakens_disputed_arrows() {
        let view = two_shelters().view().expect("builds");
        let dog = c("Dog");
        let name_target = c("string");
        assert_eq!(
            view.schema.participation(&dog, &l("name"), &name_target),
            Participation::One,
            "both members require name"
        );
        let age_target = c("int");
        assert_eq!(
            view.schema.participation(&dog, &l("age"), &age_target),
            Participation::ZeroOrOne,
            "only one member has age"
        );
    }

    #[test]
    fn union_instance_conforms_to_the_view() {
        let view = two_shelters().view().expect("builds");
        view.check().expect("the §6 guarantee holds");
        assert_eq!(view.query(&PathQuery::extent("Dog")).len(), 2);
    }

    #[test]
    fn each_member_instance_conforms_to_the_view() {
        let federation = two_shelters();
        let view = federation.view().expect("builds");
        for member in federation.members() {
            view.check_member(member)
                .unwrap_or_else(|err| panic!("{} fails: {err}", member.name));
        }
    }

    #[test]
    fn queries_return_the_union_of_member_answers() {
        let federation = two_shelters();
        let view = federation.view().expect("builds");
        let query = PathQuery::extent("Dog").follow("name");
        let federated = view.query(&query);
        let member_total: usize = federation
            .members()
            .iter()
            .map(|m| query.eval(&m.instance).len())
            .sum();
        assert_eq!(federated.len(), member_total, "no keys: disjoint union");
    }

    #[test]
    fn key_resolution_requires_genuinely_shared_values() {
        // Both shelters record a dog named the same, but their name
        // *objects* are distinct oids (disjoint value spaces), so the
        // name key cannot fire: §5 end — without a common key value
        // "there is no way to tell when an object … corresponds".
        let (s1, s2) = member_schemas();

        let mut b = Instance::builder();
        let shared_name = b.object([c("string")]);
        let age = b.object([c("int")]);
        let rex_a = b.object([c("Dog")]);
        b.attr(rex_a, "name", shared_name);
        b.attr(rex_a, "age", age);
        let i1 = b.build();

        let mut b = Instance::builder();
        let shared_name_b = b.object([c("string")]);
        let kind = b.object([c("breed")]);
        let rex_b = b.object([c("Dog")]);
        b.attr(rex_b, "name", shared_name_b);
        b.attr(rex_b, "breed", kind);
        let i2 = b.build();

        let mut keys = KeyAssignment::default();
        keys.add_key(c("Dog"), KeySet::new([l("name")]));

        let fed = Federation::new()
            .with_keys(keys)
            .member("shelter-a", s1, i1)
            .member("shelter-b", s2, i2);
        let view = fed.view().expect("builds");
        assert_eq!(view.query(&PathQuery::extent("Dog")).len(), 2);
        assert_eq!(view.resolution.key_identifications, 0);
    }

    #[test]
    fn key_resolution_with_shared_value_member() {
        // Same as above, but the name values genuinely coincide: member
        // instances are built over a common prefix so the key fires.
        let (s1, s2) = member_schemas();

        // One builder: the union_instances renumbering keeps disjoint
        // instances apart, so to share values we put both dogs in one
        // member and let the key rule identify them.
        let mut b = Instance::builder();
        let name = b.object([c("string")]);
        let age = b.object([c("int")]);
        let kind = b.object([c("breed")]);
        let rex1 = b.object([c("Dog")]);
        b.attr(rex1, "name", name);
        b.attr(rex1, "age", age);
        let rex2 = b.object([c("Dog")]);
        b.attr(rex2, "name", name);
        b.attr(rex2, "breed", kind);
        let i = b.build();

        let mut keys = KeyAssignment::default();
        keys.add_key(c("Dog"), KeySet::new([l("name")]));

        let fed = Federation::new()
            .with_keys(keys)
            .member("combined", s1, i)
            .member("empty", s2, Instance::default());
        let view = fed.view().expect("builds");
        assert_eq!(
            view.query(&PathQuery::extent("Dog")).len(),
            1,
            "the two records coalesce on the shared name"
        );
        assert!(view.resolution.key_identifications >= 1);
        // The coalesced dog carries BOTH age and breed.
        let dogs = view.query(&PathQuery::extent("Dog"));
        let dog = *dogs.iter().next().expect("one dog");
        assert!(view.instance.attr(dog, &l("age")).is_some());
        assert!(view.instance.attr(dog, &l("breed")).is_some());
        view.check().expect("still conforms");
    }

    #[test]
    fn empty_federation_has_an_empty_view() {
        let view = Federation::new().view().expect("builds");
        assert_eq!(view.proper.as_weak().num_classes(), 0);
        assert!(view.instance.objects().is_empty());
        view.check().expect("vacuously conforms");
    }

    #[test]
    fn disagreeing_targets_get_a_union_class() {
        // One member houses dogs in kennels, the other in houses: the
        // lower merge keeps `home` but its target generalizes to the
        // union class {House|Kennel}.
        let g1 = AnnotatedSchema::all_required(
            WeakSchema::builder()
                .arrow("Dog", "home", "Kennel")
                .build()
                .expect("valid"),
        );
        let g2 = AnnotatedSchema::all_required(
            WeakSchema::builder()
                .arrow("Dog", "home", "House")
                .build()
                .expect("valid"),
        );

        let mut b = Instance::builder();
        let hut = b.object([c("Kennel")]);
        let rex = b.object([c("Dog")]);
        b.attr(rex, "home", hut);
        let i1 = b.build();

        let mut b = Instance::builder();
        let villa = b.object([c("House")]);
        let fifi = b.object([c("Dog")]);
        b.attr(fifi, "home", villa);
        let i2 = b.build();

        let fed = Federation::new()
            .member("kennel-club", g1, i1)
            .member("villa-dogs", g2, i2);
        let view = fed.view().expect("builds");
        assert_eq!(view.completion.unions.len(), 1);
        let union_class = Class::implicit_union([c("Kennel"), c("House")]);
        // Both homes are visible through the union class's extent.
        let homes = view.query(
            &PathQuery::extent("Dog")
                .follow("home")
                .restrict(union_class),
        );
        assert_eq!(homes.len(), 2);
        view.check().expect("conforms");
    }

    #[test]
    fn schema_space_queries_need_no_instance_data() {
        // A schema-only federation (no member data at all) still answers
        // class-space path queries over the completed view.
        let (s1, s2) = member_schemas();
        let fed = Federation::new()
            .member("a", s1, Instance::default())
            .member("b", s2, Instance::default());
        let view = fed.view().expect("builds");
        let names = view.query_classes(&PathQuery::extent("Dog").follow("name"));
        assert_eq!(names, [c("string")].into());
        assert!(view.query(&PathQuery::extent("Dog")).is_empty());
    }

    #[test]
    fn display_summarizes_the_view() {
        let view = two_shelters().view().expect("builds");
        let text = view.to_string();
        assert!(text.contains("federated view"), "{text}");
        assert!(text.contains("objects"), "{text}");
    }
}
