//! Instances: objects, extents and attribute values.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use schema_merge_core::{Class, Label, WeakSchema};

/// An object identifier. Opaque; display as `#n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An instance: class extents plus a partial attribute function
/// `(object, label) ↦ object`.
///
/// Values are objects too — printable values (ints, strings) are modelled
/// as objects in the extent of their domain class, exactly as the graph
/// model treats domains as classes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instance {
    pub(crate) extents: BTreeMap<Class, BTreeSet<Oid>>,
    pub(crate) attrs: BTreeMap<(Oid, Label), Oid>,
}

impl Instance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// The extent of a class (empty if the class is unknown).
    pub fn extent(&self, class: &Class) -> BTreeSet<Oid> {
        self.extents.get(class).cloned().unwrap_or_default()
    }

    /// Whether `oid` is in the extent of `class`.
    pub fn in_extent(&self, class: &Class, oid: Oid) -> bool {
        self.extents.get(class).is_some_and(|e| e.contains(&oid))
    }

    /// The value of `oid`'s `label` attribute, if defined.
    pub fn attr(&self, oid: Oid, label: &Label) -> Option<Oid> {
        self.attrs.get(&(oid, label.clone())).copied()
    }

    /// Every object mentioned anywhere in the instance.
    pub fn objects(&self) -> BTreeSet<Oid> {
        let mut out: BTreeSet<Oid> = self.extents.values().flatten().copied().collect();
        for ((src, _), tgt) in &self.attrs {
            out.insert(*src);
            out.insert(*tgt);
        }
        out
    }

    /// The classes with a (possibly empty) declared extent.
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.extents.keys()
    }

    /// Number of attribute assignments.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// All attribute assignments `(object, label, value)`, sorted by
    /// object then label.
    pub fn attributes(&self) -> impl Iterator<Item = (Oid, &Label, Oid)> {
        self.attrs
            .iter()
            .map(|((object, label), value)| (*object, label, *value))
    }

    /// The classes whose extent contains `oid`.
    pub fn classes_of(&self, oid: Oid) -> BTreeSet<Class> {
        self.extents
            .iter()
            .filter(|(_, extent)| extent.contains(&oid))
            .map(|(class, _)| class.clone())
            .collect()
    }

    /// Restricts the instance to the classes of `schema`, dropping extents
    /// of other classes (attribute values are kept — the projected schema
    /// simply does not constrain them).
    ///
    /// This is the upper-merge direction of the semantics: "any instance
    /// of the merged schema can be considered to be an instance of any of
    /// the schemas being merged" (§6 opening).
    pub fn project(&self, schema: &WeakSchema) -> Instance {
        let extents = self
            .extents
            .iter()
            .filter(|(class, _)| schema.contains_class(class))
            .map(|(class, extent)| (class.clone(), extent.clone()))
            .collect();
        Instance {
            extents,
            attrs: self.attrs.clone(),
        }
    }

    /// Fills the extent of every implicit class of `schema` from its
    /// origins: meet classes get the *intersection* of their origins'
    /// extents, union classes the *union*. This is how an instance of the
    /// inputs is read as an instance of a completed merge, where the
    /// implicit classes "have no additional information associated with
    /// them" (§4.2).
    pub fn populate_implicit_extents(&self, schema: &WeakSchema) -> Instance {
        let mut out = self.clone();
        for class in schema.classes() {
            let origin = match class.origin() {
                Some(origin) if !out.extents.contains_key(class) => origin,
                _ => continue,
            };
            let member_extents: Vec<BTreeSet<Oid>> = origin
                .iter()
                .map(|name| out.extent(&Class::Named(name.clone())))
                .collect();
            let combined: BTreeSet<Oid> = if class.is_implicit_meet() {
                member_extents.iter().skip(1).fold(
                    member_extents.first().cloned().unwrap_or_default(),
                    |acc, e| acc.intersection(e).copied().collect(),
                )
            } else {
                member_extents.into_iter().flatten().collect()
            };
            out.extents.insert(class.clone(), combined);
        }
        out
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instance {{")?;
        for (class, extent) in &self.extents {
            write!(f, "  {class} = {{")?;
            for (i, oid) in extent.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{oid}")?;
            }
            writeln!(f, "}}")?;
        }
        for ((src, label), tgt) in &self.attrs {
            writeln!(f, "  {src}.{label} = {tgt}")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Instance`].
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    instance: Instance,
    next_oid: u64,
}

impl InstanceBuilder {
    /// Allocates a fresh object, optionally placing it in classes.
    pub fn object<I>(&mut self, classes: I) -> Oid
    where
        I: IntoIterator,
        I::Item: Into<Class>,
    {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        for class in classes {
            self.instance
                .extents
                .entry(class.into())
                .or_default()
                .insert(oid);
        }
        oid
    }

    /// Adds an existing object to a class extent.
    pub fn classify(&mut self, oid: Oid, class: impl Into<Class>) -> &mut Self {
        self.instance
            .extents
            .entry(class.into())
            .or_default()
            .insert(oid);
        self
    }

    /// Declares a (possibly empty) extent for a class.
    pub fn class(&mut self, class: impl Into<Class>) -> &mut Self {
        self.instance.extents.entry(class.into()).or_default();
        self
    }

    /// Sets an attribute value.
    pub fn attr(&mut self, oid: Oid, label: impl Into<Label>, value: Oid) -> &mut Self {
        self.instance.attrs.insert((oid, label.into()), value);
        self
    }

    /// Finishes the instance.
    pub fn build(&self) -> Instance {
        self.instance.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn builder_basics() {
        let mut b = Instance::builder();
        let rex = b.object(["Dog", "Pet"]);
        let five = b.object(["int"]);
        b.attr(rex, "age", five);
        let instance = b.build();

        assert!(instance.in_extent(&c("Dog"), rex));
        assert!(instance.in_extent(&c("Pet"), rex));
        assert!(!instance.in_extent(&c("int"), rex));
        assert_eq!(instance.attr(rex, &l("age")), Some(five));
        assert_eq!(instance.attr(rex, &l("name")), None);
        assert_eq!(instance.objects().len(), 2);
        assert_eq!(instance.classes_of(rex).len(), 2);
    }

    #[test]
    fn projection_drops_foreign_extents() {
        let mut b = Instance::builder();
        let rex = b.object(["Dog"]);
        let kennel = b.object(["Kennel"]);
        b.attr(rex, "home", kennel);
        let instance = b.build();

        let schema = WeakSchema::builder().class("Dog").build().unwrap();
        let projected = instance.project(&schema);
        assert!(projected.in_extent(&c("Dog"), rex));
        assert!(projected.extent(&c("Kennel")).is_empty());
        assert_eq!(projected.attr(rex, &l("home")), Some(kennel));
    }

    #[test]
    fn populate_meet_extent_is_intersection() {
        let mut b = Instance::builder();
        let both = b.object(["A", "B"]);
        let _only_a = b.object(["A"]);
        let instance = b.build();

        let x = Class::implicit([c("A"), c("B")]);
        let schema = WeakSchema::builder()
            .specialize(x.clone(), "A")
            .specialize(x.clone(), "B")
            .build()
            .unwrap();
        let filled = instance.populate_implicit_extents(&schema);
        assert_eq!(filled.extent(&x), [both].into_iter().collect());
    }

    #[test]
    fn populate_union_extent_is_union() {
        let mut b = Instance::builder();
        let a = b.object(["A"]);
        let bb = b.object(["B"]);
        let instance = b.build();

        let u = Class::implicit_union([c("A"), c("B")]);
        let schema = WeakSchema::builder()
            .specialize("A", u.clone())
            .specialize("B", u.clone())
            .build()
            .unwrap();
        let filled = instance.populate_implicit_extents(&schema);
        assert_eq!(filled.extent(&u), [a, bb].into_iter().collect());
    }

    #[test]
    fn populate_does_not_overwrite_existing_extent() {
        let mut b = Instance::builder();
        let a = b.object(["A"]);
        let x = Class::implicit([c("A"), c("B")]);
        b.classify(a, x.clone());
        let instance = b.build();
        let schema = WeakSchema::builder()
            .specialize(x.clone(), "A")
            .specialize(x.clone(), "B")
            .build()
            .unwrap();
        let filled = instance.populate_implicit_extents(&schema);
        // `a` is not in extent(B), but the explicit extent wins.
        assert_eq!(filled.extent(&x), [a].into_iter().collect());
    }

    #[test]
    fn display_lists_extents_and_attrs() {
        let mut b = Instance::builder();
        let rex = b.object(["Dog"]);
        let five = b.object(["int"]);
        b.attr(rex, "age", five);
        let text = b.build().to_string();
        assert!(text.contains("Dog = {#0}"));
        assert!(text.contains("#0.age = #1"));
    }
}
