//! Property-based tests of the instance semantics: conformance of
//! generated instances, projection monotonicity, entity-resolution
//! laws (determinism, idempotence, key-satisfaction afterwards), and
//! the query/federation layer (§1 views over §6 lower merges).

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::{AnnotatedSchema, Class, KeyAssignment, KeySet, ProperSchema, WeakSchema};
use schema_merge_instance::generator::conforming_instance;
use schema_merge_instance::{union_instances, Federation, Instance, PathQuery};

const NAMES: [&str; 6] = ["A", "B", "C", "D", "E", "F"];
const LABELS: [&str; 4] = ["f", "g", "h", "k"];

#[derive(Debug, Clone)]
enum Decl {
    Spec(usize, usize),
    Arrow(usize, usize, usize),
}

fn decls() -> impl Strategy<Value = Vec<Decl>> {
    let decl = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(a, b)| Decl::Spec(a.min(b), a.max(b))),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(s, l, t)| Decl::Arrow(s, l, t)),
    ];
    vec(decl, 0..10)
}

fn proper_schema(decls: &[Decl]) -> ProperSchema {
    let mut builder = WeakSchema::builder().classes(NAMES);
    for decl in decls {
        builder = match decl {
            Decl::Spec(a, b) if a != b => builder.specialize(NAMES[*a], NAMES[*b]),
            Decl::Spec(..) => builder,
            Decl::Arrow(s, l, t) => builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t]),
        };
    }
    let weak = builder.build().expect("order-directed schemas are acyclic");
    schema_merge_core::complete(&weak).expect("completion is total")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_instances_conform(decls in decls(), seed in 0u64..1000) {
        let proper = proper_schema(&decls);
        let instance = conforming_instance(&proper, 2, seed)
            .populate_implicit_extents(proper.as_weak());
        prop_assert_eq!(instance.conforms(&proper), Ok(()));
    }

    #[test]
    fn generation_is_seed_deterministic(decls in decls(), seed in 0u64..1000) {
        let proper = proper_schema(&decls);
        prop_assert_eq!(
            conforming_instance(&proper, 2, seed),
            conforming_instance(&proper, 2, seed)
        );
    }

    #[test]
    fn projection_to_self_is_identity_on_extents(decls in decls(), seed in 0u64..100) {
        let proper = proper_schema(&decls);
        let instance = conforming_instance(&proper, 2, seed);
        let projected = instance.project(proper.as_weak());
        for class in proper.classes() {
            prop_assert_eq!(instance.extent(class), projected.extent(class));
        }
    }

    #[test]
    fn union_without_keys_is_disjoint(decls in decls(), seed in 0u64..100) {
        let proper = proper_schema(&decls);
        let i1 = conforming_instance(&proper, 2, seed);
        let i2 = conforming_instance(&proper, 3, seed + 1);
        let (merged, report) = union_instances(&[&i1, &i2], &KeyAssignment::new());
        prop_assert_eq!(report.key_identifications, 0);
        for class in proper.classes() {
            prop_assert_eq!(
                merged.extent(class).len(),
                i1.extent(class).len() + i2.extent(class).len(),
                "extents add up for {}", class
            );
        }
    }

    #[test]
    fn resolution_is_idempotent(decls in decls(), seed in 0u64..100) {
        let proper = proper_schema(&decls);
        // Key every class on its first label, when it has one.
        let mut keys = KeyAssignment::new();
        for class in proper.classes() {
            if let Some(label) = proper.labels_of(class).iter().next() {
                keys.add_key(class.clone(), KeySet::new([label.clone()]));
            }
        }
        let i1 = conforming_instance(&proper, 2, seed);
        let i2 = conforming_instance(&proper, 2, seed + 7);
        let (once, _) = union_instances(&[&i1, &i2], &keys);
        let (twice, report) = union_instances(&[&once], &keys);
        prop_assert_eq!(report.key_identifications, 0, "already resolved");
        prop_assert_eq!(report.congruence_identifications, 0);
        for class in proper.classes() {
            prop_assert_eq!(once.extent(class).len(), twice.extent(class).len());
        }
        // And the result satisfies the keys it was resolved under.
        prop_assert_eq!(once.satisfies_keys(&keys), Ok(()));
    }

    #[test]
    fn resolved_instances_still_conform(decls in decls(), seed in 0u64..100) {
        // Resolution identifies objects and values; the quotient is still
        // an instance of the schema (congruence keeps attributes
        // functional and extents only merge).
        let proper = proper_schema(&decls);
        let mut keys = KeyAssignment::new();
        for class in proper.classes() {
            if let Some(label) = proper.labels_of(class).iter().next() {
                keys.add_key(class.clone(), KeySet::new([label.clone()]));
            }
        }
        let i1 = conforming_instance(&proper, 2, seed);
        let (resolved, _) = union_instances(&[&i1, &i1], &keys);
        let filled = resolved.populate_implicit_extents(proper.as_weak());
        prop_assert_eq!(filled.conforms(&proper), Ok(()));
    }
}

/// A random path query over the generated vocabulary.
fn path_query() -> impl Strategy<Value = PathQuery> {
    (
        0usize..NAMES.len(),
        vec(
            prop_oneof![
                (0usize..LABELS.len()).prop_map(|l| (true, l)),
                (0usize..NAMES.len()).prop_map(|n| (false, n)),
            ],
            0..4,
        ),
    )
        .prop_map(|(start, steps)| {
            let mut query = PathQuery::extent(NAMES[start]);
            for (is_follow, idx) in steps {
                query = if is_follow {
                    query.follow(LABELS[idx])
                } else {
                    query.restrict(Class::named(NAMES[idx]))
                };
            }
            query
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn query_answers_add_up_over_keyless_unions(
        decls in decls(),
        query in path_query(),
        seed in 0u64..100,
    ) {
        // Without keys the union is disjoint, so every query answer is
        // the disjoint union of the members' answers — the federated
        // view loses nothing and invents nothing.
        let proper = proper_schema(&decls);
        let i1 = conforming_instance(&proper, 2, seed);
        let i2 = conforming_instance(&proper, 3, seed + 1);
        let (merged, _) = union_instances(&[&i1, &i2], &KeyAssignment::new());
        prop_assert_eq!(
            merged.extent(query.start()).len(),
            i1.extent(query.start()).len() + i2.extent(query.start()).len()
        );
        prop_assert_eq!(
            query.eval(&merged).len(),
            query.eval(&i1).len() + query.eval(&i2).len()
        );
    }

    #[test]
    fn trace_images_union_to_eval(decls in decls(), query in path_query(), seed in 0u64..100) {
        let proper = proper_schema(&decls);
        let instance = conforming_instance(&proper, 3, seed);
        let eval: std::collections::BTreeSet<_> = query.eval(&instance);
        let traced = query.trace(&instance);
        let from_trace: std::collections::BTreeSet<_> =
            traced.values().flatten().copied().collect();
        prop_assert_eq!(eval, from_trace);
        // Trace keys are exactly the starting extent.
        let starts: std::collections::BTreeSet<_> =
            traced.keys().copied().collect();
        prop_assert_eq!(starts, instance.extent(query.start()));
    }

    #[test]
    fn federation_guarantees_hold_on_generated_members(
        decls1 in decls(),
        decls2 in decls(),
        seed in 0u64..50,
    ) {
        // Two members over the shared vocabulary with independent
        // schemas and conforming data: the §6 theorem says the view
        // exists, the union conforms to it, and each member conforms.
        let p1 = proper_schema(&decls1);
        let p2 = proper_schema(&decls2);
        let i1 = conforming_instance(&p1, 2, seed);
        let i2 = conforming_instance(&p2, 2, seed + 13);
        let federation = Federation::new()
            .member("m1", AnnotatedSchema::all_required(p1.as_weak().clone()), i1)
            .member("m2", AnnotatedSchema::all_required(p2.as_weak().clone()), i2);
        let view = federation.view().expect("lower merges always exist");
        prop_assert_eq!(view.check(), Ok(()));
        for member in federation.members() {
            prop_assert_eq!(view.check_member(member), Ok(()));
        }
    }

    #[test]
    fn federated_queries_monotone_in_members(
        decls in decls(),
        query in path_query(),
        seed in 0u64..50,
    ) {
        // Adding a member never shrinks a query answer (no keys).
        let proper = proper_schema(&decls);
        let schema = AnnotatedSchema::all_required(proper.as_weak().clone());
        let i1 = conforming_instance(&proper, 2, seed);
        let i2 = conforming_instance(&proper, 2, seed + 3);

        let small = Federation::new()
            .member("m1", schema.clone(), i1.clone())
            .view()
            .expect("view");
        let large = Federation::new()
            .member("m1", schema.clone(), i1)
            .member("m2", schema, i2)
            .view()
            .expect("view");
        prop_assert!(small.query(&query).len() <= large.query(&query).len());
    }
}

#[test]
fn projection_theorem_reference_case() {
    // A deterministic instance of a two-schema merge projects onto both
    // inputs (kept as a plain test so failures are easy to read).
    let g1 = WeakSchema::builder().arrow("A", "f", "B").build().unwrap();
    let g2 = WeakSchema::builder()
        .arrow("A", "g", "C")
        .specialize("D", "A")
        .build()
        .unwrap();
    let merged = schema_merge_core::Merger::new()
        .schemas([&g1, &g2])
        .execute()
        .unwrap()
        .proper;
    let instance = conforming_instance(&merged, 3, 5).populate_implicit_extents(merged.as_weak());
    assert_eq!(instance.conforms(&merged), Ok(()));
    for input in [&g1, &g2] {
        let proper_input = ProperSchema::try_new(input.clone()).unwrap();
        assert_eq!(instance.project(input).conforms(&proper_input), Ok(()));
    }
    let _ = Class::named("A");
}

#[test]
fn congruence_closure_reaches_fixpoint_on_chains() {
    // A chain of objects linked by shared key values must fully collapse.
    let mut keys = KeyAssignment::new();
    keys.add_key(Class::named("N"), KeySet::new(["next"]));

    let mut b = Instance::builder();
    let anchor = b.object(["V"]);
    // Two chains of three objects, all pointing at the same anchor
    // through `next`: every pair agrees on the key, so all collapse.
    for _ in 0..2 {
        for _ in 0..3 {
            let node = b.object(["N"]);
            b.attr(node, "next", anchor);
        }
    }
    let (merged, report) = union_instances(&[&b.build()], &keys);
    assert_eq!(merged.extent(&Class::named("N")).len(), 1);
    assert_eq!(report.key_identifications, 5);
}
