//! # schema-merge-er
//!
//! The Entity–Relationship front-end to the schema-merging calculus of
//! Buneman, Davidson & Kosky (EDBT 1992).
//!
//! ER schemas (domains / entities / relationships, attributes, roles,
//! isa, cardinalities) translate into the paper's graph model by
//! *stratifying* classes (§2); merging happens there ([`merge_er`]); and
//! because the merge preserves strata (§7), results translate back.
//! Cardinality labels ride along as key constraints (§5).
//!
//! ```
//! use schema_merge_er::{merge_er, ErSchema};
//! use schema_merge_core::Name;
//!
//! let g1 = ErSchema::builder()
//!     .entity("Dog")
//!     .attribute("Dog", "license", "int")
//!     .build()?;
//! let g2 = ErSchema::builder()
//!     .entity("Dog")
//!     .attribute("Dog", "age", "int")
//!     .build()?;
//! let merged = merge_er([&g1, &g2])?;
//! assert_eq!(merged.er.attributes_of(&Name::new("Dog")).len(), 2);
//! # Ok::<(), schema_merge_er::ErError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinality;
pub mod conflicts;
pub mod error;
pub mod merge;
pub mod model;
pub mod restructure;
pub mod translate;

pub use cardinality::{cardinality_keys, keys_to_cardinalities, relationship_key_family};
pub use conflicts::{detect_conflicts, mergeable, StructuralConflict};
pub use error::ErError;
pub use merge::{merge_er, preserves_strata, ErMergeOutcome};
pub use model::{
    figure_1_dogs, figure_9_advisor, Cardinality, ErSchema, ErSchemaBuilder, Relationship, Stratum,
};
pub use restructure::{
    demote_entity, normalize_pair, promote_attribute, AppliedFix, NormalPolicy,
    NormalizationOutcome, Promotion, RestructureError, Side, SkippedConflict,
};
pub use translate::{class_name, class_stratum, from_core, to_core, Strata};
