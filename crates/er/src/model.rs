//! The Entity–Relationship model (§2 of the paper, Fig. 1).
//!
//! An ER schema has three strata of named things — attribute *domains*,
//! *entities* and *relationships* — plus
//!
//! * attributes: labelled edges from entities or relationships to domains,
//! * roles: labelled edges from relationships to entities (with an
//!   optional cardinality annotation, §5),
//! * isa edges between entities and between relationships (Fig. 1 has
//!   entity isa; Fig. 9 has the relationship isa `Advisor ⇒ Committee`).
//!
//! The graph model of the paper subsumes this by *stratifying* classes;
//! [`crate::to_core`] performs that translation and [`crate::from_core`]
//! inverts it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use schema_merge_core::{Label, Name};

use crate::ErError;

/// Which stratum a name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stratum {
    /// An attribute domain (printable value set: `int`, `string`, …).
    Domain,
    /// An entity set.
    Entity,
    /// A relationship set.
    Relationship,
}

impl fmt::Display for Stratum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stratum::Domain => write!(f, "domain"),
            Stratum::Entity => write!(f, "entity"),
            Stratum::Relationship => write!(f, "relationship"),
        }
    }
}

/// A cardinality annotation on a relationship role (§5): `N` (many) is the
/// unrestricted default; `1` says each combination of the *other* roles
/// determines this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cardinality {
    /// Unrestricted participation (the paper's "N" / "many").
    #[default]
    Many,
    /// Functional participation (the paper's "1").
    One,
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::Many => write!(f, "N"),
            Cardinality::One => write!(f, "1"),
        }
    }
}

/// A relationship: named roles to entities, each with a cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relationship {
    /// Role name ↦ participating entity.
    pub roles: BTreeMap<Label, Name>,
    /// Role name ↦ cardinality (`Many` if unlisted).
    pub cardinalities: BTreeMap<Label, Cardinality>,
}

impl Relationship {
    /// The cardinality of a role (`Many` by default).
    pub fn cardinality(&self, role: &Label) -> Cardinality {
        self.cardinalities.get(role).copied().unwrap_or_default()
    }

    /// Whether the relationship is binary.
    pub fn is_binary(&self) -> bool {
        self.roles.len() == 2
    }
}

/// An Entity–Relationship schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ErSchema {
    pub(crate) domains: BTreeSet<Name>,
    pub(crate) entities: BTreeSet<Name>,
    pub(crate) relationships: BTreeMap<Name, Relationship>,
    /// Attributes of entities and relationships: owner ↦ attr ↦ domain.
    pub(crate) attributes: BTreeMap<Name, BTreeMap<Label, Name>>,
    /// Entity isa edges (sub, sup).
    pub(crate) entity_isa: BTreeSet<(Name, Name)>,
    /// Relationship isa edges (sub, sup), as in Fig. 9.
    pub(crate) relationship_isa: BTreeSet<(Name, Name)>,
    /// Domain isa edges (sub, sup). Not part of classic ER; needed to
    /// read back merge results where completion introduced an implicit
    /// domain below conflicting attribute domains.
    pub(crate) domain_isa: BTreeSet<(Name, Name)>,
}

impl ErSchema {
    /// Starts building an ER schema.
    pub fn builder() -> ErSchemaBuilder {
        ErSchemaBuilder::default()
    }

    /// The domains, sorted.
    pub fn domains(&self) -> impl Iterator<Item = &Name> {
        self.domains.iter()
    }

    /// The entities, sorted.
    pub fn entities(&self) -> impl Iterator<Item = &Name> {
        self.entities.iter()
    }

    /// The relationships, sorted by name.
    pub fn relationships(&self) -> impl Iterator<Item = (&Name, &Relationship)> {
        self.relationships.iter()
    }

    /// A relationship by name.
    pub fn relationship(&self, name: &Name) -> Option<&Relationship> {
        self.relationships.get(name)
    }

    /// The attributes of an entity or relationship.
    pub fn attributes_of(&self, owner: &Name) -> BTreeMap<Label, Name> {
        self.attributes.get(owner).cloned().unwrap_or_default()
    }

    /// Entity isa pairs `(sub, sup)`.
    pub fn entity_isa(&self) -> impl Iterator<Item = &(Name, Name)> {
        self.entity_isa.iter()
    }

    /// Relationship isa pairs `(sub, sup)`.
    pub fn relationship_isa(&self) -> impl Iterator<Item = &(Name, Name)> {
        self.relationship_isa.iter()
    }

    /// Domain isa pairs `(sub, sup)` (merge-introduced refinements).
    pub fn domain_isa(&self) -> impl Iterator<Item = &(Name, Name)> {
        self.domain_isa.iter()
    }

    /// All attribute declarations: owner ↦ (attr ↦ domain).
    pub fn all_attributes(&self) -> impl Iterator<Item = (&Name, &BTreeMap<Label, Name>)> {
        self.attributes.iter()
    }

    /// Drops every cardinality annotation (used when comparing against a
    /// schema read back from the graph model, which carries cardinality
    /// information as keys instead, §5).
    pub fn clear_cardinalities(&mut self) {
        for rel in self.relationships.values_mut() {
            rel.cardinalities.clear();
        }
    }

    /// The stratum of a name, if it is declared.
    pub fn stratum(&self, name: &Name) -> Option<Stratum> {
        if self.domains.contains(name) {
            Some(Stratum::Domain)
        } else if self.entities.contains(name) {
            Some(Stratum::Entity)
        } else if self.relationships.contains_key(name) {
            Some(Stratum::Relationship)
        } else {
            None
        }
    }

    /// All declared names with their strata.
    pub fn strata(&self) -> BTreeMap<Name, Stratum> {
        let mut out = BTreeMap::new();
        for d in &self.domains {
            out.insert(d.clone(), Stratum::Domain);
        }
        for e in &self.entities {
            out.insert(e.clone(), Stratum::Entity);
        }
        for r in self.relationships.keys() {
            out.insert(r.clone(), Stratum::Relationship);
        }
        out
    }

    /// Counts: (domains, entities, relationships).
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.domains.len(),
            self.entities.len(),
            self.relationships.len(),
        )
    }

    /// Validates the stratification restrictions of §2:
    ///
    /// * every name has exactly one stratum,
    /// * attributes run from entities/relationships to domains,
    /// * roles run from relationships to entities,
    /// * isa edges stay within a stratum,
    /// * domains carry no attributes.
    pub fn validate(&self) -> Result<(), ErError> {
        for e in &self.entities {
            if self.domains.contains(e) {
                return Err(ErError::StratumClash {
                    name: e.clone(),
                    first: Stratum::Domain,
                    second: Stratum::Entity,
                });
            }
        }
        for r in self.relationships.keys() {
            if self.domains.contains(r) {
                return Err(ErError::StratumClash {
                    name: r.clone(),
                    first: Stratum::Domain,
                    second: Stratum::Relationship,
                });
            }
            if self.entities.contains(r) {
                return Err(ErError::StratumClash {
                    name: r.clone(),
                    first: Stratum::Entity,
                    second: Stratum::Relationship,
                });
            }
        }
        for (owner, attrs) in &self.attributes {
            match self.stratum(owner) {
                Some(Stratum::Entity) | Some(Stratum::Relationship) => {}
                Some(Stratum::Domain) => {
                    return Err(ErError::AttributeOnDomain {
                        domain: owner.clone(),
                    })
                }
                None => return Err(ErError::Undeclared(owner.clone())),
            }
            for domain in attrs.values() {
                match self.stratum(domain) {
                    Some(Stratum::Domain) => {}
                    Some(s) => {
                        return Err(ErError::AttributeTargetNotDomain {
                            owner: owner.clone(),
                            target: domain.clone(),
                            actual: s,
                        })
                    }
                    None => return Err(ErError::Undeclared(domain.clone())),
                }
            }
        }
        for (name, rel) in &self.relationships {
            for (role, entity) in &rel.roles {
                match self.stratum(entity) {
                    Some(Stratum::Entity) => {}
                    Some(s) => {
                        return Err(ErError::RoleTargetNotEntity {
                            relationship: name.clone(),
                            role: role.clone(),
                            target: entity.clone(),
                            actual: s,
                        })
                    }
                    None => return Err(ErError::Undeclared(entity.clone())),
                }
            }
            for role in rel.cardinalities.keys() {
                if !rel.roles.contains_key(role) {
                    return Err(ErError::UnknownRole {
                        relationship: name.clone(),
                        role: role.clone(),
                    });
                }
            }
        }
        for (sub, sup) in &self.entity_isa {
            for name in [sub, sup] {
                if !self.entities.contains(name) {
                    return Err(ErError::IsaOutsideStratum {
                        name: name.clone(),
                        expected: Stratum::Entity,
                    });
                }
            }
        }
        for (sub, sup) in &self.relationship_isa {
            for name in [sub, sup] {
                if !self.relationships.contains_key(name) {
                    return Err(ErError::IsaOutsideStratum {
                        name: name.clone(),
                        expected: Stratum::Relationship,
                    });
                }
            }
        }
        for (sub, sup) in &self.domain_isa {
            for name in [sub, sup] {
                if !self.domains.contains(name) {
                    return Err(ErError::IsaOutsideStratum {
                        name: name.clone(),
                        expected: Stratum::Domain,
                    });
                }
            }
        }
        // Isa edges must be acyclic (the graph model's S is a partial
        // order); detect cycles by building a specialization-only schema.
        let mut probe = schema_merge_core::WeakSchema::builder();
        for (sub, sup) in self
            .entity_isa
            .iter()
            .chain(&self.relationship_isa)
            .chain(&self.domain_isa)
        {
            probe = probe.specialize(
                schema_merge_core::Class::Named(sub.clone()),
                schema_merge_core::Class::Named(sup.clone()),
            );
        }
        if let Err(err) = probe.build() {
            return Err(ErError::IsaCycle(err.to_string()));
        }
        Ok(())
    }
}

impl fmt::Display for ErSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "er-schema {{")?;
        for d in &self.domains {
            writeln!(f, "  domain {d};")?;
        }
        for e in &self.entities {
            write!(f, "  entity {e}")?;
            if let Some(attrs) = self.attributes.get(e) {
                write!(f, " (")?;
                for (i, (a, d)) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}: {d}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f, ";")?;
        }
        for (name, rel) in &self.relationships {
            write!(f, "  relationship {name} (")?;
            for (i, (role, entity)) in rel.roles.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{role}: {entity} [{}]", rel.cardinality(role))?;
            }
            write!(f, ")")?;
            if let Some(attrs) = self.attributes.get(name) {
                write!(f, " with (")?;
                for (i, (a, d)) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}: {d}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f, ";")?;
        }
        for (sub, sup) in &self.entity_isa {
            writeln!(f, "  {sub} isa {sup};")?;
        }
        for (sub, sup) in &self.relationship_isa {
            writeln!(f, "  {sub} isa {sup};")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`ErSchema`].
#[derive(Debug, Clone, Default)]
pub struct ErSchemaBuilder {
    schema: ErSchema,
}

impl ErSchemaBuilder {
    /// Declares an attribute domain.
    pub fn domain(mut self, name: impl Into<Name>) -> Self {
        self.schema.domains.insert(name.into());
        self
    }

    /// Declares an entity.
    pub fn entity(mut self, name: impl Into<Name>) -> Self {
        self.schema.entities.insert(name.into());
        self
    }

    /// Declares a relationship with `(role, entity)` pairs, all roles
    /// cardinality `N`.
    pub fn relationship<I, L, N>(mut self, name: impl Into<Name>, roles: I) -> Self
    where
        I: IntoIterator<Item = (L, N)>,
        L: Into<Label>,
        N: Into<Name>,
    {
        let rel = Relationship {
            roles: roles
                .into_iter()
                .map(|(l, n)| (l.into(), n.into()))
                .collect(),
            cardinalities: BTreeMap::new(),
        };
        self.schema.relationships.insert(name.into(), rel);
        self
    }

    /// Annotates a role's cardinality (the relationship must already be
    /// declared; unknown relationships are reported by `build`).
    pub fn cardinality(
        mut self,
        relationship: impl Into<Name>,
        role: impl Into<Label>,
        cardinality: Cardinality,
    ) -> Self {
        let name = relationship.into();
        self.schema
            .relationships
            .entry(name)
            .or_default()
            .cardinalities
            .insert(role.into(), cardinality);
        self
    }

    /// Declares an attribute on an entity or relationship.
    pub fn attribute(
        mut self,
        owner: impl Into<Name>,
        attr: impl Into<Label>,
        domain: impl Into<Name>,
    ) -> Self {
        let domain = domain.into();
        self.schema.domains.insert(domain.clone());
        self.schema
            .attributes
            .entry(owner.into())
            .or_default()
            .insert(attr.into(), domain);
        self
    }

    /// Declares `sub isa sup` between entities.
    pub fn entity_isa(mut self, sub: impl Into<Name>, sup: impl Into<Name>) -> Self {
        self.schema.entity_isa.insert((sub.into(), sup.into()));
        self
    }

    /// Declares `sub isa sup` between relationships.
    pub fn relationship_isa(mut self, sub: impl Into<Name>, sup: impl Into<Name>) -> Self {
        self.schema
            .relationship_isa
            .insert((sub.into(), sup.into()));
        self
    }

    /// Declares `sub isa sup` between domains.
    pub fn domain_isa(mut self, sub: impl Into<Name>, sup: impl Into<Name>) -> Self {
        self.schema.domain_isa.insert((sub.into(), sup.into()));
        self
    }

    /// Adds a role to an existing (or new) relationship.
    pub fn role(
        mut self,
        relationship: impl Into<Name>,
        role: impl Into<Label>,
        entity: impl Into<Name>,
    ) -> Self {
        self.schema
            .relationships
            .entry(relationship.into())
            .or_default()
            .roles
            .insert(role.into(), entity.into());
        self
    }

    /// Validates and returns the schema.
    pub fn build(self) -> Result<ErSchema, ErError> {
        self.schema.validate()?;
        Ok(self.schema)
    }
}

/// The ER diagram of Fig. 1: dogs, kennels and their `Lives` relationship,
/// with `Guide-dog` and `Police-dog` isa `Dog`. Used by tests, examples
/// and the figure-reproduction harness.
pub fn figure_1_dogs() -> ErSchema {
    ErSchema::builder()
        .domain("int")
        .domain("breed")
        .domain("place")
        .entity("Dog")
        .entity("Guide-dog")
        .entity("Police-dog")
        .entity("Kennel")
        .attribute("Dog", "age", "int")
        .attribute("Dog", "kind", "breed")
        .attribute("Police-dog", "id-num", "int")
        .attribute("Kennel", "addr", "place")
        .entity_isa("Guide-dog", "Dog")
        .entity_isa("Police-dog", "Dog")
        .relationship("Lives", [("occ", "Dog"), ("home", "Kennel")])
        .attribute("Lives", "owner", "person")
        .build()
        .expect("figure 1 is a valid ER schema")
}

/// The Fig. 9 schema: `Advisor isa Committee`, both relating `Faculty`
/// and graduate students (`GS`), with the advisor's `faculty` role
/// restricted to cardinality 1.
pub fn figure_9_advisor() -> ErSchema {
    ErSchema::builder()
        .entity("Faculty")
        .entity("GS")
        .relationship("Committee", [("faculty", "Faculty"), ("victim", "GS")])
        .relationship("Advisor", [("faculty", "Faculty"), ("victim", "GS")])
        .cardinality("Advisor", "faculty", Cardinality::One)
        .relationship_isa("Advisor", "Committee")
        .build()
        .expect("figure 9 is a valid ER schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_shape() {
        let er = figure_1_dogs();
        assert_eq!(er.counts(), (4, 4, 1));
        let lives = er.relationship(&Name::new("Lives")).unwrap();
        assert!(lives.is_binary());
        assert_eq!(lives.roles[&Label::new("occ")], Name::new("Dog"));
        assert_eq!(
            er.attributes_of(&Name::new("Dog"))[&Label::new("age")],
            Name::new("int")
        );
        assert_eq!(er.stratum(&Name::new("Lives")), Some(Stratum::Relationship));
        assert_eq!(er.stratum(&Name::new("int")), Some(Stratum::Domain));
    }

    #[test]
    fn figure_9_shape() {
        let er = figure_9_advisor();
        let advisor = er.relationship(&Name::new("Advisor")).unwrap();
        assert_eq!(
            advisor.cardinality(&Label::new("faculty")),
            Cardinality::One
        );
        assert_eq!(
            advisor.cardinality(&Label::new("victim")),
            Cardinality::Many
        );
        assert!(er
            .relationship_isa()
            .any(|(sub, sup)| sub.as_str() == "Advisor" && sup.as_str() == "Committee"));
    }

    #[test]
    fn stratum_clash_is_rejected() {
        let err = ErSchema::builder()
            .domain("Dog")
            .entity("Dog")
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::StratumClash { .. }));
    }

    #[test]
    fn attribute_must_target_domain() {
        let err = ErSchema::builder()
            .entity("Dog")
            .entity("Kennel")
            .relationship("Lives", [("occ", "Dog")])
            .attribute("Dog", "home", "Kennel")
            .domain("Kennel") // clash: Kennel is an entity
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::StratumClash { .. }));
    }

    #[test]
    fn role_must_target_entity() {
        let err = ErSchema::builder()
            .domain("int")
            .relationship("R", [("x", "int")])
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::RoleTargetNotEntity { .. }));
    }

    #[test]
    fn undeclared_role_target() {
        let err = ErSchema::builder()
            .relationship("R", [("x", "Ghost")])
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::Undeclared(_)));
    }

    #[test]
    fn cardinality_on_unknown_role() {
        let err = ErSchema::builder()
            .entity("A")
            .relationship("R", [("x", "A")])
            .cardinality("R", "nope", Cardinality::One)
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::UnknownRole { .. }));
    }

    #[test]
    fn isa_must_stay_in_stratum() {
        let err = ErSchema::builder()
            .entity("Dog")
            .relationship("Lives", [("occ", "Dog")])
            .entity_isa("Lives", "Dog")
            .build()
            .unwrap_err();
        assert!(matches!(err, ErError::IsaOutsideStratum { .. }));
    }

    #[test]
    fn display_is_readable() {
        let text = figure_9_advisor().to_string();
        assert!(text.contains("relationship Advisor"));
        assert!(text.contains("faculty: Faculty [1]"));
        assert!(text.contains("Advisor isa Committee"));
    }

    #[test]
    fn attributes_on_domains_are_rejected() {
        // Constructed directly since the builder auto-declares domains.
        let mut schema = ErSchema::default();
        schema.domains.insert(Name::new("int"));
        schema
            .attributes
            .entry(Name::new("int"))
            .or_default()
            .insert(Label::new("x"), Name::new("int"));
        assert!(matches!(
            schema.validate(),
            Err(ErError::AttributeOnDomain { .. })
        ));
    }
}
