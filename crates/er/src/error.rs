//! Errors for the ER substrate.

use std::fmt;

use schema_merge_core::{Class, Label, MergeError, Name, SchemaError};

use crate::model::Stratum;

/// Errors raised by ER schema construction, translation and merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErError {
    /// A name was declared in two strata.
    StratumClash {
        /// The doubly-declared name.
        name: Name,
        /// Its first stratum.
        first: Stratum,
        /// Its conflicting stratum.
        second: Stratum,
    },
    /// A referenced name was never declared.
    Undeclared(Name),
    /// An attribute was declared on a domain.
    AttributeOnDomain {
        /// The offending domain.
        domain: Name,
    },
    /// An attribute's target is not a domain.
    AttributeTargetNotDomain {
        /// The attribute's owner.
        owner: Name,
        /// The target.
        target: Name,
        /// The target's actual stratum.
        actual: Stratum,
    },
    /// A relationship role's target is not an entity.
    RoleTargetNotEntity {
        /// The relationship.
        relationship: Name,
        /// The role.
        role: Label,
        /// The target.
        target: Name,
        /// The target's actual stratum.
        actual: Stratum,
    },
    /// A cardinality annotation referenced a role the relationship lacks.
    UnknownRole {
        /// The relationship.
        relationship: Name,
        /// The unknown role.
        role: Label,
    },
    /// The isa edges within a stratum form a cycle.
    IsaCycle(String),
    /// An isa edge connects different strata.
    IsaOutsideStratum {
        /// The offending endpoint.
        name: Name,
        /// The stratum required by the edge.
        expected: Stratum,
    },
    /// A core-schema class violates the stratification when translating
    /// back from the graph model (e.g. an arrow from an entity to an
    /// entity), so the schema has left the ER model.
    NotStratified {
        /// The class at fault.
        class: Class,
        /// Human-readable explanation.
        reason: String,
    },
    /// The underlying graph merge failed.
    Merge(MergeError),
    /// The underlying schema operation failed.
    Schema(SchemaError),
}

impl fmt::Display for ErError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErError::StratumClash {
                name,
                first,
                second,
            } => write!(f, "{name} is declared both as a {first} and as a {second}"),
            ErError::Undeclared(name) => write!(f, "{name} is referenced but never declared"),
            ErError::AttributeOnDomain { domain } => {
                write!(f, "domain {domain} cannot carry attributes")
            }
            ErError::AttributeTargetNotDomain {
                owner,
                target,
                actual,
            } => write!(
                f,
                "attribute of {owner} targets {target}, which is a {actual}, not a domain"
            ),
            ErError::RoleTargetNotEntity {
                relationship,
                role,
                target,
                actual,
            } => write!(
                f,
                "role {role} of {relationship} targets {target}, which is a {actual}, not an \
                 entity"
            ),
            ErError::UnknownRole { relationship, role } => {
                write!(f, "{relationship} has no role named {role}")
            }
            ErError::IsaCycle(detail) => write!(f, "isa edges are cyclic: {detail}"),
            ErError::IsaOutsideStratum { name, expected } => {
                write!(f, "isa edge endpoint {name} is not a {expected}")
            }
            ErError::NotStratified { class, reason } => {
                write!(f, "class {class} violates ER stratification: {reason}")
            }
            ErError::Merge(err) => write!(f, "merge failed: {err}"),
            ErError::Schema(err) => write!(f, "schema error: {err}"),
        }
    }
}

impl std::error::Error for ErError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ErError::Merge(err) => Some(err),
            ErError::Schema(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MergeError> for ErError {
    fn from(err: MergeError) -> Self {
        ErError::Merge(err)
    }
}

impl From<SchemaError> for ErError {
    fn from(err: SchemaError) -> Self {
        ErError::Schema(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let err = ErError::StratumClash {
            name: Name::new("Dog"),
            first: Stratum::Domain,
            second: Stratum::Entity,
        };
        assert_eq!(
            err.to_string(),
            "Dog is declared both as a domain and as a entity"
        );

        let err = ErError::NotStratified {
            class: Class::named("X"),
            reason: "arrow from entity to entity".into(),
        };
        assert!(err.to_string().contains("violates ER stratification"));
    }

    #[test]
    fn wraps_core_errors() {
        let inner = SchemaError::UnknownClass(Class::named("Y"));
        let err: ErError = inner.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
