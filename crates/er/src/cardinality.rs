//! Cardinality constraints as keys (§5).
//!
//! The paper argues that key constraints subsume the usual ER edge
//! labels: for a relationship, declaring role `r` cardinality `1` says
//! the *other* roles determine `r`, i.e. the other roles form a key.
//! Fig. 9: `Advisor`'s `faculty` role labelled `1` gives
//! `SK(Advisor) = {{victim}}`, while unconstrained `Committee` is keyed
//! by all its roles, `{{faculty, victim}}`.
//!
//! The translation is exact for binary relationships; the paper's own
//! footnote 1 observes that ternary-and-higher edge labels have no agreed
//! semantics, so [`keys_to_cardinalities`] only answers for binary
//! relationships and returns `None` for key families no labelling can
//! express (Fig. 10).

use std::collections::BTreeMap;

use schema_merge_core::{Class, KeyAssignment, KeySet, Label, SuperkeyFamily};

use crate::model::{Cardinality, ErSchema, Relationship};

/// The superkey family a relationship's cardinality labels denote: one key
/// per `1`-labelled role (the other roles), or all roles when no role is
/// restricted.
pub fn relationship_key_family(rel: &Relationship) -> SuperkeyFamily {
    let mut family = SuperkeyFamily::none();
    let mut any_one = false;
    for role in rel.roles.keys() {
        if rel.cardinality(role) == Cardinality::One {
            any_one = true;
            let others: Vec<Label> = rel
                .roles
                .keys()
                .filter(|other| *other != role)
                .cloned()
                .collect();
            family.insert_key(KeySet::new(others));
        }
    }
    if !any_one {
        family.insert_key(KeySet::new(rel.roles.keys().cloned()));
    }
    family
}

/// The key assignment induced by every relationship's cardinalities,
/// keyed by the relationship's class in the graph translation.
pub fn cardinality_keys(er: &ErSchema) -> KeyAssignment {
    let mut assignment = KeyAssignment::new();
    for (name, rel) in er.relationships() {
        if rel.roles.is_empty() {
            continue;
        }
        assignment.set(Class::Named(name.clone()), relationship_key_family(rel));
    }
    assignment
}

/// Reads a binary relationship's cardinalities back from a superkey
/// family. Returns `None` when
///
/// * the relationship is not binary (footnote 1: no agreed semantics), or
/// * the family uses labels outside the roles or multi-role structure no
///   labelling expresses (Fig. 10's two overlapping keys, for instance,
///   arise only with non-role attributes in the keys).
pub fn keys_to_cardinalities(
    rel: &Relationship,
    family: &SuperkeyFamily,
) -> Option<BTreeMap<Label, Cardinality>> {
    if !rel.is_binary() {
        return None;
    }
    let roles: Vec<&Label> = rel.roles.keys().collect();
    let (r1, r2) = (roles[0], roles[1]);
    for key in family.minimal_keys() {
        if !key.labels().all(|l| rel.roles.contains_key(l)) {
            return None;
        }
    }
    let k1 = family.is_superkey(&KeySet::new([r1.clone()]));
    let k2 = family.is_superkey(&KeySet::new([r2.clone()]));
    let both = family.is_superkey(&KeySet::new([r1.clone(), r2.clone()]));
    if !both {
        // No key at all (object identity): not expressible as labels.
        return None;
    }
    let mut out = BTreeMap::new();
    // Key {r1} means r1 determines r2: r2 has cardinality 1; and dually.
    out.insert(
        r2.clone(),
        if k1 {
            Cardinality::One
        } else {
            Cardinality::Many
        },
    );
    out.insert(
        r1.clone(),
        if k2 {
            Cardinality::One
        } else {
            Cardinality::Many
        },
    );
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{figure_9_advisor, ErSchema};
    use schema_merge_core::Name;

    fn ks(labels: &[&str]) -> KeySet {
        KeySet::new(labels.iter().copied())
    }

    #[test]
    fn figure_9_families() {
        let er = figure_9_advisor();
        let advisor = er.relationship(&Name::new("Advisor")).unwrap();
        let committee = er.relationship(&Name::new("Committee")).unwrap();
        assert_eq!(
            relationship_key_family(advisor),
            SuperkeyFamily::single(ks(&["victim"]))
        );
        assert_eq!(
            relationship_key_family(committee),
            SuperkeyFamily::single(ks(&["faculty", "victim"]))
        );
    }

    #[test]
    fn one_to_one_gives_two_keys() {
        let er = ErSchema::builder()
            .entity("A")
            .entity("B")
            .relationship("R", [("a", "A"), ("b", "B")])
            .cardinality("R", "a", Cardinality::One)
            .cardinality("R", "b", Cardinality::One)
            .build()
            .unwrap();
        let rel = er.relationship(&Name::new("R")).unwrap();
        let family = relationship_key_family(rel);
        assert_eq!(family.num_keys(), 2);
        assert!(family.is_superkey(&ks(&["a"])));
        assert!(family.is_superkey(&ks(&["b"])));
    }

    #[test]
    fn cardinality_keys_covers_all_relationships() {
        let er = figure_9_advisor();
        let assignment = cardinality_keys(&er);
        assert_eq!(assignment.num_keyed_classes(), 2);
        assert!(!assignment.family(&Class::named("Advisor")).is_none());
    }

    #[test]
    fn round_trip_binary_cardinalities() {
        for cards in [
            (Cardinality::Many, Cardinality::Many),
            (Cardinality::One, Cardinality::Many),
            (Cardinality::Many, Cardinality::One),
            (Cardinality::One, Cardinality::One),
        ] {
            let er = ErSchema::builder()
                .entity("A")
                .entity("B")
                .relationship("R", [("a", "A"), ("b", "B")])
                .cardinality("R", "a", cards.0)
                .cardinality("R", "b", cards.1)
                .build()
                .unwrap();
            let rel = er.relationship(&Name::new("R")).unwrap();
            let family = relationship_key_family(rel);
            let back = keys_to_cardinalities(rel, &family).unwrap();
            assert_eq!(back[&Label::new("a")], cards.0, "cards {cards:?}");
            assert_eq!(back[&Label::new("b")], cards.1, "cards {cards:?}");
        }
    }

    #[test]
    fn ternary_relationships_are_refused() {
        let er = ErSchema::builder()
            .entity("A")
            .entity("B")
            .entity("C")
            .relationship("R", [("a", "A"), ("b", "B"), ("c", "C")])
            .build()
            .unwrap();
        let rel = er.relationship(&Name::new("R")).unwrap();
        let family = relationship_key_family(rel);
        assert!(keys_to_cardinalities(rel, &family).is_none());
    }

    #[test]
    fn figure_10_keys_are_not_expressible_as_labels() {
        // Transaction(loc, at, card, amount) with keys {loc,at}, {card,at}.
        // Even restricted to a binary view, keys mentioning non-role
        // attributes cannot be edge labels.
        let er = ErSchema::builder()
            .entity("Machine")
            .entity("Card")
            .relationship("Transaction", [("loc", "Machine"), ("card", "Card")])
            .attribute("Transaction", "at", "time")
            .attribute("Transaction", "amount", "money")
            .build()
            .unwrap();
        let rel = er.relationship(&Name::new("Transaction")).unwrap();
        let family = SuperkeyFamily::from_keys([ks(&["loc", "at"]), ks(&["card", "at"])]);
        assert!(keys_to_cardinalities(rel, &family).is_none());
    }

    #[test]
    fn ternary_with_one_role() {
        // Supply(s: Supplier, p: Project, j: Part) with j labelled 1:
        // {s, p} is a key.
        let er = ErSchema::builder()
            .entity("Supplier")
            .entity("Project")
            .entity("Part")
            .relationship(
                "Supply",
                [("s", "Supplier"), ("p", "Project"), ("j", "Part")],
            )
            .cardinality("Supply", "j", Cardinality::One)
            .build()
            .unwrap();
        let rel = er.relationship(&Name::new("Supply")).unwrap();
        let family = relationship_key_family(rel);
        assert!(family.is_superkey(&ks(&["s", "p"])));
        assert!(!family.is_superkey(&ks(&["s", "j"])));
    }

    #[test]
    fn no_key_family_is_not_expressible() {
        let er = ErSchema::builder()
            .entity("A")
            .entity("B")
            .relationship("R", [("a", "A"), ("b", "B")])
            .build()
            .unwrap();
        let rel = er.relationship(&Name::new("R")).unwrap();
        assert!(keys_to_cardinalities(rel, &SuperkeyFamily::none()).is_none());
    }
}
