//! Merging ER schemas through the graph model (§2, §5, §7).
//!
//! The §7 recipe: translate each ER schema into the graph model
//! ([`crate::to_core`]), merge there, translate back ([`crate::from_core`]).
//! Because the merge preserves strata, the translation back always
//! succeeds for stratified inputs. Cardinality constraints ride along as
//! key constraints (§5) and are combined into the unique minimal
//! satisfactory assignment.

use std::collections::BTreeMap;

use schema_merge_core::{Class, KeyAssignment, MergeOutcome, Merger, Name, SuperkeyFamily};

use crate::cardinality::cardinality_keys;
use crate::model::{ErSchema, Stratum};
use crate::translate::{from_core, to_core, Strata};
use crate::ErError;

/// The result of an ER merge.
#[derive(Debug, Clone)]
pub struct ErMergeOutcome {
    /// The merged schema, translated back into the ER model.
    pub er: ErSchema,
    /// The underlying graph-model outcome (weak LUB, completion, report).
    pub core: MergeOutcome,
    /// The combined strata assignment.
    pub strata: Strata,
    /// The minimal satisfactory key assignment combining every input's
    /// cardinality-derived keys (§5).
    pub keys: KeyAssignment,
}

/// Merges ER schemas. Fails if the same name is used in different strata
/// across inputs, if the graph merge is incompatible, or — which §7 rules
/// out for stratified inputs — if the result leaves the ER model.
pub fn merge_er<'a>(
    schemas: impl IntoIterator<Item = &'a ErSchema>,
) -> Result<ErMergeOutcome, ErError> {
    let inputs: Vec<&ErSchema> = schemas.into_iter().collect();

    // Combined strata with clash detection.
    let mut strata: Strata = BTreeMap::new();
    for er in &inputs {
        for (name, stratum) in er.strata() {
            match strata.get(&name) {
                None => {
                    strata.insert(name, stratum);
                }
                Some(&existing) if existing == stratum => {}
                Some(&existing) => {
                    return Err(ErError::StratumClash {
                        name,
                        first: existing,
                        second: stratum,
                    })
                }
            }
        }
    }

    let translated: Vec<_> = inputs.iter().map(|er| to_core(er).0).collect();
    let core = Merger::new()
        .schemas(translated.iter())
        .execute()?
        .into_outcome();
    let er = from_core(core.proper.as_weak(), &strata)?;

    // Key contributions from every input's cardinalities, merged into the
    // minimal satisfactory assignment over the completed schema.
    let mut contributions: Vec<(Class, SuperkeyFamily)> = Vec::new();
    for input in &inputs {
        let assignment = cardinality_keys(input);
        for class in assignment.keyed_classes() {
            contributions.push((class.clone(), assignment.family(class)));
        }
    }
    let keys = KeyAssignment::minimal_satisfactory(
        core.proper.as_weak(),
        contributions.iter().map(|(c, f)| (c, f)),
    );

    Ok(ErMergeOutcome {
        er,
        core,
        strata,
        keys,
    })
}

/// Checks that a merge outcome stayed inside the ER model — the §7
/// strata-preservation theorem, as an executable check (the classes of
/// the merged schema all carry a stratum and `from_core` accepted the
/// result).
pub fn preserves_strata(outcome: &ErMergeOutcome) -> bool {
    outcome
        .core
        .proper
        .classes()
        .all(|class| crate::translate::class_stratum(class, &outcome.strata).is_ok())
}

/// Convenience: the stratum of a merged-in name.
pub fn merged_stratum(outcome: &ErMergeOutcome, name: &Name) -> Option<Stratum> {
    outcome.strata.get(name).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{figure_1_dogs, figure_9_advisor, Cardinality};
    use schema_merge_core::{KeySet, Label};

    fn ks(labels: &[&str]) -> KeySet {
        KeySet::new(labels.iter().copied())
    }

    #[test]
    fn merging_with_itself_is_identity_modulo_cardinalities() {
        let er = figure_1_dogs();
        let outcome = merge_er([&er, &er]).unwrap();
        assert_eq!(outcome.er, er);
        assert!(preserves_strata(&outcome));
    }

    #[test]
    fn section_3_dog_example() {
        // Two Dog entities with different attributes collapse into one
        // carrying all five (§3).
        let g1 = ErSchema::builder()
            .entity("Dog")
            .entity("Person")
            .attribute("Dog", "License#", "int")
            .attribute("Dog", "Breed", "breed")
            .relationship("Owns", [("owner", "Person"), ("dog", "Dog")])
            .build()
            .unwrap();
        let g2 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "Name", "string")
            .attribute("Dog", "Age", "int")
            .attribute("Dog", "Breed", "breed")
            .build()
            .unwrap();
        let outcome = merge_er([&g1, &g2]).unwrap();
        let dog_attrs = outcome.er.attributes_of(&Name::new("Dog"));
        assert_eq!(dog_attrs.len(), 4);
        assert!(dog_attrs.contains_key(&Label::new("License#")));
        assert!(dog_attrs.contains_key(&Label::new("Age")));
        assert!(outcome.er.relationship(&Name::new("Owns")).is_some());
    }

    #[test]
    fn stratum_clash_across_schemas() {
        let g1 = ErSchema::builder().entity("Dog").build().unwrap();
        let g2 = ErSchema::builder()
            .entity("Owner")
            .attribute("Owner", "pet", "Dog")
            .build()
            .unwrap();
        // g2 declares Dog as a domain (attribute target auto-declared).
        let err = merge_er([&g1, &g2]).unwrap_err();
        assert!(matches!(err, ErError::StratumClash { .. }));
    }

    #[test]
    fn figure_9_key_merge() {
        // Merging the Advisor/Committee schema (with its cardinalities)
        // against a plain copy yields the minimal satisfactory keys:
        // Advisor keyed by {victim} (absorbing the inherited committee
        // key), Committee by {faculty, victim}.
        let er = figure_9_advisor();
        let outcome = merge_er([&er]).unwrap();
        assert_eq!(
            outcome.keys.family(&Class::named("Advisor")),
            SuperkeyFamily::single(ks(&["victim"]))
        );
        assert_eq!(
            outcome.keys.family(&Class::named("Committee")),
            SuperkeyFamily::single(ks(&["faculty", "victim"]))
        );
        // The assignment is valid against the merged graph.
        assert!(outcome.keys.validate(outcome.core.proper.as_weak()).is_ok());
    }

    #[test]
    fn key_strengthening_across_schemas() {
        // §5 end: one schema declares the key, the other doesn't; the
        // merged schema carries it.
        let with_key = ErSchema::builder()
            .entity("F")
            .entity("S")
            .relationship("R", [("f", "F"), ("s", "S")])
            .cardinality("R", "f", Cardinality::One)
            .build()
            .unwrap();
        let without = ErSchema::builder()
            .entity("F")
            .entity("S")
            .relationship("R", [("f", "F"), ("s", "S")])
            .build()
            .unwrap();
        let outcome = merge_er([&with_key, &without]).unwrap();
        let family = outcome.keys.family(&Class::named("R"));
        assert!(family.is_superkey(&ks(&["s"])), "the 1-side key survives");
    }

    #[test]
    fn conflicting_attribute_domains_make_an_implicit_domain() {
        // Dog.age: int in one schema, years in the other. The merge
        // introduces the implicit domain {int,years} below both.
        let g1 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "age", "years")
            .build()
            .unwrap();
        let outcome = merge_er([&g1, &g2]).unwrap();
        assert!(preserves_strata(&outcome));
        let merged_domain = Name::new("{int,years}");
        assert!(outcome.er.domains().any(|d| d == &merged_domain));
        assert_eq!(
            outcome.er.attributes_of(&Name::new("Dog"))[&Label::new("age")],
            merged_domain
        );
        // The implicit domain refines both originals.
        assert!(outcome
            .er
            .domain_isa()
            .any(|(sub, sup)| sub == &merged_domain && sup.as_str() == "int"));
    }

    #[test]
    fn isa_incompatibility_surfaces_as_merge_error() {
        let g1 = ErSchema::builder()
            .entity("A")
            .entity("B")
            .entity_isa("A", "B")
            .build()
            .unwrap();
        let g2 = ErSchema::builder()
            .entity("A")
            .entity("B")
            .entity_isa("B", "A")
            .build()
            .unwrap();
        let err = merge_er([&g1, &g2]).unwrap_err();
        assert!(matches!(err, ErError::Merge(_)));
    }

    #[test]
    fn three_way_merge_is_order_independent() {
        let g1 = figure_1_dogs();
        let g2 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "license", "int")
            .build()
            .unwrap();
        let g3 = ErSchema::builder()
            .entity("Dog")
            .entity("Trainer")
            .relationship("TrainedBy", [("dog", "Dog"), ("by", "Trainer")])
            .build()
            .unwrap();
        let a = merge_er([&g1, &g2, &g3]).unwrap();
        let b = merge_er([&g3, &g1, &g2]).unwrap();
        let c = merge_er([&g2, &g3, &g1]).unwrap();
        assert_eq!(a.er, b.er);
        assert_eq!(b.er, c.er);
    }

    #[test]
    fn user_assertions_as_er_fragments() {
        // §3: an assertion is an elementary schema. "Guide-dog isa Dog"
        // as a tiny ER schema merged with Fig. 1's.
        let assertion = ErSchema::builder()
            .entity("Guide-dog")
            .entity("Pet")
            .entity_isa("Guide-dog", "Pet")
            .build()
            .unwrap();
        let outcome = merge_er([&figure_1_dogs(), &assertion]).unwrap();
        assert!(outcome
            .er
            .entity_isa()
            .any(|(sub, sup)| sub.as_str() == "Guide-dog" && sup.as_str() == "Pet"));
        assert!(preserves_strata(&outcome));
    }
}
