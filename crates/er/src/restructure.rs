//! ER-level restructuring: §7's "normal form" for the stratified model.
//!
//! The graph-model operations (`schema_merge_core::restructure`) move
//! between the direct-arrow and relationship-node presentations of a
//! connection. In the stratified ER model the same mismatch appears as
//! "an attribute in one schema may look like an entity in another
//! schema" (§7): one database records `Dog.kennel : kennel-id`, the
//! other declares a `Kennel` *entity*. The merge alone would present
//! both interpretations; these operations let the designer force a
//! single one *before* merging:
//!
//! * [`promote_attribute`] — attribute → entity plus a binary many-one
//!   relationship (cardinalities chosen so the §5 key translation
//!   recovers the attribute's functional reading);
//! * [`demote_entity`] — the inverse, collapsing a *bare* value entity
//!   reached through a bare binary relationship back into an attribute;
//! * [`normalize_pair`] — drives the `conflicts` detector: given two
//!   schemas and a [`NormalPolicy`], it applies the fixes that bring
//!   both sides to the chosen presentation and reports what it did (and
//!   what it could not do — per §3 the designer has the last word).

use std::collections::BTreeSet;
use std::fmt;

use schema_merge_core::{Label, Name};

use crate::conflicts::{detect_conflicts, StructuralConflict};
use crate::error::ErError;
use crate::model::{Cardinality, ErSchema, Stratum};

/// Why an ER restructuring operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestructureError {
    /// The attribute owner must be a declared entity.
    OwnerNotEntity(Name),
    /// The owner has no attribute with this label.
    NoSuchAttribute {
        /// The attribute's owner.
        owner: Name,
        /// The missing label.
        attribute: Label,
    },
    /// A name the operation wants to introduce is already declared (in
    /// a conflicting stratum).
    NameTaken {
        /// The contested name.
        name: Name,
        /// Its existing stratum.
        stratum: Stratum,
    },
    /// The relationship named in a demotion does not exist.
    NoSuchRelationship(Name),
    /// The demotion's preconditions failed; the string says which.
    NotDemotable {
        /// The relationship that was to be demoted.
        relationship: Name,
        /// Human-readable reason.
        reason: String,
    },
    /// The rebuilt schema failed ER validation.
    Er(ErError),
}

impl fmt::Display for RestructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestructureError::OwnerNotEntity(name) => {
                write!(f, "{name} is not a declared entity")
            }
            RestructureError::NoSuchAttribute { owner, attribute } => {
                write!(f, "{owner} has no attribute {attribute}")
            }
            RestructureError::NameTaken { name, stratum } => {
                write!(f, "{name} is already declared as a {stratum}")
            }
            RestructureError::NoSuchRelationship(name) => {
                write!(f, "no relationship named {name}")
            }
            RestructureError::NotDemotable {
                relationship,
                reason,
            } => {
                write!(f, "cannot demote through {relationship}: {reason}")
            }
            RestructureError::Er(err) => write!(f, "restructured schema is invalid: {err}"),
        }
    }
}

impl std::error::Error for RestructureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestructureError::Er(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ErError> for RestructureError {
    fn from(err: ErError) -> Self {
        RestructureError::Er(err)
    }
}

/// A fully-specified attribute promotion. [`Promotion::new`] derives
/// conventional names; the setters override them to match the other
/// schema's vocabulary (which is what makes the subsequent merge unify
/// the two presentations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Promotion {
    /// The entity whose attribute is promoted.
    pub owner: Name,
    /// The attribute label being promoted.
    pub attribute: Label,
    /// Name for the new entity (default: the attribute's spelling).
    pub entity: Name,
    /// Name for the new relationship (default: `<owner>-<attribute>`).
    pub relationship: Name,
    /// Role label pointing at the owner (default: `of`).
    pub owner_role: Label,
    /// Role label pointing at the new entity (default: `is`).
    pub entity_role: Label,
    /// Label under which the old domain hangs off the new entity
    /// (default: `value`).
    pub value_attribute: Label,
}

impl Promotion {
    /// A promotion of `owner.attribute` with conventional derived names.
    pub fn new(owner: impl Into<Name>, attribute: impl Into<Label>) -> Self {
        let owner = owner.into();
        let attribute = attribute.into();
        let entity = Name::new(attribute.as_str());
        let relationship = Name::new(format!("{owner}-{attribute}"));
        Promotion {
            owner,
            attribute,
            entity,
            relationship,
            owner_role: Label::new("of"),
            entity_role: Label::new("is"),
            value_attribute: Label::new("value"),
        }
    }

    /// Overrides the new entity's name.
    pub fn entity(mut self, name: impl Into<Name>) -> Self {
        self.entity = name.into();
        self
    }

    /// Overrides the new relationship's name.
    pub fn relationship(mut self, name: impl Into<Name>) -> Self {
        self.relationship = name.into();
        self
    }

    /// Overrides both role labels.
    pub fn roles(mut self, owner_role: impl Into<Label>, entity_role: impl Into<Label>) -> Self {
        self.owner_role = owner_role.into();
        self.entity_role = entity_role.into();
        self
    }

    /// Overrides the label for the carried-over domain attribute.
    pub fn value_attribute(mut self, label: impl Into<Label>) -> Self {
        self.value_attribute = label.into();
        self
    }
}

/// Promotes an attribute to an entity connected through a binary
/// many-one relationship.
///
/// `owner.attribute : D` becomes: entity `promotion.entity` with
/// attribute `value_attribute : D`, and relationship
/// `promotion.relationship` with roles `owner_role → owner` (cardinality
/// `N`) and `entity_role → entity` (cardinality `1`). The `1` on the
/// entity side preserves the attribute's functional reading: by the §5
/// translation the owner role alone keys the relationship, exactly as
/// the original single-valued attribute did.
pub fn promote_attribute(
    schema: &ErSchema,
    promotion: &Promotion,
) -> Result<ErSchema, RestructureError> {
    if schema.stratum(&promotion.owner) != Some(Stratum::Entity) {
        return Err(RestructureError::OwnerNotEntity(promotion.owner.clone()));
    }
    let Some(domain) = schema
        .attributes_of(&promotion.owner)
        .get(&promotion.attribute)
        .cloned()
    else {
        return Err(RestructureError::NoSuchAttribute {
            owner: promotion.owner.clone(),
            attribute: promotion.attribute.clone(),
        });
    };
    for (name, wanted) in [
        (&promotion.entity, Stratum::Entity),
        (&promotion.relationship, Stratum::Relationship),
    ] {
        if let Some(existing) = schema.stratum(name) {
            if existing != wanted {
                return Err(RestructureError::NameTaken {
                    name: name.clone(),
                    stratum: existing,
                });
            }
        }
    }

    let mut out = schema.clone();
    let attrs = out
        .attributes
        .get_mut(&promotion.owner)
        .expect("owner has attributes: checked above");
    attrs.remove(&promotion.attribute);
    if attrs.is_empty() {
        out.attributes.remove(&promotion.owner);
    }
    out.entities.insert(promotion.entity.clone());
    out.attributes
        .entry(promotion.entity.clone())
        .or_default()
        .insert(promotion.value_attribute.clone(), domain);
    let rel = out
        .relationships
        .entry(promotion.relationship.clone())
        .or_default();
    rel.roles
        .insert(promotion.owner_role.clone(), promotion.owner.clone());
    rel.roles
        .insert(promotion.entity_role.clone(), promotion.entity.clone());
    rel.cardinalities
        .insert(promotion.owner_role.clone(), Cardinality::Many);
    rel.cardinalities
        .insert(promotion.entity_role.clone(), Cardinality::One);
    out.validate()?;
    Ok(out)
}

/// Collapses a bare value entity, reached through a bare binary many-one
/// relationship, back into an attribute — the inverse of
/// [`promote_attribute`].
///
/// The relationship must be binary with exactly one role of cardinality
/// `1`; the entity on that role must carry exactly one attribute (whose
/// domain the restored attribute reuses), no isa edges, and participate
/// in no other relationship. The restored attribute on the owner is
/// labelled `new_attribute`.
pub fn demote_entity(
    schema: &ErSchema,
    relationship: &Name,
    new_attribute: impl Into<Label>,
) -> Result<ErSchema, RestructureError> {
    let new_attribute = new_attribute.into();
    let Some(rel) = schema.relationship(relationship) else {
        return Err(RestructureError::NoSuchRelationship(relationship.clone()));
    };
    let fail = |reason: &str| RestructureError::NotDemotable {
        relationship: relationship.clone(),
        reason: reason.to_string(),
    };
    if !rel.is_binary() {
        return Err(fail("the relationship is not binary"));
    }
    let one_roles: Vec<&Label> = rel
        .roles
        .keys()
        .filter(|role| rel.cardinality(role) == Cardinality::One)
        .collect();
    if one_roles.len() != 1 {
        return Err(fail("exactly one role must have cardinality 1"));
    }
    let value_role = one_roles[0].clone();
    let value_entity = rel.roles[&value_role].clone();
    let (owner_role, owner) = rel
        .roles
        .iter()
        .find(|(role, _)| **role != value_role)
        .map(|(role, entity)| (role.clone(), entity.clone()))
        .expect("binary relationship has a second role");
    let _ = owner_role;
    if owner == value_entity {
        return Err(fail("both roles point at the same entity"));
    }

    // The value entity must be bare.
    let value_attrs = schema.attributes_of(&value_entity);
    if value_attrs.len() != 1 {
        return Err(fail("the value entity must carry exactly one attribute"));
    }
    let domain = value_attrs.values().next().expect("one attribute").clone();
    if schema
        .entity_isa()
        .any(|(sub, sup)| *sub == value_entity || *sup == value_entity)
    {
        return Err(fail("the value entity participates in isa edges"));
    }
    let other_participation = schema.relationships().any(|(name, r)| {
        name != relationship && r.roles.values().any(|entity| *entity == value_entity)
    });
    if other_participation {
        return Err(fail(
            "the value entity participates in another relationship",
        ));
    }
    if schema.attributes_of(&owner).contains_key(&new_attribute) {
        return Err(fail(
            "the owner already has an attribute with the chosen label",
        ));
    }

    let mut out = schema.clone();
    out.relationships.remove(relationship);
    out.entities.remove(&value_entity);
    out.attributes.remove(&value_entity);
    out.attributes
        .entry(owner)
        .or_default()
        .insert(new_attribute, domain);
    out.validate()?;
    Ok(out)
}

/// Which presentation [`normalize_pair`] should drive both schemas to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalPolicy {
    /// Promote attributes so every shared concept is an entity reached
    /// through a relationship (the lossless direction; default).
    #[default]
    PreferEntity,
    /// Demote bare value entities to attributes where possible. Fixes
    /// that would lose structure are skipped and reported.
    PreferAttribute,
}

/// Which input schema a fix was applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The first schema passed to [`normalize_pair`].
    Left,
    /// The second schema passed to [`normalize_pair`].
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// One restructuring step `normalize_pair` performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFix {
    /// Which schema was rewritten.
    pub side: Side,
    /// What was done, for the designer's audit trail.
    pub description: String,
}

/// A conflict `normalize_pair` left for the designer.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedConflict {
    /// The conflict as detected.
    pub conflict: StructuralConflict,
    /// Why no automatic fix was applied.
    pub reason: String,
}

/// The outcome of [`normalize_pair`].
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizationOutcome {
    /// The (possibly rewritten) left schema.
    pub left: ErSchema,
    /// The (possibly rewritten) right schema.
    pub right: ErSchema,
    /// Fixes applied, in order.
    pub applied: Vec<AppliedFix>,
    /// Conflicts that remain for the designer.
    pub skipped: Vec<SkippedConflict>,
}

impl NormalizationOutcome {
    /// Whether every detected conflict was fixed.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Brings two ER schemas to a common structural presentation (§7's
/// "normal form") ahead of a merge.
///
/// Fixable conflicts are attribute-versus-entity mismatches
/// ([`StructuralConflict::AttributeVersusThing`] with an entity on the
/// thing side) and reified-versus-direct connections
/// ([`StructuralConflict::ReifiedVersusDirect`]); everything else — and
/// every fix whose preconditions fail — is returned in `skipped`. The
/// merge itself is never attempted here: per §3 the designer reviews the
/// outcome first.
pub fn normalize_pair(
    left: &ErSchema,
    right: &ErSchema,
    policy: NormalPolicy,
) -> NormalizationOutcome {
    let mut out = NormalizationOutcome {
        left: left.clone(),
        right: right.clone(),
        applied: Vec::new(),
        skipped: Vec::new(),
    };

    // Iterate to a fixpoint: fixing one conflict can expose or retire
    // others. Bounded by the number of initially detected conflicts plus
    // one sweep to confirm quiescence.
    let mut budget = detect_conflicts(left, right).len() + 1;
    loop {
        let conflicts = detect_conflicts(&out.left, &out.right);
        let mut progressed = false;
        for conflict in conflicts {
            if out
                .skipped
                .iter()
                .any(|skipped| skipped.conflict == conflict)
            {
                continue;
            }
            match try_fix(&mut out, &conflict, policy) {
                FixResult::Applied => {
                    progressed = true;
                    break; // re-detect from scratch
                }
                FixResult::Skipped(reason) => {
                    out.skipped.push(SkippedConflict { conflict, reason });
                }
            }
        }
        budget = budget.saturating_sub(1);
        if !progressed || budget == 0 {
            break;
        }
    }
    // A fix applied later in the loop can retire a conflict that was
    // recorded as skipped earlier; keep only the ones still detected.
    let remaining = detect_conflicts(&out.left, &out.right);
    out.skipped
        .retain(|skipped| remaining.contains(&skipped.conflict));
    out
}

enum FixResult {
    Applied,
    Skipped(String),
}

fn try_fix(
    out: &mut NormalizationOutcome,
    conflict: &StructuralConflict,
    policy: NormalPolicy,
) -> FixResult {
    match conflict {
        StructuralConflict::StratumMismatch { name, .. } => FixResult::Skipped(format!(
            "{name} changes stratum between the schemas; only a rename can resolve this"
        )),
        StructuralConflict::AttributeVersusThing {
            name,
            attribute_on,
            attribute_in_left,
            thing_stratum,
        } => {
            if *thing_stratum != Stratum::Entity {
                return FixResult::Skipped(format!(
                    "{name} is a {thing_stratum} on the other side; promotion only targets \
                     entities"
                ));
            }
            match policy {
                NormalPolicy::PreferEntity => {
                    let (schema, side) = if *attribute_in_left {
                        (&mut out.left, Side::Left)
                    } else {
                        (&mut out.right, Side::Right)
                    };
                    let promotion = Promotion::new(attribute_on.clone(), Label::new(name.as_str()));
                    match promote_attribute(schema, &promotion) {
                        Ok(fixed) => {
                            *schema = fixed;
                            out.applied.push(AppliedFix {
                                side,
                                description: format!(
                                    "promoted {attribute_on}.{name} to entity {name} via \
                                     relationship {}",
                                    promotion.relationship
                                ),
                            });
                            FixResult::Applied
                        }
                        Err(err) => FixResult::Skipped(err.to_string()),
                    }
                }
                NormalPolicy::PreferAttribute => {
                    // Demote on the thing side: find a demotable binary
                    // relationship reaching the entity.
                    let (schema, side) = if *attribute_in_left {
                        (&mut out.right, Side::Right)
                    } else {
                        (&mut out.left, Side::Left)
                    };
                    let candidate: Option<Name> = schema
                        .relationships()
                        .filter(|(_, rel)| {
                            rel.is_binary() && rel.roles.values().any(|entity| entity == name)
                        })
                        .map(|(rel_name, _)| rel_name.clone())
                        .find(|rel_name| {
                            demote_entity(schema, rel_name, Label::new(name.as_str())).is_ok()
                        });
                    match candidate {
                        Some(rel_name) => {
                            let fixed = demote_entity(schema, &rel_name, Label::new(name.as_str()))
                                .expect("probed above");
                            *schema = fixed;
                            out.applied.push(AppliedFix {
                                side,
                                description: format!(
                                    "demoted entity {name} (through {rel_name}) to an attribute"
                                ),
                            });
                            FixResult::Applied
                        }
                        None => FixResult::Skipped(format!(
                            "entity {name} has no demotable relationship; demotion would lose \
                             structure"
                        )),
                    }
                }
            }
        }
        StructuralConflict::ReifiedVersusDirect {
            relationship,
            participants,
            reified_in_left,
        } => {
            if policy == NormalPolicy::PreferAttribute {
                return FixResult::Skipped(format!(
                    "{relationship} stays reified: flattening a relationship node loses its \
                     identity; re-run with PreferEntity to promote the direct side instead"
                ));
            }
            let (direct_schema, reified_schema, side) = if *reified_in_left {
                (&mut out.right, &out.left, Side::Right)
            } else {
                (&mut out.left, &out.right, Side::Left)
            };
            let Some(rel) = reified_schema.relationship(relationship) else {
                return FixResult::Skipped(format!(
                    "{relationship} disappeared from the reified side"
                ));
            };
            let rel_roles = rel.roles.clone();
            // Find the direct attribute: on one participant, labelled
            // like the other participant or like the relationship.
            let participants: Vec<&Name> = participants.iter().collect();
            let mut fix: Option<(Name, Label, Name)> = None; // owner, attr, target entity
            for owner in &participants {
                for other in &participants {
                    if owner == other {
                        continue;
                    }
                    for label in direct_schema.attributes_of(owner).keys() {
                        if label.as_str().eq_ignore_ascii_case(other.as_str())
                            || label.as_str().eq_ignore_ascii_case(relationship.as_str())
                        {
                            fix = Some(((*owner).clone(), label.clone(), (*other).clone()));
                        }
                    }
                }
            }
            let Some((owner, attribute, target)) = fix else {
                return FixResult::Skipped(format!(
                    "no direct attribute matching {relationship} found on the other side"
                ));
            };
            // Mirror the reified side's vocabulary so the merge unifies
            // the two presentations.
            let owner_role = rel_roles
                .iter()
                .find(|(_, entity)| **entity == owner)
                .map(|(role, _)| role.clone());
            let target_role = rel_roles
                .iter()
                .find(|(_, entity)| **entity == target)
                .map(|(role, _)| role.clone());
            let (Some(owner_role), Some(target_role)) = (owner_role, target_role) else {
                return FixResult::Skipped(format!(
                    "{relationship}'s roles do not cover both participants"
                ));
            };
            let promotion = Promotion::new(owner.clone(), attribute.clone())
                .entity(target.clone())
                .relationship(relationship.clone())
                .roles(owner_role, target_role);
            match promote_attribute(direct_schema, &promotion) {
                Ok(fixed) => {
                    *direct_schema = fixed;
                    out.applied.push(AppliedFix {
                        side,
                        description: format!(
                            "reified {owner}.{attribute} into relationship {relationship} with \
                             entity {target}"
                        ),
                    });
                    FixResult::Applied
                }
                Err(err) => FixResult::Skipped(err.to_string()),
            }
        }
    }
}

/// The names `normalize_pair` would need free on the attribute side for
/// an attribute-versus-entity fix — exposed so interactive tools can
/// warn about collisions before committing.
pub fn promotion_name_requirements(promotion: &Promotion) -> BTreeSet<Name> {
    let mut names = BTreeSet::new();
    names.insert(promotion.entity.clone());
    names.insert(promotion.relationship.clone());
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::merge_er;

    fn n(s: &str) -> Name {
        Name::new(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    /// Left database: kennels are a mere attribute of dogs.
    fn attribute_view() -> ErSchema {
        ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "kennel", "kennel-id")
            .attribute("Dog", "age", "int")
            .build()
            .expect("valid")
    }

    /// Right database: kennels are entities in their own right.
    fn entity_view() -> ErSchema {
        ErSchema::builder()
            .entity("Dog")
            .entity("kennel")
            .attribute("kennel", "addr", "place")
            .build()
            .expect("valid")
    }

    #[test]
    fn promotion_builds_the_textbook_shape() {
        let g = attribute_view();
        let promotion = Promotion::new("Dog", "kennel");
        let promoted = promote_attribute(&g, &promotion).expect("promotes");

        assert_eq!(promoted.stratum(&n("kennel")), Some(Stratum::Entity));
        let rel = promoted
            .relationship(&n("Dog-kennel"))
            .expect("relationship exists");
        assert_eq!(rel.roles[&l("of")], n("Dog"));
        assert_eq!(rel.roles[&l("is")], n("kennel"));
        assert_eq!(rel.cardinality(&l("of")), Cardinality::Many);
        assert_eq!(rel.cardinality(&l("is")), Cardinality::One);
        // The old domain survives as the value attribute.
        assert_eq!(
            promoted.attributes_of(&n("kennel"))[&l("value")],
            n("kennel-id")
        );
        // The owner keeps its other attributes and loses the promoted one.
        assert!(promoted.attributes_of(&n("Dog")).contains_key(&l("age")));
        assert!(!promoted.attributes_of(&n("Dog")).contains_key(&l("kennel")));
    }

    #[test]
    fn promotion_requires_an_entity_owner_and_existing_attribute() {
        let g = attribute_view();
        let err = promote_attribute(&g, &Promotion::new("kennel-id", "x")).unwrap_err();
        assert!(matches!(err, RestructureError::OwnerNotEntity(_)));
        let err = promote_attribute(&g, &Promotion::new("Dog", "missing")).unwrap_err();
        assert!(matches!(err, RestructureError::NoSuchAttribute { .. }));
    }

    #[test]
    fn promotion_rejects_stratum_collisions() {
        let g = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "kind", "breed")
            .build()
            .expect("valid");
        // "kind"'s default entity name collides with the domain "breed"
        // only if we ask for it explicitly.
        let promotion = Promotion::new("Dog", "kind").entity("breed");
        let err = promote_attribute(&g, &promotion).unwrap_err();
        assert!(matches!(err, RestructureError::NameTaken { .. }));
    }

    #[test]
    fn demotion_inverts_promotion() {
        let g = attribute_view();
        let promotion = Promotion::new("Dog", "kennel");
        let promoted = promote_attribute(&g, &promotion).expect("promotes");
        let demoted = demote_entity(&promoted, &n("Dog-kennel"), l("kennel")).expect("demotes");
        assert_eq!(demoted, g);
    }

    #[test]
    fn demotion_preconditions() {
        let err = demote_entity(&attribute_view(), &n("Ghost"), l("x")).unwrap_err();
        assert!(matches!(err, RestructureError::NoSuchRelationship(_)));

        // Value entity with extra structure is protected.
        let g = ErSchema::builder()
            .entity("Dog")
            .entity("Kennel")
            .attribute("Kennel", "id", "kennel-id")
            .attribute("Kennel", "addr", "place")
            .relationship("Lives", [("occ", "Dog"), ("home", "Kennel")])
            .cardinality("Lives", "home", Cardinality::One)
            .build()
            .expect("valid");
        let err = demote_entity(&g, &n("Lives"), l("kennel")).unwrap_err();
        assert!(matches!(err, RestructureError::NotDemotable { .. }));

        // No `1` role: the connection is many-many, not an attribute.
        let g = ErSchema::builder()
            .entity("Dog")
            .entity("Kennel")
            .attribute("Kennel", "id", "kennel-id")
            .relationship("Lives", [("occ", "Dog"), ("home", "Kennel")])
            .build()
            .expect("valid");
        let err = demote_entity(&g, &n("Lives"), l("kennel")).unwrap_err();
        assert!(matches!(err, RestructureError::NotDemotable { .. }));
    }

    #[test]
    fn demotion_refuses_shared_value_entities() {
        let g = ErSchema::builder()
            .entity("Dog")
            .entity("Cat")
            .entity("Chip")
            .attribute("Chip", "serial", "int")
            .relationship("DogChip", [("of", "Dog"), ("is", "Chip")])
            .cardinality("DogChip", "is", Cardinality::One)
            .relationship("CatChip", [("of", "Cat"), ("is", "Chip")])
            .cardinality("CatChip", "is", Cardinality::One)
            .build()
            .expect("valid");
        let err = demote_entity(&g, &n("DogChip"), l("chip")).unwrap_err();
        assert!(matches!(err, RestructureError::NotDemotable { .. }));
    }

    #[test]
    fn normalize_prefers_entities_and_clears_the_conflict() {
        let left = attribute_view();
        let right = entity_view();
        assert!(!detect_conflicts(&left, &right).is_empty());

        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferEntity);
        assert!(outcome.is_clean(), "skipped: {:?}", outcome.skipped);
        assert_eq!(outcome.applied.len(), 1);
        assert_eq!(outcome.applied[0].side, Side::Left);
        assert!(detect_conflicts(&outcome.left, &outcome.right).is_empty());

        // And the normalized pair merges: one kennel entity, carrying
        // both the value attribute and the right side's addr.
        let merged = merge_er([&outcome.left, &outcome.right]).expect("merges");
        assert_eq!(merged.er.stratum(&n("kennel")), Some(Stratum::Entity));
        let attrs = merged.er.attributes_of(&n("kennel"));
        assert!(attrs.contains_key(&l("value")));
        assert!(attrs.contains_key(&l("addr")));
    }

    #[test]
    fn normalize_prefer_attribute_demotes_bare_entities() {
        // Right side's kennel is bare (one attribute, one demotable
        // relationship), so PreferAttribute collapses it.
        let left = attribute_view();
        let right = ErSchema::builder()
            .entity("Dog")
            .entity("kennel")
            .attribute("kennel", "id", "kennel-id")
            .relationship("Dog-kennel", [("of", "Dog"), ("is", "kennel")])
            .cardinality("Dog-kennel", "is", Cardinality::One)
            .build()
            .expect("valid");
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferAttribute);
        assert!(outcome.is_clean(), "skipped: {:?}", outcome.skipped);
        assert_eq!(outcome.applied.len(), 1);
        assert_eq!(outcome.applied[0].side, Side::Right);
        assert!(outcome.right.relationship(&n("Dog-kennel")).is_none());
        assert_eq!(outcome.right.stratum(&n("kennel")), None);
        assert!(outcome
            .right
            .attributes_of(&n("Dog"))
            .contains_key(&l("kennel")));
    }

    #[test]
    fn normalize_skips_what_it_cannot_fix() {
        // The entity has real structure; PreferAttribute must not lose it.
        let left = attribute_view();
        let right = entity_view(); // kennel has no relationship to demote through
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferAttribute);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.applied, vec![]);
        assert_eq!(outcome.skipped.len(), 1);
        // Inputs untouched.
        assert_eq!(outcome.left, left);
        assert_eq!(outcome.right, right);
    }

    #[test]
    fn normalize_fixes_reified_versus_direct() {
        // Left reifies ownership; right draws it as a direct attribute
        // labelled like the relationship.
        let left = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .relationship("Owns", [("owner", "Person"), ("pet", "Dog")])
            .build()
            .expect("valid");
        let right = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .attribute("Person", "owns", "dog-id")
            .build()
            .expect("valid");
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferEntity);
        assert!(outcome.is_clean(), "skipped: {:?}", outcome.skipped);
        let rel = outcome
            .right
            .relationship(&n("Owns"))
            .expect("reified on the right");
        assert_eq!(rel.roles[&l("owner")], n("Person"));
        assert_eq!(rel.roles[&l("pet")], n("Dog"));
        // The two sides now merge into a single Owns relationship.
        let merged = merge_er([&outcome.left, &outcome.right]).expect("merges");
        assert_eq!(merged.er.stratum(&n("Owns")), Some(Stratum::Relationship));
    }

    #[test]
    fn normalize_reified_versus_direct_stays_put_under_prefer_attribute() {
        let left = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .relationship("Owns", [("owner", "Person"), ("pet", "Dog")])
            .build()
            .expect("valid");
        let right = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .attribute("Person", "owns", "dog-id")
            .build()
            .expect("valid");
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferAttribute);
        assert!(!outcome.is_clean());
        assert_eq!(outcome.left, left);
        assert_eq!(outcome.right, right);
    }

    #[test]
    fn clean_pairs_are_untouched() {
        let g1 = crate::model::figure_1_dogs();
        let g2 = crate::model::figure_9_advisor();
        let outcome = normalize_pair(&g1, &g2, NormalPolicy::PreferEntity);
        assert!(outcome.is_clean());
        assert!(outcome.applied.is_empty());
        assert_eq!(outcome.left, g1);
        assert_eq!(outcome.right, g2);
    }

    #[test]
    fn name_requirements_helper() {
        let promotion = Promotion::new("Dog", "kennel");
        let names = promotion_name_requirements(&promotion);
        assert!(names.contains(&n("kennel")));
        assert!(names.contains(&n("Dog-kennel")));
    }
}
