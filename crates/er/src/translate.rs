//! Translation between the ER model and the paper's graph model (§2).
//!
//! "For the E-R model, we stratify C into three classes (attribute
//! domains, entities and relationships) and again place certain
//! restrictions on the edges." Merging then happens in the graph model,
//! and §7 asserts the merge *preserves strata*, so the result translates
//! back. [`to_core`] and [`from_core`] implement the two directions;
//! [`from_core`] doubles as the strata-preservation checker.

use std::collections::BTreeMap;

use schema_merge_core::{Class, Name, WeakSchema};

use crate::model::{ErSchema, Stratum};
use crate::ErError;

/// The strata assignment accompanying a translated schema.
pub type Strata = BTreeMap<Name, Stratum>;

/// ER names translate to classes through the origin syntax, so implicit
/// classes survive a round-trip through the ER model.
fn class_of(name: &Name) -> Class {
    Class::from_origin_syntax(name.as_str())
}

/// Translates an ER schema into the graph model: every domain, entity and
/// relationship becomes a class; attributes and roles become arrows; isa
/// edges become specializations.
///
/// Names in the implicit-origin syntax (`{a,b}` / `{a|b}`) — produced
/// when a previous merge's result was read back into the ER model — are
/// recognized and become implicit classes again, so repeated merging
/// keeps its order-independence (see `Class::from_origin_syntax`).
pub fn to_core(er: &ErSchema) -> (WeakSchema, Strata) {
    let mut builder = WeakSchema::builder();
    for d in er.domains() {
        builder = builder.class(class_of(d));
    }
    for e in er.entities() {
        builder = builder.class(class_of(e));
    }
    for (name, rel) in er.relationships() {
        builder = builder.class(class_of(name));
        for (role, entity) in &rel.roles {
            builder = builder.arrow(class_of(name), role.clone(), class_of(entity));
        }
    }
    for (owner, attrs) in er.all_attributes() {
        for (attr, domain) in attrs {
            builder = builder.arrow(class_of(owner), attr.clone(), class_of(domain));
        }
    }
    for (sub, sup) in er.entity_isa() {
        builder = builder.specialize(class_of(sub), class_of(sup));
    }
    for (sub, sup) in er.relationship_isa() {
        builder = builder.specialize(class_of(sub), class_of(sup));
    }
    for (sub, sup) in er.domain_isa() {
        builder = builder.specialize(class_of(sub), class_of(sup));
    }
    let schema = builder
        .build()
        .expect("ER isa edges are validated acyclic per stratum");
    (schema, er.strata())
}

/// The stratum of a class under a strata assignment. Implicit classes
/// inherit the (necessarily unanimous) stratum of their origins.
pub fn class_stratum(class: &Class, strata: &Strata) -> Result<Stratum, ErError> {
    match class {
        Class::Named(name) => strata
            .get(name)
            .copied()
            .ok_or_else(|| ErError::Undeclared(name.clone())),
        Class::Implicit(origin) | Class::ImplicitUnion(origin) => {
            let mut found: Option<Stratum> = None;
            for name in origin.iter() {
                let s = strata
                    .get(name)
                    .copied()
                    .ok_or_else(|| ErError::Undeclared(name.clone()))?;
                match found {
                    None => found = Some(s),
                    Some(prev) if prev == s => {}
                    Some(prev) => {
                        return Err(ErError::NotStratified {
                            class: class.clone(),
                            reason: format!(
                                "implicit class mixes strata: {name} is a {s}, earlier origin \
                                 was a {prev}"
                            ),
                        })
                    }
                }
            }
            found.ok_or_else(|| ErError::NotStratified {
                class: class.clone(),
                reason: "implicit class with empty origin".into(),
            })
        }
    }
}

/// The ER-side name of a class: named classes keep their name; implicit
/// classes are named by their printed origin set (`{C,D}`), matching the
/// paper's convention that the name "describes its own origin".
pub fn class_name(class: &Class) -> Name {
    match class {
        Class::Named(name) => name.clone(),
        other => Name::new(other.to_string()),
    }
}

/// Translates a graph schema back into the ER model under a strata
/// assignment, verifying the stratification restrictions:
///
/// * arrows from entities go to domains (attributes),
/// * arrows from relationships go to entities (roles) or domains
///   (relationship attributes),
/// * domains have no outgoing arrows,
/// * specializations stay within one stratum.
///
/// Succeeding is exactly what "the merge preserves strata" (§7) promises
/// for merge results of translated ER schemas.
pub fn from_core(schema: &WeakSchema, strata: &Strata) -> Result<ErSchema, ErError> {
    let mut builder = ErSchema::builder();
    let mut stratum_of: BTreeMap<Class, Stratum> = BTreeMap::new();
    for class in schema.classes() {
        let stratum = class_stratum(class, strata)?;
        stratum_of.insert(class.clone(), stratum);
        let name = class_name(class);
        builder = match stratum {
            Stratum::Domain => builder.domain(name),
            Stratum::Entity => builder.entity(name),
            Stratum::Relationship => builder.relationship(name, Vec::<(&str, &str)>::new()),
        };
    }

    // Only the *canonical* information needs to be carried over: W1/W2
    // closure is re-derivable, and re-declaring every closed arrow would
    // make e.g. roles appear on every specialization. We therefore keep an
    // arrow (p, a, q) only when it is not derivable from another kept
    // arrow — i.e. when no proper source-ancestor has the arrow and q is
    // minimal among p's a-targets.
    for (src, label, tgt) in schema.arrow_triples() {
        let derivable_from_super = schema
            .strict_supers(src)
            .iter()
            .any(|sup| schema.has_arrow(sup, label, tgt));
        let tighter_target_exists = schema
            .arrow_targets(src, label)
            .iter()
            .any(|other| other != tgt && schema.specializes(other, tgt));
        if derivable_from_super || tighter_target_exists {
            continue;
        }
        let src_stratum = stratum_of[src];
        let tgt_stratum = stratum_of[tgt];
        let (src_name, tgt_name) = (class_name(src), class_name(tgt));
        builder = match (src_stratum, tgt_stratum) {
            (Stratum::Entity, Stratum::Domain) | (Stratum::Relationship, Stratum::Domain) => {
                builder.attribute(src_name, label.clone(), tgt_name)
            }
            (Stratum::Relationship, Stratum::Entity) => {
                builder.role(src_name, label.clone(), tgt_name)
            }
            (from, to) => {
                return Err(ErError::NotStratified {
                    class: src.clone(),
                    reason: format!("arrow {src} --{label}--> {tgt} runs from a {from} to a {to}"),
                })
            }
        };
    }

    // Specializations: keep the transitive reduction within each stratum.
    for (sub, sup) in schema.specialization_pairs() {
        let covered_by_mid = schema
            .strict_supers(sub)
            .iter()
            .any(|mid| mid != sup && schema.specializes(mid, sup));
        if covered_by_mid {
            continue;
        }
        let (s1, s2) = (stratum_of[sub], stratum_of[sup]);
        if s1 != s2 {
            return Err(ErError::NotStratified {
                class: sub.clone(),
                reason: format!("{sub} ({s1}) specializes {sup} ({s2})"),
            });
        }
        let (sub_name, sup_name) = (class_name(sub), class_name(sup));
        builder = match s1 {
            Stratum::Entity => builder.entity_isa(sub_name, sup_name),
            Stratum::Relationship => builder.relationship_isa(sub_name, sup_name),
            Stratum::Domain => builder.domain_isa(sub_name, sup_name),
        };
    }

    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::figure_1_dogs;
    use schema_merge_core::Label;

    fn c(s: &str) -> Class {
        Class::named(s)
    }

    fn l(s: &str) -> Label {
        Label::new(s)
    }

    #[test]
    fn figure_1_translates_to_figure_2() {
        // The paper's Fig. 2 is the graph translation of Fig. 1.
        let (schema, strata) = to_core(&figure_1_dogs());
        // Roles become arrows from the relationship.
        assert!(schema.has_arrow(&c("Lives"), &l("occ"), &c("Dog")));
        assert!(schema.has_arrow(&c("Lives"), &l("home"), &c("Kennel")));
        assert!(schema.has_arrow(&c("Lives"), &l("owner"), &c("person")));
        // Attributes become arrows to domains.
        assert!(schema.has_arrow(&c("Dog"), &l("age"), &c("int")));
        assert!(schema.has_arrow(&c("Kennel"), &l("addr"), &c("place")));
        // Isa becomes specialization; closure gives the inherited arrows
        // that Fig. 2 leaves implicit.
        assert!(schema.specializes(&c("Guide-dog"), &c("Dog")));
        assert!(schema.has_arrow(&c("Guide-dog"), &l("age"), &c("int")));
        assert!(schema.has_arrow(&c("Police-dog"), &l("kind"), &c("breed")));
        assert_eq!(strata[&Name::new("Lives")], Stratum::Relationship);
        assert_eq!(strata[&Name::new("place")], Stratum::Domain);
    }

    #[test]
    fn round_trip_is_identity() {
        let er = figure_1_dogs();
        let (schema, strata) = to_core(&er);
        let back = from_core(&schema, &strata).unwrap();
        assert_eq!(back, er);
    }

    #[test]
    fn round_trip_with_relationship_isa() {
        let er = crate::model::figure_9_advisor();
        let (schema, strata) = to_core(&er);
        let back = from_core(&schema, &strata).unwrap();
        // `from_core` performs a transitive reduction, so Advisor's roles
        // (inherited from Committee through the isa edge) are not
        // re-declared; and cardinalities are carried by keys, not by the
        // graph (§5). The *closed graph* round-trips exactly.
        let (schema_again, strata_again) = to_core(&back);
        assert_eq!(schema_again, schema);
        assert_eq!(strata_again, strata);
        assert!(back
            .relationship_isa()
            .any(|(sub, sup)| sub.as_str() == "Advisor" && sup.as_str() == "Committee"));
        assert!(back
            .relationship(&Name::new("Advisor"))
            .unwrap()
            .roles
            .is_empty());
    }

    #[test]
    fn from_core_rejects_entity_to_entity_arrow() {
        let schema = WeakSchema::builder()
            .arrow("Dog", "likes", "Dog")
            .build()
            .unwrap();
        let mut strata = Strata::new();
        strata.insert(Name::new("Dog"), Stratum::Entity);
        let err = from_core(&schema, &strata).unwrap_err();
        assert!(matches!(err, ErError::NotStratified { .. }));
    }

    #[test]
    fn from_core_rejects_cross_stratum_isa() {
        let schema = WeakSchema::builder()
            .specialize("Lives", "Dog")
            .build()
            .unwrap();
        let mut strata = Strata::new();
        strata.insert(Name::new("Dog"), Stratum::Entity);
        strata.insert(Name::new("Lives"), Stratum::Relationship);
        let err = from_core(&schema, &strata).unwrap_err();
        assert!(matches!(err, ErError::NotStratified { .. }));
    }

    #[test]
    fn from_core_rejects_unknown_names() {
        let schema = WeakSchema::builder().class("Ghost").build().unwrap();
        let err = from_core(&schema, &Strata::new()).unwrap_err();
        assert!(matches!(err, ErError::Undeclared(_)));
    }

    #[test]
    fn implicit_class_stratum_is_inferred_from_origins() {
        let x = Class::implicit([c("Dog"), c("Cat")]);
        let mut strata = Strata::new();
        strata.insert(Name::new("Dog"), Stratum::Entity);
        strata.insert(Name::new("Cat"), Stratum::Entity);
        assert_eq!(class_stratum(&x, &strata).unwrap(), Stratum::Entity);

        strata.insert(Name::new("Cat"), Stratum::Domain);
        assert!(matches!(
            class_stratum(&x, &strata),
            Err(ErError::NotStratified { .. })
        ));
    }

    #[test]
    fn implicit_entity_maps_back_as_entity() {
        let x = Class::implicit([c("Dog"), c("Pet")]);
        let schema = WeakSchema::builder()
            .specialize(x.clone(), "Dog")
            .specialize(x.clone(), "Pet")
            .build()
            .unwrap();
        let mut strata = Strata::new();
        strata.insert(Name::new("Dog"), Stratum::Entity);
        strata.insert(Name::new("Pet"), Stratum::Entity);
        let er = from_core(&schema, &strata).unwrap();
        let name = Name::new("{Dog,Pet}");
        assert!(er.entities().any(|e| e == &name));
        assert!(er
            .entity_isa()
            .any(|(sub, sup)| sub == &name && sup.as_str() == "Dog"));
    }

    #[test]
    fn closure_noise_is_reduced_on_translation_back() {
        // Guide-dog inherits Dog's attribute in the closed graph; the ER
        // schema read back should declare it only on Dog.
        let er = figure_1_dogs();
        let (schema, strata) = to_core(&er);
        let back = from_core(&schema, &strata).unwrap();
        assert!(back.attributes_of(&Name::new("Guide-dog")).is_empty());
        assert_eq!(back.attributes_of(&Name::new("Dog")).len(), 2);
    }
}
