//! Structural-conflict detection (§7, second open issue).
//!
//! "Not only can 'naming' conflicts occur (such as homonyms and
//! synonyms), but 'structural' conflicts can occur. For example, an
//! attribute in one schema may look like an entity in another schema, or
//! a many-one relationship may be a single arrow in one schema but
//! introduce a relationship node in another. In these cases, the merge
//! will not 'resolve' the differences but present both interpretations."
//!
//! The merge itself stays agnostic (as the paper prescribes); this module
//! gives an interactive tool the *report* it needs to prompt the designer
//! for restructuring before merging.

use std::collections::BTreeSet;
use std::fmt;

use schema_merge_core::Name;

use crate::model::{ErSchema, Stratum};

/// One detected structural conflict between two ER schemas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralConflict {
    /// The same name is declared in different strata (entity vs domain vs
    /// relationship) — the merge would be rejected outright.
    StratumMismatch {
        /// The clashing name.
        name: Name,
        /// Its stratum in the left schema.
        left: Stratum,
        /// Its stratum in the right schema.
        right: Stratum,
    },
    /// A name used as an *attribute label* in one schema is a declared
    /// *thing* (entity/domain/relationship) in the other — the classic
    /// "attribute here, entity there" modelling mismatch. Mergeable (the
    /// vocabularies `N` and `L` are disjoint) but almost certainly
    /// unintended.
    AttributeVersusThing {
        /// The shared spelling.
        name: Name,
        /// The owner of the attribute usage.
        attribute_on: Name,
        /// Which schema uses it as an attribute: true = left.
        attribute_in_left: bool,
        /// The stratum of the declared thing in the other schema.
        thing_stratum: Stratum,
    },
    /// Two entities are connected by a relationship node in one schema
    /// but by a direct attribute-like edge in the other (a many-one
    /// relationship flattened to an arrow). Presented for restructuring.
    ReifiedVersusDirect {
        /// The relationship node (in the schema that reifies).
        relationship: Name,
        /// The entities it connects.
        participants: BTreeSet<Name>,
        /// Whether the reified form is in the left schema.
        reified_in_left: bool,
    },
}

impl fmt::Display for StructuralConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralConflict::StratumMismatch { name, left, right } => {
                write!(
                    f,
                    "{name} is a {left} on one side but a {right} on the other"
                )
            }
            StructuralConflict::AttributeVersusThing {
                name,
                attribute_on,
                attribute_in_left,
                thing_stratum,
            } => {
                let (attr_side, thing_side) = if *attribute_in_left {
                    ("left", "right")
                } else {
                    ("right", "left")
                };
                write!(
                    f,
                    "{name} is an attribute of {attribute_on} in the {attr_side} schema but a \
                     {thing_stratum} in the {thing_side} schema"
                )
            }
            StructuralConflict::ReifiedVersusDirect {
                relationship,
                participants,
                reified_in_left,
            } => {
                let side = if *reified_in_left { "left" } else { "right" };
                let names: Vec<String> = participants.iter().map(|n| n.to_string()).collect();
                write!(
                    f,
                    "{relationship} reifies a connection between {} in the {side} schema that \
                     the other schema draws as a direct attribute",
                    names.join(" and ")
                )
            }
        }
    }
}

/// Scans two ER schemas for structural conflicts worth showing the
/// designer before merging. A non-empty result does not block the merge;
/// it flags places where the merge would "present both interpretations".
pub fn detect_conflicts(left: &ErSchema, right: &ErSchema) -> Vec<StructuralConflict> {
    let mut conflicts = Vec::new();

    // 1. Stratum mismatches (these WILL fail the merge).
    let left_strata = left.strata();
    let right_strata = right.strata();
    for (name, &left_stratum) in &left_strata {
        if let Some(&right_stratum) = right_strata.get(name) {
            if left_stratum != right_stratum {
                conflicts.push(StructuralConflict::StratumMismatch {
                    name: name.clone(),
                    left: left_stratum,
                    right: right_stratum,
                });
            }
        }
    }

    // 2. Attribute-label-vs-thing mismatches, both directions.
    for (a, b, a_is_left) in [(left, right, true), (right, left, false)] {
        for (owner, attrs) in a.all_attributes() {
            for label in attrs.keys() {
                let as_name = Name::new(label.as_str());
                if let Some(stratum) = b.stratum(&as_name) {
                    // Only flag when the attribute side does NOT also
                    // declare the thing (then it is just reuse of a word).
                    if a.stratum(&as_name).is_none() {
                        conflicts.push(StructuralConflict::AttributeVersusThing {
                            name: as_name,
                            attribute_on: owner.clone(),
                            attribute_in_left: a_is_left,
                            thing_stratum: stratum,
                        });
                    }
                }
            }
        }
    }

    // 3. Reified-vs-direct connections: a binary relationship in one
    // schema whose two participants are linked by a direct attribute
    // label in the other (entity attribute named like the relationship's
    // role or relationship).
    for (a, b, a_is_left) in [(left, right, true), (right, left, false)] {
        for (rel_name, rel) in a.relationships() {
            if !rel.is_binary() {
                continue;
            }
            let participants: BTreeSet<Name> = rel.roles.values().cloned().collect();
            if participants.len() != 2 {
                continue;
            }
            let mut iter = participants.iter();
            let (e1, e2) = (iter.next().expect("two"), iter.next().expect("two"));
            // Direct edge in b: an attribute on e1 whose label spells e2
            // or the relationship (or vice versa).
            let direct = |owner: &Name, target: &Name| {
                b.attributes_of(owner).keys().any(|label| {
                    label.as_str().eq_ignore_ascii_case(target.as_str())
                        || label.as_str().eq_ignore_ascii_case(rel_name.as_str())
                })
            };
            if direct(e1, e2) || direct(e2, e1) {
                conflicts.push(StructuralConflict::ReifiedVersusDirect {
                    relationship: rel_name.clone(),
                    participants,
                    reified_in_left: a_is_left,
                });
            }
        }
    }

    conflicts.sort_by_key(|c| c.to_string());
    conflicts.dedup();
    conflicts
}

/// Convenience: whether the only conflicts (if any) are mergeable — i.e.
/// no [`StructuralConflict::StratumMismatch`] entries.
pub fn mergeable(conflicts: &[StructuralConflict]) -> bool {
    !conflicts
        .iter()
        .any(|c| matches!(c, StructuralConflict::StratumMismatch { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErSchema;
    use schema_merge_core::Label;

    #[test]
    fn clean_schemas_report_nothing() {
        let g1 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "age", "int")
            .build()
            .unwrap();
        let g2 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "name", "text")
            .build()
            .unwrap();
        let conflicts = detect_conflicts(&g1, &g2);
        assert!(conflicts.is_empty());
        assert!(mergeable(&conflicts));
    }

    #[test]
    fn stratum_mismatch_is_detected() {
        let g1 = ErSchema::builder().entity("Dog").build().unwrap();
        let g2 = ErSchema::builder().domain("Dog").build().unwrap();
        let conflicts = detect_conflicts(&g1, &g2);
        assert_eq!(conflicts.len(), 1);
        assert!(matches!(
            conflicts[0],
            StructuralConflict::StratumMismatch { .. }
        ));
        assert!(!mergeable(&conflicts));
        assert!(conflicts[0].to_string().contains("Dog"));
    }

    #[test]
    fn attribute_versus_entity_is_detected() {
        // §7's example: `owner` is an attribute in one schema, an entity
        // (with its own attributes) in the other.
        let g1 = ErSchema::builder()
            .entity("Dog")
            .attribute("Dog", "owner", "text")
            .build()
            .unwrap();
        let g2 = ErSchema::builder()
            .entity("Dog")
            .entity("owner")
            .attribute("owner", "name", "text")
            .build()
            .unwrap();
        let conflicts = detect_conflicts(&g1, &g2);
        assert_eq!(conflicts.len(), 1);
        match &conflicts[0] {
            StructuralConflict::AttributeVersusThing {
                name,
                attribute_on,
                attribute_in_left,
                thing_stratum,
            } => {
                assert_eq!(name.as_str(), "owner");
                assert_eq!(attribute_on.as_str(), "Dog");
                assert!(*attribute_in_left);
                assert_eq!(*thing_stratum, Stratum::Entity);
            }
            other => panic!("unexpected conflict {other}"),
        }
        assert!(mergeable(&conflicts), "flagged but not blocking");
    }

    #[test]
    fn same_side_reuse_is_not_flagged() {
        // A schema that uses `owner` both as an entity and as one of its
        // own attribute labels is (strange but) internally consistent;
        // only cross-schema disagreements are reported.
        let g = ErSchema::builder()
            .entity("Dog")
            .entity("owner")
            .attribute("Dog", "owner", "text")
            .build()
            .unwrap();
        let conflicts = detect_conflicts(&g, &g);
        assert!(conflicts.is_empty());
    }

    #[test]
    fn reified_versus_direct_is_detected() {
        // One schema reifies ownership as a relationship node; the other
        // draws a direct `owns`-labelled attribute between the entities.
        let reified = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .relationship("Owns", [("owner", "Person"), ("pet", "Dog")])
            .build()
            .unwrap();
        let direct = ErSchema::builder()
            .entity("Person")
            .entity("Dog")
            .attribute("Person", "owns", "text")
            .build()
            .unwrap();
        let conflicts = detect_conflicts(&reified, &direct);
        assert!(conflicts
            .iter()
            .any(|c| matches!(c, StructuralConflict::ReifiedVersusDirect { .. })));
        let text = conflicts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Owns"), "{text}");
    }

    #[test]
    fn display_is_designer_readable() {
        let conflict = StructuralConflict::AttributeVersusThing {
            name: Name::new("owner"),
            attribute_on: Name::new("Dog"),
            attribute_in_left: false,
            thing_stratum: Stratum::Entity,
        };
        assert_eq!(
            conflict.to_string(),
            "owner is an attribute of Dog in the right schema but a entity in the left schema"
        );
        let _ = Label::new("owner");
    }
}
