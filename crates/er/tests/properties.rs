//! Property-based tests of the ER front-end: merge laws survive the
//! stratified translation, strata are always preserved, and the
//! cardinality ↔ key correspondence is exact for binary relationships.

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::Name;
use schema_merge_er::{
    from_core, keys_to_cardinalities, merge_er, preserves_strata, relationship_key_family, to_core,
    Cardinality, ErSchema,
};

const ENTITIES: [&str; 6] = ["E0", "E1", "E2", "E3", "E4", "E5"];
const DOMAINS: [&str; 3] = ["int", "text", "date"];

#[derive(Debug, Clone)]
enum ErItem {
    Attribute(usize, usize, usize),
    Isa(usize, usize),
    Relationship(usize, usize, usize, bool, bool),
}

fn er_items() -> impl Strategy<Value = Vec<ErItem>> {
    let item = prop_oneof![
        (0usize..ENTITIES.len(), 0usize..8, 0usize..DOMAINS.len())
            .prop_map(|(e, a, d)| ErItem::Attribute(e, a, d)),
        (0usize..ENTITIES.len(), 0usize..ENTITIES.len())
            .prop_map(|(a, b)| ErItem::Isa(a.min(b), a.max(b))),
        (
            0usize..4,
            0usize..ENTITIES.len(),
            0usize..ENTITIES.len(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(r, l, rr, c1, c2)| ErItem::Relationship(r, l, rr, c1, c2)),
    ];
    vec(item, 0..10)
}

fn build_er(items: &[ErItem]) -> ErSchema {
    let mut builder = ErSchema::builder();
    for entity in ENTITIES {
        builder = builder.entity(entity);
    }
    for item in items {
        builder = match item {
            ErItem::Attribute(e, a, d) => {
                builder.attribute(ENTITIES[*e], format!("a{a}"), DOMAINS[*d])
            }
            ErItem::Isa(a, b) => {
                if a == b {
                    builder
                } else {
                    builder.entity_isa(ENTITIES[*a], ENTITIES[*b])
                }
            }
            ErItem::Relationship(r, left, right, one_left, one_right) => {
                let name = format!("R{r}");
                let mut b = builder.relationship(
                    name.clone(),
                    [("lhs", ENTITIES[*left]), ("rhs", ENTITIES[*right])],
                );
                if *one_left {
                    b = b.cardinality(name.clone(), "lhs", Cardinality::One);
                }
                if *one_right {
                    b = b.cardinality(name, "rhs", Cardinality::One);
                }
                b
            }
        };
    }
    builder
        .build()
        .expect("order-directed ER schemas are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn translation_round_trips_through_the_graph(items in er_items()) {
        let er = build_er(&items);
        let (core, strata) = to_core(&er);
        let back = from_core(&core, &strata).expect("stratified");
        // The closed graph is the invariant (the ER reduction may move
        // inherited declarations around).
        let (core_again, strata_again) = to_core(&back);
        prop_assert_eq!(core_again, core);
        prop_assert_eq!(strata_again, strata);
    }

    #[test]
    fn er_merge_laws(a in er_items(), b in er_items(), c in er_items()) {
        let (g1, g2, g3) = (build_er(&a), build_er(&b), build_er(&c));
        let abc = merge_er([&g1, &g2, &g3]).expect("shared vocabulary merges");
        let cba = merge_er([&g3, &g2, &g1]).expect("shared vocabulary merges");
        prop_assert_eq!(&abc.er, &cba.er, "commutative/associative");
        prop_assert!(preserves_strata(&abc));

        // Idempotence and containment.
        let aa = merge_er([&g1, &g1]).expect("self-merge");
        let a_only = merge_er([&g1]).expect("unit merge");
        prop_assert_eq!(aa.er, a_only.er);
        let (g1_core, _) = to_core(&g1);
        prop_assert!(g1_core.is_subschema_of(abc.core.proper.as_weak()));
    }

    #[test]
    fn merged_keys_validate_and_absorb(a in er_items(), b in er_items()) {
        let (g1, g2) = (build_er(&a), build_er(&b));
        let outcome = merge_er([&g1, &g2]).expect("merges");
        prop_assert!(outcome.keys.validate(outcome.core.proper.as_weak()).is_ok());
        // Every input relationship's cardinality keys are superkeys in
        // the merged assignment (satisfactoriness, §5).
        for er in [&g1, &g2] {
            for (name, rel) in er.relationships() {
                if rel.roles.is_empty() {
                    continue;
                }
                let family = relationship_key_family(rel);
                let merged = outcome
                    .keys
                    .family(&schema_merge_core::Class::Named(name.clone()));
                prop_assert!(
                    merged.contains_family(&family),
                    "input keys survive for {name}"
                );
            }
        }
    }

    #[test]
    fn binary_cardinalities_round_trip(
        one_left in any::<bool>(),
        one_right in any::<bool>(),
    ) {
        let er = build_er(&[ErItem::Relationship(0, 0, 1, one_left, one_right)]);
        let rel = er.relationship(&Name::new("R0")).expect("declared");
        let family = relationship_key_family(rel);
        let cards = keys_to_cardinalities(rel, &family).expect("binary");
        let expect = |b: bool| if b { Cardinality::One } else { Cardinality::Many };
        prop_assert_eq!(cards[&schema_merge_core::Label::new("lhs")], expect(one_left));
        prop_assert_eq!(cards[&schema_merge_core::Label::new("rhs")], expect(one_right));
    }
}
