//! Differential property tests of the federation guarantee:
//! [`Supergraph::compose`] is *equal* to the one-shot
//! [`Merger`](schema_merge_core::Merger) over every member schema of
//! every attached registry — proper schema and implicit-class report —
//! and attaches the same provenance and `H-COMPOSE-*` hints as a fresh
//! full compose of the same state, across random
//! attach/publish/delete/detach sequences and thread budgets (1/2/4).
//!
//! Schemas are generated over a small vocabulary with specialization
//! edges directed along a fixed total order on names, so any collection
//! of generated schemas — across members *and* registries — is
//! compatible and every compose must succeed.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use schema_merge_core::{Diagnostic, Merger, WeakSchema};
use schema_merge_registry::{MergeStrategy, Registry};
use schema_merge_supergraph::Supergraph;

const NAMES: [&str; 6] = ["c0", "c1", "c2", "c3", "c4", "c5"];
const LABELS: [&str; 3] = ["a", "b", "f"];
const REGISTRIES: [&str; 3] = ["r0", "r1", "r2"];
const MEMBERS: [&str; 3] = ["m0", "m1", "m2"];

#[derive(Debug, Clone)]
enum RawEdge {
    Spec(usize, usize),
    Arrow(usize, usize, usize),
}

fn raw_edges() -> impl Strategy<Value = Vec<RawEdge>> {
    let edge = prop_oneof![
        (0usize..NAMES.len(), 0usize..NAMES.len())
            .prop_map(|(i, j)| RawEdge::Spec(i.min(j), i.max(j))),
        (
            0usize..NAMES.len(),
            0usize..LABELS.len(),
            0usize..NAMES.len()
        )
            .prop_map(|(s, l, t)| RawEdge::Arrow(s, l, t)),
    ];
    vec(edge, 0..10)
}

fn build(edges: &[RawEdge]) -> WeakSchema {
    let mut builder = WeakSchema::builder();
    for edge in edges {
        builder = match edge {
            RawEdge::Spec(sub, sup) => {
                if sub == sup {
                    builder
                } else {
                    builder.specialize(NAMES[*sub], NAMES[*sup])
                }
            }
            RawEdge::Arrow(s, l, t) => builder.arrow(NAMES[*s], LABELS[*l], NAMES[*t]),
        };
    }
    builder.build().expect("order-directed schemas are acyclic")
}

/// One step of a federation history.
#[derive(Debug, Clone)]
enum Op {
    Put {
        registry: usize,
        member: usize,
        edges: Vec<RawEdge>,
    },
    Delete {
        registry: usize,
        member: usize,
    },
    Detach(usize),
    Attach(usize),
    Compose,
}

fn put() -> impl Strategy<Value = Op> {
    (0usize..REGISTRIES.len(), 0usize..MEMBERS.len(), raw_edges()).prop_map(
        |(registry, member, edges)| Op::Put {
            registry,
            member,
            edges,
        },
    )
}

// The vendored `prop_oneof!` is unweighted; repeating an arm biases the
// uniform union toward publishes and composes.
fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        put(),
        put(),
        put(),
        (0usize..REGISTRIES.len(), 0usize..MEMBERS.len())
            .prop_map(|(registry, member)| Op::Delete { registry, member }),
        (0usize..REGISTRIES.len()).prop_map(Op::Detach),
        (0usize..REGISTRIES.len()).prop_map(Op::Attach),
        Just(Op::Compose),
        Just(Op::Compose),
        Just(Op::Compose),
    ]
}

/// Every member schema of every attached registry, in a deterministic
/// order — the one-shot merge input.
fn all_schemas(supergraph: &Supergraph) -> Vec<Arc<WeakSchema>> {
    let mut schemas = Vec::new();
    for name in supergraph.names() {
        let registry = supergraph.registry(&name).expect("listed name is attached");
        for (_, version) in registry.current_members() {
            schemas.push(version.schema);
        }
    }
    schemas
}

/// The composed view must equal the one-shot merge, and carry the same
/// origins and hints as a fresh full compose of identical state.
fn check_composed(supergraph: &Supergraph) -> Result<(), TestCaseError> {
    let view = supergraph.composed();

    let schemas = all_schemas(supergraph);
    let oneshot = Merger::new()
        .schemas(schemas.iter().map(|s| s.as_ref()))
        .execute()
        .expect("compatible inputs merge");
    prop_assert_eq!(
        &view.report.proper,
        &oneshot.proper,
        "proper schemas differ"
    );
    prop_assert_eq!(
        &view.report.implicit,
        &oneshot.implicit,
        "implicit-class reports differ"
    );

    let fresh = Supergraph::new();
    for name in supergraph.names() {
        fresh
            .attach(&name, supergraph.registry(&name).unwrap())
            .expect("fresh attach");
    }
    let full = fresh.compose().expect("fresh full compose");
    prop_assert_eq!(&view.report.proper, &full.view.report.proper);
    prop_assert_eq!(view.origins(), full.view.origins(), "origins differ");
    let history_hints: Vec<&Diagnostic> = view.hints().collect();
    let full_hints: Vec<&Diagnostic> = full.view.hints().collect();
    prop_assert_eq!(history_hints, full_hints, "hints differ");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replays a random federation history at each thread budget; every
    /// compose along the way (and one final compose) must reproduce the
    /// one-shot merge, origins and hints included, regardless of which
    /// engine path (full, incremental, base-only, noop) each step took.
    #[test]
    fn compose_equals_oneshot_across_histories(
        ops in vec(op(), 1..14),
        threads in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let supergraph = Supergraph::with_threads(threads);
        // Registries survive detach (the Arc is kept) so a later Attach
        // brings their members back — exercising compose-after-detach
        // and compose-after-reattach transitions.
        let mut pool: BTreeMap<&str, Arc<Registry>> = BTreeMap::new();
        for name in REGISTRIES {
            pool.insert(name, supergraph.attach_new(name).unwrap());
        }

        for op in &ops {
            match op {
                Op::Put { registry, member, edges } => {
                    pool[REGISTRIES[*registry]]
                        .put(MEMBERS[*member], build(edges))
                        .expect("order-directed schemas are compatible");
                }
                Op::Delete { registry, member } => {
                    // Deleting an absent member is a rejected no-op.
                    let _ = pool[REGISTRIES[*registry]].delete(MEMBERS[*member]);
                }
                Op::Detach(registry) => {
                    let _ = supergraph.detach(REGISTRIES[*registry]);
                }
                Op::Attach(registry) => {
                    let name = REGISTRIES[*registry];
                    let _ = supergraph.attach(name, Arc::clone(&pool[name]));
                }
                Op::Compose => {
                    supergraph.compose().expect("compatible compose");
                    check_composed(&supergraph)?;
                }
            }
        }

        let final_outcome = supergraph.compose().expect("final compose");
        check_composed(&supergraph)?;
        // A second compose with nothing in between is always a noop on
        // the same generation.
        let noop = supergraph.compose().expect("noop compose");
        prop_assert_eq!(noop.strategy, MergeStrategy::Noop);
        prop_assert_eq!(noop.generation, final_outcome.generation);
    }
}
