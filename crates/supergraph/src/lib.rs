//! # schema-merge-supergraph
//!
//! Federation one level up: multiple [`schema_merge_registry::Registry`]
//! instances — each a full concurrent, versioned registry with its own
//! members, durability and incremental merge — attached under namespaces
//! and *composed* into one supergraph view.
//!
//! The theory is the same §4.1 least-upper-bound the whole workspace is
//! built on: the weak join is associative, so the merge of every member
//! schema of every registry equals the merge of each registry's own
//! join. That one law gives the federation everything:
//!
//! * **Composition is just merging** — the supergraph view is a
//!   [`Merger`](schema_merge_core::Merger) execution over the member
//!   registries' pre-completion joins, completed once. It is equal (not
//!   just isomorphic) to the one-shot merge of every underlying schema —
//!   differentially property-tested, including reports, provenance, and
//!   hints.
//! * **Recomposition is incremental end-to-end** — each registry hands
//!   over its cached compiled join ([`Registry::compiled_join`]); the
//!   supergraph caches registry-set joins in its own
//!   [`JoinCache`](schema_merge_registry::cache::JoinCache); one
//!   registry's publish recomposes as an
//!   [`onto_base`](schema_merge_core::Merger::onto_base) of just that
//!   registry's join. Generations stamp every composed view.
//! * **Provenance crosses the federation** — every composed class,
//!   arrow and implicit class is attributed to namespaced
//!   `registry/member@vN` origin labels
//!   ([`ComposeProvenance`](schema_merge_core::ComposeProvenance),
//!   riding in
//!   [`MergeReport::origins`](schema_merge_core::MergeReport)).
//! * **Composition hints** — rover-style advisory diagnostics below
//!   informational noise ([`Severity::Hint`](schema_merge_core::Severity)):
//!   `H-COMPOSE-SPECIALIZATION` (subtyping no single registry declared),
//!   `H-COMPOSE-SPAN` (an implicit class whose constituents span
//!   registries), `H-COMPOSE-COLLISION` (member names shared across
//!   registries, resolved by namespacing).
//!
//! The `smerge serve` daemon exposes the supergraph over the text
//! protocol (`ATTACH`/`DETACH`/`COMPOSE`/`SUPERGRAPH`, with
//! `registry/member` routing on `PUT`), and `smerge compose` runs a
//! one-shot composition offline.
//!
//! ```
//! use schema_merge_core::WeakSchema;
//! use schema_merge_supergraph::Supergraph;
//!
//! let supergraph = Supergraph::new();
//! let inventory = supergraph.attach_new("inventory")?;
//! let sales = supergraph.attach_new("sales")?;
//! inventory.put("parts", WeakSchema::builder().arrow("Part", "price", "money").build()?)?;
//! sales.put("orders", WeakSchema::builder().arrow("Order", "item", "Part").build()?)?;
//!
//! let outcome = supergraph.compose()?;
//! assert_eq!(outcome.view.proper().num_classes(), 3);
//! assert_eq!(
//!     outcome.view.origins().origins_of(&schema_merge_core::Class::named("Order")),
//!     ["sales/orders@v1"]
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Registry::compiled_join`]: schema_merge_registry::Registry::compiled_join

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod supergraph;

pub use error::SupergraphError;
pub use supergraph::{ComposeOutcome, ComposedMember, ComposedView, Supergraph, SupergraphStats};
