//! The [`Supergraph`] engine: namespaced member registries composed
//! into one federated merged view.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use schema_merge_core::compose::ComposeProvenance;
use schema_merge_core::merger::MergeReport;
use schema_merge_core::{CompiledSchema, Diagnostic, Merger, ProperSchema, Severity, WeakSchema};
use schema_merge_registry::cache::{fingerprint, JoinCache};
use schema_merge_registry::version::SchemaVersion;
use schema_merge_registry::{MergeStrategy, Registry, RegistryJoin};
use schema_merge_telemetry::{self as telemetry, Histogram, HistogramSnapshot};

use crate::error::SupergraphError;

/// A federation of named [`Registry`] instances composed into one
/// supergraph view.
///
/// Structurally this is the registry design run one level up. Each
/// attached registry owns its members and its merged view; the
/// supergraph owns the *composition* — the merge of every registry's
/// pre-completion join, completed once. Associativity of the weak join
/// (`⊔ᵢⱼGᵢⱼ = ⊔ᵢ(⊔ⱼGᵢⱼ)`, §4.1) makes the composed view equal to the
/// one-shot merge of every member schema of every registry; the
/// supergraph exploits the same law the registry does to recompose
/// incrementally:
///
/// * each registry hands over its cached compiled join
///   ([`Registry::compiled_join`] — O(1) in steady state, the commit
///   path keeps it seeded);
/// * the supergraph keeps its own [`JoinCache`] of *registry-set* joins,
///   fingerprinted over `(registry, join-set-fingerprint)` pairs;
/// * when exactly one registry changed since the last compose, the
///   cached join of the *rest* becomes a
///   [`Merger::onto_base`] and only the changed registry's join is
///   walked — completion runs once, off the compiled total.
///
/// Every composed view carries cross-registry provenance
/// ([`MergeReport::origins`], labels `registry/member@vN`) and
/// rover-style [`Severity::Hint`] diagnostics (`H-COMPOSE-*`) surfacing
/// composition observations: subtyping no single registry declared,
/// implicit classes spanning registries, member-name collisions resolved
/// by namespacing.
pub struct Supergraph {
    shared: RwLock<Shared>,
    cache: Mutex<JoinCache>,
    counters: Counters,
    compose_latency: Histogram,
    started_at: Instant,
    merge_threads: Option<usize>,
}

struct Shared {
    /// Bumped by attach, detach, and every non-noop compose; the
    /// optimistic-commit guard.
    generation: u64,
    members: BTreeMap<String, Member>,
    /// Fingerprint over the `(registry, join-set-fingerprint)` pairs the
    /// current composed view reflects — the compose noop detector.
    composed_fp: u64,
    composed: Arc<ComposedView>,
}

struct Member {
    registry: Arc<Registry>,
    /// The registry's join as of the last compose that saw it.
    state: Option<MemberState>,
}

/// A member registry's join captured for composition: both schema forms
/// plus the member versions the join reflects (for provenance), all
/// describing the same registry snapshot.
#[derive(Clone)]
struct MemberState {
    fingerprint: u64,
    generation: u64,
    members: Arc<Vec<(String, SchemaVersion)>>,
    compiled: Arc<CompiledSchema>,
    weak: Arc<WeakSchema>,
}

impl MemberState {
    fn capture(join: RegistryJoin) -> Self {
        let weak = Arc::new(join.join.decompile());
        MemberState {
            fingerprint: join.fingerprint,
            generation: join.generation,
            members: Arc::new(join.members),
            compiled: join.join,
            weak,
        }
    }
}

#[derive(Default)]
struct Counters {
    full: AtomicU64,
    incremental: AtomicU64,
    noop: AtomicU64,
    retries: AtomicU64,
}

/// A generation-stamped handle on the composed supergraph view.
/// Everything is `Arc`-shared; the supergraph moving on to later
/// generations never invalidates a view a client holds.
#[derive(Clone)]
pub struct ComposedView {
    /// The supergraph generation whose compose produced this view.
    pub generation: u64,
    /// The member registries composed in, sorted by name.
    pub members: Vec<ComposedMember>,
    /// The full merge report: composed proper schema, implicit-class
    /// table, diagnostics (merger diagnostics followed by the
    /// `H-COMPOSE-*` hints), and cross-registry provenance in
    /// [`MergeReport::origins`].
    pub report: Arc<MergeReport>,
    /// Which engine path produced this view.
    pub strategy: MergeStrategy,
}

impl ComposedView {
    /// The composed merged schema.
    pub fn proper(&self) -> &ProperSchema {
        &self.report.proper
    }

    /// Canonical content hash of the composed proper schema.
    pub fn hash(&self) -> u64 {
        self.report.proper.content_hash()
    }

    /// Cross-registry provenance: which `registry/member@vN` origins
    /// contributed each composed class, arrow, and implicit class.
    pub fn origins(&self) -> &ComposeProvenance {
        self.report
            .origins
            .as_ref()
            .expect("every compose attaches origins")
    }

    /// The `H-COMPOSE-*` composition hints, in deterministic order.
    pub fn hints(&self) -> impl Iterator<Item = &Diagnostic> {
        self.report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Hint)
    }
}

/// One member registry's row in a [`ComposedView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedMember {
    /// The namespace the registry is attached under.
    pub registry: String,
    /// The registry generation whose join was composed.
    pub generation: u64,
    /// How many members the registry contributed.
    pub members: usize,
}

/// The result of a successful [`Supergraph::compose`].
#[derive(Clone)]
pub struct ComposeOutcome {
    /// Supergraph generation after the compose (unchanged for a noop).
    pub generation: u64,
    /// Which engine path ran: `noop` when nothing moved since the last
    /// compose, `incremental` when a cached rest-join was completed onto,
    /// `full` otherwise.
    pub strategy: MergeStrategy,
    /// The (possibly pre-existing, for a noop) composed view.
    pub view: Arc<ComposedView>,
}

/// A coherent statistics snapshot of the supergraph engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SupergraphStats {
    /// Current supergraph generation.
    pub generation: u64,
    /// Attached registries.
    pub registries: usize,
    /// Classes in the composed view.
    pub composed_classes: usize,
    /// Arrows in the composed view.
    pub composed_arrows: usize,
    /// Implicit classes completion introduced across registries.
    pub implicit_classes: usize,
    /// `H-COMPOSE-*` hints on the composed view.
    pub hints: usize,
    /// Content hash of the composed proper schema.
    pub composed_hash: u64,
    /// Composes that re-joined every registry.
    pub full_composes: u64,
    /// Composes that completed onto a cached rest-join.
    pub incremental_composes: u64,
    /// Composes that found nothing changed.
    pub noop_composes: u64,
    /// Optimistic-commit retries (concurrent attach/detach/compose).
    pub compose_retries: u64,
    /// Registry-set join cache hits.
    pub cache_hits: u64,
    /// Registry-set join cache misses.
    pub cache_misses: u64,
    /// Registry-set join cache entries.
    pub cache_entries: usize,
}

impl Default for Supergraph {
    fn default() -> Self {
        Self::new()
    }
}

impl Supergraph {
    /// An empty supergraph: no registries attached, composed view empty
    /// at generation zero.
    pub fn new() -> Self {
        Supergraph {
            shared: RwLock::new(Shared {
                generation: 0,
                members: BTreeMap::new(),
                composed_fp: fingerprint(std::iter::empty()),
                composed: empty_view(),
            }),
            cache: Mutex::new(JoinCache::default()),
            counters: Counters::default(),
            compose_latency: Histogram::default(),
            started_at: Instant::now(),
            merge_threads: None,
        }
    }

    /// Fixes the thread budget handed to every composition merge (the
    /// member registries keep their own budgets).
    pub fn with_threads(threads: usize) -> Self {
        let mut supergraph = Self::new();
        supergraph.merge_threads = Some(threads);
        supergraph
    }

    /// Attaches `registry` under namespace `name`.
    ///
    /// # Errors
    ///
    /// [`SupergraphError::InvalidName`] for names unusable as namespace
    /// prefixes; [`SupergraphError::DuplicateRegistry`] when the name is
    /// taken.
    pub fn attach(
        &self,
        name: impl Into<String>,
        registry: Arc<Registry>,
    ) -> Result<(), SupergraphError> {
        let name = name.into();
        if name.is_empty() || name.contains('/') || name.chars().any(char::is_whitespace) {
            return Err(SupergraphError::InvalidName(name));
        }
        let mut shared = self.shared.write().expect("supergraph lock");
        if shared.members.contains_key(&name) {
            return Err(SupergraphError::DuplicateRegistry(name));
        }
        shared.generation += 1;
        shared.members.insert(
            name,
            Member {
                registry,
                state: None,
            },
        );
        Ok(())
    }

    /// Creates a fresh empty registry, attaches it under `name`, and
    /// returns it — the `ATTACH` protocol verb.
    pub fn attach_new(&self, name: impl Into<String>) -> Result<Arc<Registry>, SupergraphError> {
        let registry = Arc::new(Registry::new());
        self.attach(name, Arc::clone(&registry))?;
        Ok(registry)
    }

    /// Detaches and returns the registry at `name`. The current composed
    /// view is untouched (it is a snapshot); the next
    /// [`compose`](Supergraph::compose) drops the registry's
    /// contribution.
    ///
    /// # Errors
    ///
    /// [`SupergraphError::UnknownRegistry`] when nothing is attached
    /// under `name`.
    pub fn detach(&self, name: &str) -> Result<Arc<Registry>, SupergraphError> {
        let mut shared = self.shared.write().expect("supergraph lock");
        match shared.members.remove(name) {
            Some(member) => {
                shared.generation += 1;
                Ok(member.registry)
            }
            None => Err(SupergraphError::UnknownRegistry(name.to_string())),
        }
    }

    /// The registry attached under `name`, if any.
    pub fn registry(&self, name: &str) -> Option<Arc<Registry>> {
        let shared = self.shared.read().expect("supergraph lock");
        shared.members.get(name).map(|m| Arc::clone(&m.registry))
    }

    /// The attached registry names, sorted.
    pub fn names(&self) -> Vec<String> {
        let shared = self.shared.read().expect("supergraph lock");
        shared.members.keys().cloned().collect()
    }

    /// Number of attached registries.
    pub fn len(&self) -> usize {
        self.shared.read().expect("supergraph lock").members.len()
    }

    /// Whether no registries are attached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current composed view (two `Arc` clones; never recomputes).
    /// Stale after member registries publish — [`compose`] refreshes it.
    ///
    /// [`compose`]: Supergraph::compose
    pub fn composed(&self) -> Arc<ComposedView> {
        Arc::clone(&self.shared.read().expect("supergraph lock").composed)
    }

    /// Recomposes the supergraph view from the attached registries'
    /// current joins and installs it (generation-stamped), returning the
    /// outcome. Noop when nothing changed; incremental (the changed
    /// registry's join completed onto the cached join of the rest) when
    /// exactly one registry moved; full otherwise. All three paths
    /// produce the same view as the one-shot merge of every member
    /// schema of every registry — the associativity of the join is
    /// differentially property-tested, not assumed.
    ///
    /// # Errors
    ///
    /// [`SupergraphError::Member`] when a registry's own join fails,
    /// [`SupergraphError::Compose`] when the cross-registry composition
    /// is incompatible (e.g. a specialization cycle spanning
    /// registries). The installed view is untouched on error.
    pub fn compose(&self) -> Result<ComposeOutcome, SupergraphError> {
        let started = Instant::now();
        let mut compose_span = telemetry::span("compose");
        loop {
            let (generation, snapshot) = {
                let shared = self.shared.read().expect("supergraph lock");
                let snapshot: Vec<(String, Arc<Registry>, Option<MemberState>)> = shared
                    .members
                    .iter()
                    .map(|(n, m)| (n.clone(), Arc::clone(&m.registry), m.state.clone()))
                    .collect();
                (shared.generation, snapshot)
            };

            // Refresh every registry's join handle; the delta walk for a
            // changed registry is its own `recompose` child span.
            let mut states: Vec<(String, MemberState)> = Vec::with_capacity(snapshot.len());
            let mut changed: Vec<usize> = Vec::new();
            for (index, (name, registry, prev)) in snapshot.iter().enumerate() {
                let join = registry
                    .compiled_join()
                    .map_err(|cause| SupergraphError::Member {
                        registry: name.clone(),
                        cause,
                    })?;
                let state = match prev {
                    Some(prev) if prev.fingerprint == join.fingerprint => prev.clone(),
                    _ => {
                        let mut member_span = telemetry::span("recompose");
                        member_span.attr("registry_generation", join.generation);
                        member_span.attr_usize("members", join.members.len());
                        changed.push(index);
                        MemberState::capture(join)
                    }
                };
                states.push((name.clone(), state));
            }

            let full_fp = fingerprint(states.iter().map(|(n, s)| (n.as_str(), s.fingerprint)));
            {
                let shared = self.shared.read().expect("supergraph lock");
                if shared.generation == generation && shared.composed_fp == full_fp {
                    self.counters.noop.fetch_add(1, Ordering::Relaxed);
                    compose_span.attr("noop", 1);
                    return Ok(ComposeOutcome {
                        generation: shared.generation,
                        strategy: MergeStrategy::Noop,
                        view: Arc::clone(&shared.composed),
                    });
                }
            }

            // Pick the engine path and run the composition merge.
            let (strategy, mut report, total, seed_rest) = match changed.as_slice() {
                [changed_index] if states.len() == 1 => {
                    // One registry: its cached compiled join IS the
                    // composed join — base-only completion, no join pass.
                    let state = &states[*changed_index].1;
                    let report = self
                        .merger(Merger::new().onto_base(&state.compiled))
                        .execute()
                        .map_err(SupergraphError::Compose)?;
                    (
                        MergeStrategy::Incremental,
                        report,
                        Arc::clone(&state.compiled),
                        None,
                    )
                }
                [changed_index] => {
                    // Exactly one registry moved: complete its join onto
                    // the join of the rest — cached in steady state,
                    // recomputed (and then seeded) otherwise.
                    let rest_fp = fingerprint(
                        states
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i != changed_index)
                            .map(|(_, (n, s))| (n.as_str(), s.fingerprint)),
                    );
                    let (rest, strategy) =
                        match self.cache.lock().expect("cache lock").probe(rest_fp) {
                            Some(rest) => (rest, MergeStrategy::Incremental),
                            None => {
                                let rest = self.join_of(
                                    states
                                        .iter()
                                        .enumerate()
                                        .filter(|(i, _)| i != changed_index)
                                        .map(|(_, (_, s))| s),
                                )?;
                                (rest, MergeStrategy::Full)
                            }
                        };
                    let extra = Arc::clone(&states[*changed_index].1.weak);
                    let mut report = self
                        .merger(Merger::new().onto_base(&rest).schema(extra.as_ref()))
                        .execute()
                        .map_err(SupergraphError::Compose)?;
                    let total = match report.compiled.take() {
                        Some(compiled) => Arc::new(compiled),
                        None => Arc::clone(&rest),
                    };
                    (strategy, report, total, Some((rest_fp, rest)))
                }
                _ => {
                    // Zero or several registries moved: batch-compose
                    // every registry's join at once.
                    let mut report = self
                        .merger(Merger::new().schemas(states.iter().map(|(_, s)| s.weak.as_ref())))
                        .execute()
                        .map_err(SupergraphError::Compose)?;
                    let total = match report.compiled.take() {
                        Some(compiled) => Arc::new(compiled),
                        None => Arc::new(CompiledSchema::compile(
                            report
                                .weak
                                .as_ref()
                                .expect("non-base compose plans keep a join"),
                        )),
                    };
                    (MergeStrategy::Full, report, total, None)
                }
            };

            // Provenance and hints are computed from the member inputs
            // and the composed result only — never from the path taken —
            // so incremental and full composes attach identical origins.
            let provenance = ComposeProvenance::compute(
                states.iter().flat_map(|(registry, state)| {
                    state.members.iter().map(move |(member, version)| {
                        (
                            format!("{registry}/{member}@v{}", version.sequence),
                            version.schema.as_ref(),
                        )
                    })
                }),
                &report.proper,
            );
            let mut hints = compose_hints(&states, &provenance, &report.proper);
            // H-COMPOSE-DEGRADED: a member registry is serving reads but
            // rejecting writes after a storage failure — the composed
            // view is correct but may lag that member's publishers.
            // Flagged here (not in `compose_hints`) because degradation
            // is live registry state, not a property of the inputs.
            for (name, registry, _) in &snapshot {
                if registry.is_degraded() {
                    hints.push(Diagnostic::hint(
                        "H-COMPOSE-DEGRADED",
                        format!(
                            "member registry `{name}` is degraded (read-only \
                             after a storage failure); its contribution may \
                             be stale until it heals"
                        ),
                    ));
                }
            }
            compose_span.attr_usize("hints", hints.len());
            report.diagnostics.extend(hints);
            report.origins = Some(provenance);

            let members_meta: Vec<ComposedMember> = states
                .iter()
                .map(|(n, s)| ComposedMember {
                    registry: n.clone(),
                    generation: s.generation,
                    members: s.members.len(),
                })
                .collect();

            let mut shared = self.shared.write().expect("supergraph lock");
            if shared.generation != generation {
                drop(shared);
                self.counters.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let next_generation = shared.generation + 1;
            shared.generation = next_generation;
            for (name, state) in &states {
                if let Some(member) = shared.members.get_mut(name) {
                    member.state = Some(state.clone());
                }
            }
            let view = Arc::new(ComposedView {
                generation: next_generation,
                members: members_meta,
                report: Arc::new(report),
                strategy,
            });
            shared.composed = Arc::clone(&view);
            shared.composed_fp = full_fp;
            drop(shared);

            {
                let mut cache = self.cache.lock().expect("cache lock");
                if let Some((rest_fp, rest)) = seed_rest {
                    cache.insert(rest_fp, rest);
                }
                cache.insert(full_fp, total);
            }
            let counter = match strategy {
                MergeStrategy::Incremental => &self.counters.incremental,
                _ => &self.counters.full,
            };
            counter.fetch_add(1, Ordering::Relaxed);
            compose_span.attr("generation", next_generation);
            compose_span.attr_usize("registries", view.members.len());
            self.compose_latency.record(started.elapsed());
            return Ok(ComposeOutcome {
                generation: next_generation,
                strategy,
                view,
            });
        }
    }

    /// A coherent statistics snapshot.
    pub fn stats(&self) -> SupergraphStats {
        let (generation, registries, composed) = {
            let shared = self.shared.read().expect("supergraph lock");
            (
                shared.generation,
                shared.members.len(),
                Arc::clone(&shared.composed),
            )
        };
        let (cache_entries, cache_hits, cache_misses) = {
            let cache = self.cache.lock().expect("cache lock");
            (cache.len(), cache.hits(), cache.misses())
        };
        let weak = composed.report.proper.as_weak();
        SupergraphStats {
            generation,
            registries,
            composed_classes: weak.num_classes(),
            composed_arrows: weak.num_arrows(),
            implicit_classes: composed.report.implicit.num_implicit(),
            hints: composed.hints().count(),
            composed_hash: composed.hash(),
            full_composes: self.counters.full.load(Ordering::Relaxed),
            incremental_composes: self.counters.incremental.load(Ordering::Relaxed),
            noop_composes: self.counters.noop.load(Ordering::Relaxed),
            compose_retries: self.counters.retries.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_entries,
        }
    }

    /// Snapshot of the compose latency histogram (non-noop
    /// [`compose`](Supergraph::compose) calls).
    pub fn compose_latency(&self) -> HistogramSnapshot {
        self.compose_latency.snapshot()
    }

    /// Whole seconds since this supergraph was created.
    pub fn uptime_secs(&self) -> u64 {
        self.started_at.elapsed().as_secs()
    }

    fn merger<'a>(&self, merger: Merger<'a>) -> Merger<'a> {
        match self.merge_threads {
            Some(threads) => merger.threads(threads),
            None => merger,
        }
    }

    /// The compiled join of a set of member states, from scratch.
    fn join_of<'a>(
        &self,
        states: impl Iterator<Item = &'a MemberState>,
    ) -> Result<Arc<CompiledSchema>, SupergraphError> {
        let (_, compiled) = self
            .merger(Merger::new().schemas(states.map(|s| s.weak.as_ref())))
            .join()
            .map_err(SupergraphError::Compose)?
            .into_parts();
        Ok(Arc::new(
            compiled.expect("the compiled engines keep the compiled join"),
        ))
    }
}

fn empty_view() -> Arc<ComposedView> {
    let mut report = Merger::new()
        .execute()
        .expect("the empty merge cannot fail");
    report.compiled = None;
    report.origins = Some(ComposeProvenance::default());
    Arc::new(ComposedView {
        generation: 0,
        members: Vec::new(),
        report: Arc::new(report),
        strategy: MergeStrategy::Full,
    })
}

/// Derives the `H-COMPOSE-*` hints from the member inputs and the
/// composed result. Pure and path-independent: the same member states
/// and proper schema produce the same hints in the same order whether
/// the compose ran full or incremental.
fn compose_hints(
    states: &[(String, MemberState)],
    provenance: &ComposeProvenance,
    proper: &ProperSchema,
) -> Vec<Diagnostic> {
    let mut hints = Vec::new();

    // H-COMPOSE-COLLISION: the same member name published by more than
    // one registry — namespacing (`registry/member`) resolves what would
    // collide in a flat registry.
    let mut owners: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (registry, state) in states {
        for (member, _) in state.members.iter() {
            owners
                .entry(member.as_str())
                .or_default()
                .push(registry.as_str());
        }
    }
    for (member, registries) in owners {
        if registries.len() >= 2 {
            let qualified: Vec<String> = registries
                .iter()
                .map(|registry| format!("`{registry}/{member}`"))
                .collect();
            hints.push(Diagnostic::hint(
                "H-COMPOSE-COLLISION",
                format!(
                    "member name `{member}` is published by {} registries; \
                     origins are namespaced as {}",
                    registries.len(),
                    qualified.join(", "),
                ),
            ));
        }
    }

    // H-COMPOSE-SPAN: an implicit meet class whose constituents come
    // from more than one registry — the federation, not any single
    // registry, forced it into existence.
    for class in provenance.implicit.keys() {
        let registries = provenance.registries_of(class);
        if registries.len() >= 2 {
            hints.push(Diagnostic::hint(
                "H-COMPOSE-SPAN",
                format!(
                    "implicit class `{class}` spans registries {}",
                    quote_join(&registries),
                ),
            ));
        }
    }

    // H-COMPOSE-SPECIALIZATION: a subtyping edge whose endpoints come
    // from disjoint registry sets — no single registry knew both
    // classes, so the composition introduced the relationship.
    // Conservative: an edge whose endpoints share any contributing
    // registry is never flagged.
    for (sub, sup) in proper.as_weak().specialization_pairs() {
        if sub.is_implicit() || sup.is_implicit() {
            continue;
        }
        let sub_registries = provenance.registries_of(sub);
        let sup_registries = provenance.registries_of(sup);
        if sub_registries.is_empty() || sup_registries.is_empty() {
            continue;
        }
        if sub_registries
            .iter()
            .all(|registry| !sup_registries.contains(registry))
        {
            hints.push(Diagnostic::hint(
                "H-COMPOSE-SPECIALIZATION",
                format!(
                    "cross-registry specialization: `{sub}` ({}) is placed under `{sup}` ({})",
                    quote_join(&sub_registries),
                    quote_join(&sup_registries),
                ),
            ));
        }
    }

    hints
}

fn quote_join(names: &[&str]) -> String {
    let quoted: Vec<String> = names.iter().map(|name| format!("`{name}`")).collect();
    quoted.join(", ")
}

impl std::fmt::Debug for Supergraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Supergraph")
            .field("generation", &stats.generation)
            .field("registries", &stats.registries)
            .field("composed_classes", &stats.composed_classes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema_merge_core::Class;

    fn schema(src: &str, label: &str, tgt: &str) -> WeakSchema {
        WeakSchema::builder()
            .arrow(src, label, tgt)
            .build()
            .unwrap()
    }

    fn two_registry_supergraph() -> Supergraph {
        let supergraph = Supergraph::new();
        let a = supergraph.attach_new("a").unwrap();
        let b = supergraph.attach_new("b").unwrap();
        a.put("inventory", schema("Part", "price", "money"))
            .unwrap();
        b.put("orders", schema("Order", "item", "Part")).unwrap();
        supergraph
    }

    /// The composed view must equal the one-shot merge of every member
    /// schema of every registry.
    fn assert_view_matches_oneshot(supergraph: &Supergraph) {
        let view = supergraph.composed();
        let mut schemas: Vec<Arc<WeakSchema>> = Vec::new();
        for name in supergraph.names() {
            let registry = supergraph.registry(&name).unwrap();
            for (_, version) in registry.current_members() {
                schemas.push(version.schema);
            }
        }
        let expected = Merger::new()
            .schemas(schemas.iter().map(|s| s.as_ref()))
            .execute()
            .expect("one-shot merge succeeds");
        assert_eq!(view.report.proper, expected.proper);
        assert_eq!(view.report.implicit, expected.implicit);
    }

    #[test]
    fn compose_of_empty_supergraph_is_a_noop_on_the_empty_view() {
        let supergraph = Supergraph::new();
        let outcome = supergraph.compose().unwrap();
        assert_eq!(outcome.strategy, MergeStrategy::Noop);
        assert_eq!(outcome.generation, 0);
        assert_eq!(outcome.view.report.proper.num_classes(), 0);
    }

    #[test]
    fn attach_validates_names_and_rejects_duplicates() {
        let supergraph = Supergraph::new();
        supergraph.attach_new("a").unwrap();
        assert!(matches!(
            supergraph.attach_new("a"),
            Err(SupergraphError::DuplicateRegistry(_))
        ));
        for bad in ["", "a/b", "a b", "a\tb"] {
            assert!(matches!(
                supergraph.attach_new(bad),
                Err(SupergraphError::InvalidName(_))
            ));
        }
    }

    #[test]
    fn detach_returns_the_registry_and_unknown_names_error() {
        let supergraph = Supergraph::new();
        let attached = supergraph.attach_new("a").unwrap();
        let detached = supergraph.detach("a").unwrap();
        assert!(Arc::ptr_eq(&attached, &detached));
        assert!(matches!(
            supergraph.detach("a"),
            Err(SupergraphError::UnknownRegistry(_))
        ));
    }

    #[test]
    fn compose_merges_across_registries_and_matches_oneshot() {
        let supergraph = two_registry_supergraph();
        let outcome = supergraph.compose().unwrap();
        assert_eq!(outcome.strategy, MergeStrategy::Full);
        assert!(outcome.view.proper().contains_class(&Class::named("Part")));
        assert!(outcome.view.proper().contains_class(&Class::named("Order")));
        assert_view_matches_oneshot(&supergraph);
    }

    #[test]
    fn recompose_after_one_publish_is_incremental_and_matches_oneshot() {
        let supergraph = two_registry_supergraph();
        supergraph.compose().unwrap();
        let b = supergraph.registry("b").unwrap();
        // First single-registry recompose computes (and seeds) the
        // rest-join; steady-state churn on the same registry is then
        // incremental — the registry cache discipline, one level up.
        b.put("shipping", schema("Order", "dest", "Address"))
            .unwrap();
        let warm = supergraph.compose().unwrap();
        assert_eq!(warm.strategy, MergeStrategy::Full);
        b.put("billing", schema("Order", "bill", "Invoice"))
            .unwrap();
        let outcome = supergraph.compose().unwrap();
        assert_eq!(outcome.strategy, MergeStrategy::Incremental);
        assert!(outcome
            .view
            .proper()
            .contains_class(&Class::named("Address")));
        assert!(outcome
            .view
            .proper()
            .contains_class(&Class::named("Invoice")));
        assert_view_matches_oneshot(&supergraph);
        // Nothing moved since: noop, same view.
        let again = supergraph.compose().unwrap();
        assert_eq!(again.strategy, MergeStrategy::Noop);
        assert_eq!(again.view.generation, outcome.view.generation);
    }

    #[test]
    fn single_registry_compose_reuses_the_registry_join() {
        let supergraph = Supergraph::new();
        let a = supergraph.attach_new("solo").unwrap();
        a.put("m", schema("Dog", "name", "string")).unwrap();
        let outcome = supergraph.compose().unwrap();
        // The registry's cached compiled join is completed base-only.
        assert_eq!(outcome.strategy, MergeStrategy::Incremental);
        assert_view_matches_oneshot(&supergraph);
    }

    #[test]
    fn compose_after_detach_drops_the_contribution() {
        let supergraph = two_registry_supergraph();
        supergraph.compose().unwrap();
        supergraph.detach("b").unwrap();
        let outcome = supergraph.compose().unwrap();
        assert!(!outcome.view.proper().contains_class(&Class::named("Order")));
        assert_view_matches_oneshot(&supergraph);
    }

    #[test]
    fn origins_carry_namespaced_member_labels() {
        let supergraph = two_registry_supergraph();
        let outcome = supergraph.compose().unwrap();
        let origins = outcome.view.origins();
        assert_eq!(
            origins.origins_of(&Class::named("Part")),
            ["a/inventory@v1", "b/orders@v1"]
        );
        assert_eq!(origins.origins_of(&Class::named("Order")), ["b/orders@v1"]);
    }

    #[test]
    fn collision_and_span_hints_fire() {
        let supergraph = Supergraph::new();
        let a = supergraph.attach_new("a").unwrap();
        let b = supergraph.attach_new("b").unwrap();
        // Same member name in both registries → collision hint. The two
        // schemas give C incomparable targets under `f` → an implicit
        // class spanning both registries.
        a.put(
            "shared",
            WeakSchema::builder().arrow("C", "f", "B1").build().unwrap(),
        )
        .unwrap();
        b.put(
            "shared",
            WeakSchema::builder().arrow("C", "f", "B2").build().unwrap(),
        )
        .unwrap();
        let outcome = supergraph.compose().unwrap();
        let codes: Vec<&str> = outcome.view.hints().map(|d| d.code).collect();
        assert!(codes.contains(&"H-COMPOSE-COLLISION"), "{codes:?}");
        assert!(codes.contains(&"H-COMPOSE-SPAN"), "{codes:?}");
    }

    #[test]
    fn cross_registry_specialization_hint_fires() {
        let supergraph = Supergraph::new();
        let a = supergraph.attach_new("a").unwrap();
        let b = supergraph.attach_new("b").unwrap();
        // `b` subtypes a class only `a` declares — but `b` knows both
        // names, so the edge endpoints share registry `b`. Use three
        // registries: the edge itself must come from somewhere, so a
        // *declared* edge always shares its declarer. Cross-registry
        // introduction happens through transitivity instead.
        let c = supergraph.attach_new("c").unwrap();
        a.put("base", schema("Animal", "alive", "bool")).unwrap();
        b.put(
            "mid",
            WeakSchema::builder()
                .specialize("Dog", "Animal")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.put(
            "leaf",
            WeakSchema::builder()
                .specialize("Puppy", "Dog")
                .build()
                .unwrap(),
        )
        .unwrap();
        let outcome = supergraph.compose().unwrap();
        // Transitive closure introduces Puppy ⇒ Animal; Puppy is known
        // only to `c`, Animal only to `a`.
        let codes: Vec<&str> = outcome.view.hints().map(|d| d.code).collect();
        assert!(codes.contains(&"H-COMPOSE-SPECIALIZATION"), "{codes:?}");
    }

    /// A member registry stuck in degraded read-only mode is flagged on
    /// the composed view with `H-COMPOSE-DEGRADED` — and the hint clears
    /// once the member heals.
    #[test]
    fn compose_flags_degraded_members_and_clears_on_heal() {
        use schema_merge_registry::storage::{
            Fault, FaultSchedule, FaultStore, MemoryStore, OpKind,
        };
        use schema_merge_registry::RetryPolicy;

        let supergraph = two_registry_supergraph();
        let schedule = FaultSchedule::new(7);
        let store = FaultStore::new(
            MemoryStore::new(),
            schedule
                .clone()
                .always_after(OpKind::Append, 0, Fault::Permanent),
        );
        let flaky = Arc::new(
            Registry::builder()
                .store(store)
                .retry_policy(RetryPolicy::new(0))
                .open()
                .unwrap(),
        );
        assert!(flaky.put("m", schema("X", "f", "Y")).is_err());
        assert!(flaky.is_degraded());
        supergraph.attach("c", Arc::clone(&flaky)).unwrap();

        let outcome = supergraph.compose().unwrap();
        let degraded: Vec<&Diagnostic> = outcome
            .view
            .hints()
            .filter(|d| d.code == "H-COMPOSE-DEGRADED")
            .collect();
        assert_eq!(degraded.len(), 1, "{degraded:?}");
        assert!(degraded[0].message.contains("`c`"), "{:?}", degraded[0]);

        // Stop injecting, probe heals, publish lands, hint clears.
        schedule.clear();
        assert!(flaky.probe_now());
        flaky.put("m", schema("X", "f", "Y")).unwrap();
        let healed = supergraph.compose().unwrap();
        assert!(
            healed.view.hints().all(|d| d.code != "H-COMPOSE-DEGRADED"),
            "hint must clear after heal"
        );
    }

    #[test]
    fn incremental_and_full_views_agree_on_provenance_and_hints() {
        // Drive one supergraph incrementally; compose a fresh one from
        // the same final state; everything observable must be equal.
        let supergraph = two_registry_supergraph();
        supergraph.compose().unwrap();
        let b = supergraph.registry("b").unwrap();
        b.put("orders", schema("Order", "qty", "int")).unwrap();
        supergraph.compose().unwrap(); // warms the rest-join
        b.put("orders", schema("Order", "price", "money")).unwrap();
        let incremental = supergraph.compose().unwrap();
        assert_eq!(incremental.strategy, MergeStrategy::Incremental);

        let fresh = Supergraph::new();
        for name in supergraph.names() {
            fresh
                .attach(&name, supergraph.registry(&name).unwrap())
                .unwrap();
        }
        let full = fresh.compose().unwrap();
        assert_eq!(full.strategy, MergeStrategy::Full);

        assert_eq!(incremental.view.report.proper, full.view.report.proper);
        assert_eq!(incremental.view.report.implicit, full.view.report.implicit);
        assert_eq!(incremental.view.origins(), full.view.origins());
        let incremental_hints: Vec<&Diagnostic> = incremental.view.hints().collect();
        let full_hints: Vec<&Diagnostic> = full.view.hints().collect();
        assert_eq!(incremental_hints, full_hints);
    }

    #[test]
    fn stats_track_strategies_and_cache_traffic() {
        let supergraph = two_registry_supergraph();
        supergraph.compose().unwrap();
        supergraph.compose().unwrap(); // noop
        let b = supergraph.registry("b").unwrap();
        b.put("orders2", schema("X", "y", "Z")).unwrap();
        supergraph.compose().unwrap(); // full; seeds the rest-join
        b.put("orders3", schema("X", "w", "W")).unwrap();
        supergraph.compose().unwrap(); // incremental
        let stats = supergraph.stats();
        assert_eq!(stats.registries, 2);
        assert_eq!(stats.full_composes, 2);
        assert_eq!(stats.incremental_composes, 1);
        assert_eq!(stats.noop_composes, 1);
        assert!(stats.cache_hits >= 1);
        assert!(stats.composed_classes >= 4);
        assert!(supergraph.compose_latency().count >= 2);
    }
}
