//! Supergraph error taxonomy.

use schema_merge_core::MergeError;

/// Everything that can go wrong attaching, detaching or composing.
#[derive(Debug)]
#[non_exhaustive]
pub enum SupergraphError {
    /// Attach with a name that is already attached.
    DuplicateRegistry(String),
    /// Detach or lookup of a name that is not attached.
    UnknownRegistry(String),
    /// Registry names are namespace prefixes (`registry/member` origin
    /// labels, `registry/member` protocol routing), so they must be
    /// non-empty, slash-free, whitespace-free tokens.
    InvalidName(String),
    /// A member registry's own join failed while composing. Cannot occur
    /// for registries that accepted all their members, but the compose
    /// path carries it rather than panicking on a hostile `Registry`.
    Member {
        /// The attached registry whose join failed.
        registry: String,
        /// The underlying merge failure.
        cause: MergeError,
    },
    /// The cross-registry composition itself failed — the member
    /// registries are individually consistent but their union is not
    /// (e.g. a specialization cycle spanning registries).
    Compose(MergeError),
}

impl SupergraphError {
    /// The stable machine-readable code (`E-SG-…`), used by the protocol
    /// daemon's `ERR` lines and the CLI's `error[…]` prefix.
    pub fn code(&self) -> &'static str {
        match self {
            SupergraphError::DuplicateRegistry(_) => "E-SG-DUPLICATE",
            SupergraphError::UnknownRegistry(_) => "E-SG-UNKNOWN",
            SupergraphError::InvalidName(_) => "E-SG-NAME",
            SupergraphError::Member { .. } => "E-SG-MEMBER",
            SupergraphError::Compose(_) => "E-SG-COMPOSE",
        }
    }
}

impl std::fmt::Display for SupergraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupergraphError::DuplicateRegistry(name) => {
                write!(f, "registry `{name}` is already attached")
            }
            SupergraphError::UnknownRegistry(name) => {
                write!(f, "no registry `{name}` is attached")
            }
            SupergraphError::InvalidName(name) => write!(
                f,
                "invalid registry name `{name}`: names are non-empty tokens \
                 without `/` or whitespace"
            ),
            SupergraphError::Member { registry, cause } => {
                write!(f, "member registry `{registry}` failed to join: {cause}")
            }
            SupergraphError::Compose(cause) => {
                write!(f, "composition failed: {cause}")
            }
        }
    }
}

impl std::error::Error for SupergraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupergraphError::Member { cause, .. } | SupergraphError::Compose(cause) => Some(cause),
            _ => None,
        }
    }
}

impl From<MergeError> for SupergraphError {
    fn from(cause: MergeError) -> Self {
        SupergraphError::Compose(cause)
    }
}
