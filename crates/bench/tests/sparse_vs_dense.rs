//! Differential test of the adaptive row representation at merge scale:
//! the same merges run with sparse rows disabled (all-dense baseline)
//! and enabled must produce identical results — proper schemas,
//! implicit-class reports, and the decompiled joins.
//!
//! The sparse policy only engages on rows at least `SPARSE_MIN_WORDS`
//! (64) words wide — merges of 4096+ classes — so these tests run
//! taxonomy workloads *above* that threshold; anything smaller is
//! all-dense under either setting (the row-level policy and op
//! equivalences are property-tested in `core/src/row.rs`).
//!
//! This file intentionally holds only these tests: the sparse toggle is
//! process-global, and a dedicated test binary keeps the dense baseline
//! isolated from every other (concurrently running) test.

use schema_merge_core::row::set_sparse_enabled;
use schema_merge_core::{EnginePreference, MergeReport, Merger, WeakSchema};
use schema_merge_workload::{taxonomy, taxonomy_family, TaxonomyParams};

/// Restores the (default-on) sparse policy even if an assertion panics.
struct SparseGuard;
impl Drop for SparseGuard {
    fn drop(&mut self) {
        set_sparse_enabled(true);
    }
}

fn run(schemas: &[&WeakSchema], engine: EnginePreference, threads: usize) -> MergeReport {
    Merger::new()
        .schemas(schemas.iter().copied())
        .engine(engine)
        .threads(threads)
        .execute()
        .expect("merge succeeds")
}

fn assert_dense_equals_sparse(schemas: &[&WeakSchema]) {
    let _guard = SparseGuard;
    for engine in [
        EnginePreference::Compiled,
        EnginePreference::Parallel,
        EnginePreference::Partitioned,
    ] {
        set_sparse_enabled(false);
        let dense = run(schemas, engine, 2);
        set_sparse_enabled(true);
        let sparse = run(schemas, engine, 2);
        assert_eq!(dense.proper, sparse.proper, "{engine:?}: proper schemas");
        assert_eq!(dense.implicit, sparse.implicit, "{engine:?}: reports");
        assert_eq!(dense.weak, sparse.weak, "{engine:?}: weak joins");
        match (&dense.compiled, &sparse.compiled) {
            (Some(d), Some(s)) => assert_eq!(
                d.decompile(),
                s.decompile(),
                "{engine:?}: compiled joins are logically identical"
            ),
            (d, s) => assert_eq!(d.is_some(), s.is_some()),
        }
    }
}

#[test]
fn deep_taxonomy_family_is_representation_independent() {
    // 4800 classes = 75 words per row: past the sparse floor, with the
    // ~12-ancestor closed rows of a binary tree — the shape where the
    // sparse representation actually carries the merge.
    let params = TaxonomyParams {
        dag_extra_parents: 150,
        ..TaxonomyParams::deep(4_800, 3, 17)
    };
    let family = taxonomy_family(&params, 2);
    let refs: Vec<&WeakSchema> = family.iter().collect();
    assert_dense_equals_sparse(&refs);
}

#[test]
fn bushy_dag_taxonomy_is_representation_independent() {
    // High fan-out with multiple inheritance, merged with one of its
    // partial views: wider closed rows (shared ancestors), still sparse
    // relative to 5000 classes.
    let params = TaxonomyParams::dag(5_000, 2, 29);
    let full = taxonomy(&params);
    let view = taxonomy_family(&params, 1).pop().unwrap();
    assert_dense_equals_sparse(&[&full, &view]);
}
