//! The ISSUE-6 acceptance property: the partitioned merge — split along
//! weakly-connected components, each component merged independently,
//! stitched at the seams — is **identical** to the unpartitioned merge
//! (reference symbolic, compiled, parallel) on every workload family, at
//! every thread count: equal weak joins, equal proper schemas, equal
//! implicit-class reports.

use proptest::prelude::*;

use schema_merge_core::{reference, EnginePreference, Merger, PlannedEngine, WeakSchema};
use schema_merge_workload::{
    pathological_nfa, schema_family, taxonomy, taxonomy_family, SchemaParams, TaxonomyParams,
};

fn assert_partitioned_agrees(schemas: &[&WeakSchema]) {
    let symbolic = reference::merge(schemas.iter().copied()).expect("symbolic merge");
    let compiled = Merger::new()
        .schemas(schemas.iter().copied())
        .engine(EnginePreference::Compiled)
        .execute()
        .expect("compiled merge");
    assert_eq!(compiled.proper, symbolic.proper);
    assert_eq!(compiled.implicit, symbolic.report);

    for threads in [1, 2, 4] {
        let part = Merger::new()
            .schemas(schemas.iter().copied())
            .engine(EnginePreference::Partitioned)
            .threads(threads)
            .execute()
            .expect("partitioned merge");
        assert_eq!(
            part.proper, symbolic.proper,
            "partitioned proper agrees at {threads} threads"
        );
        assert_eq!(
            part.implicit, symbolic.report,
            "partitioned implicit report agrees at {threads} threads"
        );
        let weak = match (&part.weak, &part.compiled) {
            (Some(weak), _) => weak.clone(),
            (None, Some(join)) => join.decompile(),
            (None, None) => unreachable!("merges produce a join"),
        };
        assert_eq!(weak, symbolic.weak, "partitioned weak join agrees");
        if part.plan.engine == PlannedEngine::Partitioned {
            assert!(part.plan.partitions >= 2, "partitioned plans split");
        } else {
            // Single-component input: the forced preference fell back
            // and said so.
            assert!(part
                .diagnostics
                .iter()
                .any(|d| d.code() == "W-PARTITION-CONNECTED"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn taxonomy_families_agree(seed in any::<u64>(), forests in 1usize..5, members in 2usize..4) {
        let params = TaxonomyParams {
            classes: 180,
            branching: 4,
            forests,
            dag_extra_parents: 20,
            labels: 8,
            arrows: 90,
            seed,
        };
        let family = taxonomy_family(&params, members);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        assert_partitioned_agrees(&refs);
    }

    #[test]
    fn random_families_agree(seed in any::<u64>(), count in 2usize..5) {
        // A wide vocabulary with few classes per schema leaves the union
        // graph disconnected often — both the split and the fallback
        // paths get exercised.
        let params = SchemaParams {
            vocabulary: 96,
            classes: 12,
            labels: 12,
            arrows: 10,
            specializations: 5,
            seed,
        };
        let family = schema_family(&params, count);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        assert_partitioned_agrees(&refs);
    }

    #[test]
    fn pathological_inputs_agree(n in 0usize..6, lone in 0usize..3) {
        // A hard NFA (one dense component) next to `lone` isolated
        // classes: the implicit-class explosion must stitch through the
        // partition seams untouched.
        let nfa = pathological_nfa(n);
        let mut builder = WeakSchema::builder();
        for i in 0..lone {
            builder = builder.class(format!("Lone{i}"));
        }
        let isolated = builder.build().unwrap();
        assert_partitioned_agrees(&[&nfa, &isolated]);
    }
}

#[test]
fn auto_planning_partitions_large_taxonomies() {
    // Above PARTITION_CLASS_THRESHOLD with several forests, the *auto*
    // planner must choose the partitioned engine on its own — and the
    // result must still match the forced-compiled merge exactly.
    let params = TaxonomyParams::deep(6_000, 6, 11);
    let schema = taxonomy(&params);
    let auto = Merger::new().schema(&schema).execute().expect("auto merge");
    assert_eq!(auto.plan.engine, PlannedEngine::Partitioned);
    assert_eq!(auto.plan.partitions, 6);
    let compiled = Merger::new()
        .schema(&schema)
        .engine(EnginePreference::Compiled)
        .execute()
        .expect("compiled merge");
    assert_eq!(auto.proper, compiled.proper);
    assert_eq!(auto.implicit, compiled.implicit);
}
