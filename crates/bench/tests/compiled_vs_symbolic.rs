//! The ISSUE-2/ISSUE-4 acceptance property: across every `workload`
//! generator family, **every plan configuration of the `Merger` façade**
//! — compiled (the default), symbolic, and compiled-onto-base at every
//! split of the inputs — agrees with the symbolic `reference` merge:
//! equal weak joins, equal proper schemas and reports, and (the weaker
//! public contract) alpha-isomorphism modulo implicit-class naming — and
//! the compiled representation round-trips losslessly.

use proptest::prelude::*;

use schema_merge_core::iso::alpha_isomorphic;
use schema_merge_core::{reference, Class, CompiledSchema, EnginePreference, Merger, WeakSchema};
use schema_merge_er::to_core;
use schema_merge_workload::{
    pathological_nfa, random_er_schema, schema_family, ErParams, SchemaParams,
};

fn assert_engines_agree(schemas: &[&WeakSchema]) {
    // The default (Auto) plan — compiled below the work threshold,
    // parallel above it; the parallel plan leaves the symbolic join to
    // an on-demand decompile.
    let compiled = Merger::new()
        .schemas(schemas.iter().copied())
        .execute()
        .expect("default merge");
    let symbolic = reference::merge(schemas.iter().copied()).expect("symbolic merge");
    let compiled_weak = match (compiled.weak.clone(), &compiled.compiled) {
        (Some(weak), _) => weak,
        (None, Some(join)) => join.decompile(),
        (None, None) => unreachable!("batch merges produce a join"),
    };
    assert_eq!(compiled_weak, symbolic.weak, "weak joins agree");
    assert_eq!(compiled.proper, symbolic.proper, "proper schemas agree");
    assert_eq!(compiled.implicit, symbolic.report, "reports agree");
    assert!(
        alpha_isomorphic(
            compiled.proper.as_weak(),
            symbolic.proper.as_weak(),
            Class::is_implicit,
        ),
        "alpha-isomorphic modulo implicit naming"
    );

    // The parallel plan configuration, across thread counts (and with
    // them every partition shape of the input list): equal AND
    // report-identical to the reference and the compiled engine.
    for threads in [1, 2, 4, 8] {
        let parallel = Merger::new()
            .schemas(schemas.iter().copied())
            .engine(EnginePreference::Parallel)
            .threads(threads)
            .execute()
            .expect("parallel plan");
        assert_eq!(
            parallel.proper, symbolic.proper,
            "parallel plan agrees at {threads} threads"
        );
        assert_eq!(parallel.implicit, symbolic.report);
        assert_eq!(
            parallel
                .compiled
                .as_ref()
                .expect("parallel keeps the compiled join")
                .decompile(),
            compiled_weak,
            "parallel join is bit-identical at {threads} threads"
        );
    }

    // The symbolic plan configuration through the same façade.
    let sym_plan = Merger::new()
        .schemas(schemas.iter().copied())
        .engine(EnginePreference::Symbolic)
        .execute()
        .expect("symbolic plan");
    assert_eq!(sym_plan.proper, symbolic.proper, "symbolic plan agrees");
    assert_eq!(sym_plan.implicit, symbolic.report);

    // The onto-base plan configuration, splitting the inputs at the
    // midpoint (and at zero: completing extras onto the empty base).
    for k in [0, schemas.len() / 2] {
        let base = Merger::new()
            .schemas(schemas[..k].iter().copied())
            .join()
            .expect("base joins")
            .into_parts()
            .1
            .expect("compiled base");
        let onto = Merger::new()
            .onto_base(&base)
            .schemas(schemas[k..].iter().copied())
            .execute()
            .expect("onto-base plan");
        assert_eq!(onto.proper, symbolic.proper, "onto-base plan agrees");
        assert_eq!(onto.implicit, symbolic.report);
    }

    // Lossless compilation of both the join and the completed result.
    for schema in [&compiled_weak, compiled.proper.as_weak()] {
        assert_eq!(&CompiledSchema::compile(schema).decompile(), schema);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_family_engines_agree(seed in any::<u64>(), count in 2usize..5) {
        let params = SchemaParams {
            vocabulary: 48,
            classes: 24,
            labels: 12,
            arrows: 20,
            specializations: 8,
            seed,
        };
        let family = schema_family(&params, count);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        assert_engines_agree(&refs);
    }

    #[test]
    fn pathological_family_engines_agree(n in 0usize..7) {
        let schema = pathological_nfa(n);
        assert_engines_agree(&[&schema]);
    }

    #[test]
    fn er_roundtrip_family_engines_agree(seed in any::<u64>()) {
        let params = ErParams {
            entities: 10,
            domains: 6,
            attributes: 20,
            relationships: 5,
            isa: 3,
            one_role_percent: 30,
            seed,
        };
        let (g1, _) = to_core(&random_er_schema(&params));
        let (g2, _) = to_core(&random_er_schema(&ErParams {
            seed: seed.wrapping_add(1),
            ..params
        }));
        assert_engines_agree(&[&g1, &g2]);
    }

    #[test]
    fn wide_family_engines_agree(seed in any::<u64>(), members in 2usize..24) {
        // The daemon's traffic shape at proptest scale (the bench runs
        // it at 64 members): many small schemas, one shared vocabulary.
        // The upper range crosses the 8-schemas-per-worker floor, so the
        // sharded join's multi-partition path is exercised too.
        let family = schema_merge_workload::wide_family(members, seed);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        assert_engines_agree(&refs);
    }

    #[test]
    fn decompile_of_compile_is_identity_on_workloads(seed in any::<u64>()) {
        let params = SchemaParams {
            vocabulary: 64,
            classes: 32,
            labels: 16,
            arrows: 48,
            specializations: 16,
            seed,
        };
        let schema = schema_merge_workload::random_schema(&params);
        prop_assert_eq!(CompiledSchema::compile(&schema).decompile(), schema);
    }
}

#[test]
fn merge_result_feedback_loop_agrees() {
    // Stepwise protocol across engines: feed a completed merge result (with
    // its implicit classes) back in, exercising the canonicalization path.
    let params = SchemaParams {
        vocabulary: 32,
        classes: 16,
        labels: 4,
        arrows: 24,
        specializations: 8,
        seed: 99,
    };
    let family = schema_family(&params, 3);
    let first = Merger::new()
        .schemas([&family[0], &family[1]])
        .execute()
        .expect("first merge");
    let followup = [first.proper.as_weak(), &family[2]];
    assert_engines_agree(&followup);
}
