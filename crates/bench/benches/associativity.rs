//! E1: the cost of order-independence — the paper's merge vs the naive
//! stepwise baseline (which must re-complete at every step and still
//! gets order-dependent answers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_merge_baseline::NaiveMerger;
use schema_merge_core::{MergeOutcome, Merger};

fn merge<'a>(
    schemas: impl IntoIterator<Item = &'a schema_merge_core::WeakSchema>,
) -> Result<MergeOutcome, schema_merge_core::MergeError> {
    // `into_outcome` decompiles the join on demand when the Auto plan
    // resolves an engine (parallel) that skips the symbolic join.
    Merger::new()
        .schemas(schemas)
        .execute()
        .map(schema_merge_core::MergeReport::into_outcome)
}
use schema_merge_workload::{schema_family, SchemaParams};

fn family(count: usize) -> Vec<schema_merge_core::WeakSchema> {
    schema_family(
        &SchemaParams {
            vocabulary: 64,
            classes: 12,
            labels: 16,
            arrows: 16,
            specializations: 6,
            seed: 11,
        },
        count,
    )
}

fn bench_paper_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("associativity/paper_merge");
    for count in [2usize, 4, 6] {
        let schemas = family(count);
        group.bench_with_input(
            BenchmarkId::from_parameter(count),
            &schemas,
            |b, schemas| {
                b.iter(|| merge(schemas.iter()).expect("compatible").proper);
            },
        );
    }
    group.finish();
}

fn bench_naive_stepwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("associativity/naive_stepwise");
    for count in [2usize, 4, 6] {
        let schemas = family(count);
        group.bench_with_input(
            BenchmarkId::from_parameter(count),
            &schemas,
            |b, schemas| {
                b.iter(|| {
                    NaiveMerger::new()
                        .merge_sequence(schemas.iter())
                        .expect("compatible")
                });
            },
        );
    }
    group.finish();
}

fn bench_order_permutations(c: &mut Criterion) {
    // Verifying order-independence is itself cheap: three merges plus
    // two equality checks on canonical forms.
    let schemas = family(4);
    c.bench_function("associativity/verify_three_orders", |b| {
        b.iter(|| {
            let forward = merge(schemas.iter()).expect("a").proper;
            let backward = merge(schemas.iter().rev()).expect("b").proper;
            let rotated = merge(schemas[1..].iter().chain(&schemas[..1]))
                .expect("c")
                .proper;
            assert!(forward == backward && backward == rotated);
            forward
        });
    });
}

criterion_group!(
    benches,
    bench_paper_merge,
    bench_naive_stepwise,
    bench_order_permutations
);
criterion_main!(benches);
