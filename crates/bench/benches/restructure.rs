//! E8 companions: cost of the §3/§7 pre-merge tooling — renaming,
//! synonym suggestion, reify/flatten, and ER normalization — as schema
//! size grows. These are interactive-loop operations, so latency (not
//! just throughput) is the quantity of interest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schema_merge_core::restructure::{flatten_class, reify_arrow};
use schema_merge_core::{synonym_candidates, Class, Label, Renaming, WeakSchema};
use schema_merge_er::{normalize_pair, NormalPolicy};
use schema_merge_workload::{conflicting_er_pair, random_schema, SchemaParams};

fn params(classes: usize) -> SchemaParams {
    SchemaParams {
        vocabulary: classes * 2,
        classes,
        labels: (classes / 2).max(4),
        arrows: classes * 2,
        specializations: classes / 2,
        seed: 4242,
    }
}

/// A renaming touching ~half the classes of the generated vocabulary.
fn bulk_renaming(schema: &WeakSchema) -> Renaming {
    let mut renaming = Renaming::new();
    for (i, class) in schema.classes().enumerate() {
        if let (0, Some(name)) = (i % 2, class.name()) {
            renaming = renaming.class(name.clone(), format!("renamed-{name}"));
        }
    }
    renaming
}

fn bench_rename(c: &mut Criterion) {
    let mut group = c.benchmark_group("restructure/rename_apply");
    for classes in [16usize, 64, 256] {
        let schema = random_schema(&params(classes));
        let renaming = bulk_renaming(&schema);
        group.throughput(Throughput::Elements(schema.num_classes() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &(schema, renaming),
            |b, (schema, renaming)| {
                b.iter(|| renaming.apply(schema).expect("renames"));
            },
        );
    }
    group.finish();
}

fn bench_synonym_suggestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("restructure/synonym_candidates");
    for classes in [16usize, 64, 256] {
        let left = random_schema(&params(classes));
        // A disjointly-named copy with the same label vocabulary: every
        // class is a potential synonym, the worst case for the O(n²)
        // signature comparison.
        let (right, _) = bulk_renaming(&left)
            .apply(&left)
            .expect("renaming a generated schema succeeds");
        group.throughput(Throughput::Elements(classes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &(left, right),
            |b, (left, right)| {
                b.iter(|| synonym_candidates(left, right, 0.5));
            },
        );
    }
    group.finish();
}

fn bench_reify_flatten(c: &mut Criterion) {
    let mut group = c.benchmark_group("restructure/reify_flatten_roundtrip");
    for classes in [16usize, 64, 256] {
        // A schema with one designated direct arrow in a sea of others.
        let mut builder = WeakSchema::builder().arrow("Person", "owns", "Dog");
        for i in 0..classes {
            builder = builder.arrow(format!("C{i}"), format!("a{}", i % 8), format!("D{i}"));
        }
        let schema = builder.build().expect("valid");
        group.throughput(Throughput::Elements(schema.num_arrows() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &schema,
            |b, schema| {
                b.iter(|| {
                    let reified = reify_arrow(
                        schema,
                        &Class::named("Person"),
                        &Label::new("owns"),
                        "Owns",
                        "owner",
                        "pet",
                    )
                    .expect("reifies");
                    flatten_class(
                        &reified,
                        &Class::named("Owns"),
                        &Label::new("owner"),
                        &Label::new("pet"),
                        "owns",
                    )
                    .expect("flattens")
                });
            },
        );
    }
    group.finish();
}

fn bench_normalize(c: &mut Criterion) {
    let mut group = c.benchmark_group("restructure/normalize_pair");
    for conflicts in [1usize, 4, 16] {
        let pair = conflicting_er_pair(conflicts);
        group.throughput(Throughput::Elements(conflicts as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(conflicts),
            &pair,
            |b, (left, right)| {
                b.iter(|| {
                    let outcome = normalize_pair(left, right, NormalPolicy::PreferEntity);
                    assert!(outcome.is_clean());
                    outcome
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rename,
    bench_synonym_suggestion,
    bench_reify_flatten,
    bench_normalize
);
criterion_main!(benches);
