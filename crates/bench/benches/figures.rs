//! Micro-benchmarks of the paper's own worked examples: the cost of
//! reproducing each figure (they are small — this mostly measures fixed
//! overheads of the closure and completion machinery).

use criterion::{criterion_group, criterion_main, Criterion};
use schema_merge_bench::figures;

fn bench_each_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.bench_function("fig3_implicit_class", |b| {
        b.iter(figures::figure_3);
    });
    group.bench_function("fig5_nonassociativity", |b| {
        b.iter(figures::figure_5);
    });
    group.bench_function("fig7_completion_choice", |b| {
        b.iter(figures::figure_7);
    });
    group.bench_function("fig9_key_merge", |b| {
        b.iter(figures::figure_9);
    });
    group.bench_function("fig11_lower_merge", |b| {
        b.iter(figures::figure_11);
    });
    group.finish();
}

fn bench_whole_table(c: &mut Criterion) {
    c.bench_function("figures/full_reproduction_table", |b| {
        b.iter(figures::all_rows);
    });
}

criterion_group!(benches, bench_each_figure, bench_whole_table);
criterion_main!(benches);
