//! E4: the minimal satisfactory key assignment (§5) and family algebra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_merge_core::{KeyAssignment, KeySet, SuperkeyFamily};
use schema_merge_workload::{random_schema, SchemaParams};

fn contributions(
    schema: &schema_merge_core::WeakSchema,
) -> Vec<(schema_merge_core::Class, SuperkeyFamily)> {
    schema
        .classes()
        .filter_map(|class| {
            let labels = schema.labels_of(class);
            let mut iter = labels.iter();
            let first = iter.next()?.clone();
            let mut family = SuperkeyFamily::single(KeySet::new([first]));
            if let Some(second) = iter.next() {
                family.insert_key(KeySet::new([second.clone(), iter.next()?.clone()]));
            }
            Some((class.clone(), family))
        })
        .collect()
}

fn bench_minimal_satisfactory(c: &mut Criterion) {
    let mut group = c.benchmark_group("keys/minimal_satisfactory");
    for classes in [16usize, 64, 256] {
        let schema = random_schema(&SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(3),
            arrows: classes * 2,
            specializations: classes,
            seed: 31,
        });
        let contribs = contributions(&schema);
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &(schema, contribs),
            |b, (schema, contribs)| {
                b.iter(|| {
                    KeyAssignment::minimal_satisfactory(
                        schema,
                        contribs.iter().map(|(c, f)| (c, f)),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_family_algebra(c: &mut Criterion) {
    // Antichain maintenance under adversarial insert order: many
    // overlapping keys, inserted largest-first.
    c.bench_function("keys/antichain_insertion", |b| {
        let labels: Vec<String> = (0..12).map(|i| format!("l{i}")).collect();
        b.iter(|| {
            let mut family = SuperkeyFamily::none();
            for width in (1..=4usize).rev() {
                for start in 0..labels.len() - width {
                    family.insert_key(KeySet::new(labels[start..start + width].iter().cloned()));
                }
            }
            family
        });
    });

    c.bench_function("keys/family_intersection", |b| {
        let left = SuperkeyFamily::from_keys(
            (0..8).map(|i| KeySet::new([format!("a{i}"), format!("b{i}")])),
        );
        let right = SuperkeyFamily::from_keys(
            (0..8).map(|i| KeySet::new([format!("b{i}"), format!("c{i}")])),
        );
        b.iter(|| left.intersection(&right));
    });
}

criterion_group!(benches, bench_minimal_satisfactory, bench_family_algebra);
criterion_main!(benches);
