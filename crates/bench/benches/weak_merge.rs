//! E3: weak least-upper-bound throughput vs schema size and arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use schema_merge_bench::facade_join as weak_join_all;
use schema_merge_workload::{schema_family, SchemaParams};

fn params(classes: usize) -> SchemaParams {
    SchemaParams {
        vocabulary: classes * 2,
        classes,
        labels: (classes / 2).max(4),
        arrows: classes * 3 / 2,
        specializations: classes / 2,
        seed: 23,
    }
}

fn bench_two_way(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_join/two_way");
    for classes in [16usize, 64, 256] {
        let family = schema_family(&params(classes), 2);
        let arrows: usize = family.iter().map(|s| s.num_arrows()).sum();
        group.throughput(Throughput::Elements(arrows as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &family,
            |b, family| {
                b.iter(|| weak_join_all(family.iter()).expect("compatible"));
            },
        );
    }
    group.finish();
}

fn bench_n_way(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_join/n_way");
    for count in [2usize, 4, 8, 16] {
        let family = schema_family(&params(32), count);
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::from_parameter(count), &family, |b, family| {
            b.iter(|| weak_join_all(family.iter()).expect("compatible"));
        });
    }
    group.finish();
}

fn bench_fold_vs_batch(c: &mut Criterion) {
    // The LUB can be computed by folding binary joins or in one pass;
    // results are equal (associativity), costs are not.
    let family = schema_family(&params(32), 8);
    let mut group = c.benchmark_group("weak_join/fold_vs_batch");
    group.bench_function("batch", |b| {
        b.iter(|| weak_join_all(family.iter()).expect("compatible"));
    });
    group.bench_function("fold", |b| {
        b.iter(|| {
            let mut acc = family[0].clone();
            for next in &family[1..] {
                acc = schema_merge_core::weak_join(&acc, next).expect("compatible");
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_two_way, bench_n_way, bench_fold_vs_batch);
criterion_main!(benches);
