//! E2: completion cost — realistic densities vs the exponential NFA
//! family (§7 open question 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_merge_core::complete::complete_with_report;
use schema_merge_workload::{pathological_nfa, random_schema, SchemaParams};

fn bench_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("completion/random");
    for classes in [16usize, 32, 64, 128] {
        let schema = random_schema(&SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(2),
            arrows: classes * 2,
            specializations: classes / 2,
            seed: 5,
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &schema,
            |b, schema| {
                b.iter(|| complete_with_report(schema).expect("completion"));
            },
        );
    }
    group.finish();
}

fn bench_pathological(c: &mut Criterion) {
    // Input size is linear in n, output (and time) is ~2^n: the subset
    // construction at work. Keep n modest so the suite stays fast.
    let mut group = c.benchmark_group("completion/pathological_nfa");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let schema = pathological_nfa(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &schema, |b, schema| {
            b.iter(|| complete_with_report(schema).expect("completion"));
        });
    }
    group.finish();
}

fn bench_already_proper(c: &mut Criterion) {
    // Completion of an already-proper schema is the fixpoint discovery
    // alone — the no-op baseline.
    let schema = random_schema(&SchemaParams {
        vocabulary: 64,
        classes: 64,
        labels: 64,
        arrows: 64,
        specializations: 16,
        seed: 9,
    });
    c.bench_function("completion/near_proper", |b| {
        b.iter(|| complete_with_report(&schema).expect("completion"));
    });
}

criterion_group!(
    benches,
    bench_random,
    bench_pathological,
    bench_already_proper
);
criterion_main!(benches);
