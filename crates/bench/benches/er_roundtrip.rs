//! E6: ER merging through the graph model — translation, merge and
//! read-back costs (§2, §7 strata preservation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_merge_er::{from_core, merge_er, to_core};
use schema_merge_workload::{random_er_schema, ErParams};

fn er_pair(entities: usize) -> (schema_merge_er::ErSchema, schema_merge_er::ErSchema) {
    let params = ErParams {
        entities,
        domains: entities / 2 + 1,
        attributes: entities * 2,
        relationships: entities / 2,
        isa: entities / 3,
        one_role_percent: 30,
        seed: 17,
    };
    let g1 = random_er_schema(&params);
    let g2 = random_er_schema(&ErParams { seed: 18, ..params });
    (g1, g2)
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("er/translate");
    for entities in [8usize, 32, 128] {
        let (g1, _) = er_pair(entities);
        group.bench_with_input(BenchmarkId::new("to_core", entities), &g1, |b, er| {
            b.iter(|| to_core(er));
        });
        let (core, strata) = to_core(&g1);
        group.bench_with_input(
            BenchmarkId::new("from_core", entities),
            &(core, strata),
            |b, (core, strata)| {
                b.iter(|| from_core(core, strata).expect("stratified"));
            },
        );
    }
    group.finish();
}

fn bench_full_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("er/merge");
    for entities in [8usize, 16, 32] {
        let (g1, g2) = er_pair(entities);
        group.bench_with_input(
            BenchmarkId::from_parameter(entities),
            &(g1, g2),
            |b, (g1, g2)| {
                b.iter(|| merge_er([g1, g2]).expect("mergeable"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_translate, bench_full_merge);
criterion_main!(benches);
