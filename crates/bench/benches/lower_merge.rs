//! E5: lower merges (GLB) and their completion (§6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_workload::{schema_family, SchemaParams};

fn annotated_family(classes: usize, count: usize) -> Vec<AnnotatedSchema> {
    schema_family(
        &SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(2),
            arrows: classes,
            specializations: classes / 3,
            seed: 41,
        },
        count,
    )
    .into_iter()
    .map(AnnotatedSchema::all_required)
    .collect()
}

fn bench_lower_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_merge/glb");
    for classes in [16usize, 64, 128] {
        let family = annotated_family(classes, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &family,
            |b, family| {
                b.iter(|| lower_merge(family.iter()));
            },
        );
    }
    group.finish();
}

fn bench_lower_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_merge/complete");
    for classes in [16usize, 32, 64] {
        let merged = lower_merge(annotated_family(classes, 2).iter());
        group.bench_with_input(
            BenchmarkId::from_parameter(classes),
            &merged,
            |b, merged| {
                b.iter(|| lower_complete(merged).expect("lower completion"));
            },
        );
    }
    group.finish();
}

fn bench_disagreement_width(c: &mut Criterion) {
    // The number of sites disagreeing on one arrow target controls the
    // union-class origin width.
    let mut group = c.benchmark_group("lower_merge/disagreement_width");
    for sites in [2usize, 4, 8, 16] {
        let schemas: Vec<AnnotatedSchema> = (0..sites)
            .map(|i| {
                AnnotatedSchema::builder()
                    .arrow("Pet", "home", format!("Site{i}"))
                    .build()
                    .expect("site schema")
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(sites),
            &schemas,
            |b, schemas| {
                b.iter(|| {
                    let merged = lower_merge(schemas.iter());
                    lower_complete(&merged).expect("lower completion")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lower_merge,
    bench_lower_complete,
    bench_disagreement_width
);
criterion_main!(benches);
