//! The `bench --json` runner: the machine-readable perf trajectory.
//!
//! Criterion benches are great for interactive work but CI never ran
//! them, so no PR could *claim* a speedup. This module measures the two
//! merge engines — the symbolic reference path
//! ([`schema_merge_core::reference`]) and the compiled path (dense ids +
//! bitset closures, [`schema_merge_core::compile`]) — on the `workload`
//! generators and emits one `BENCH_<n>.json` datapoint per run:
//! `(family, op, n_classes, variant, median_ns, throughput)` records plus
//! derived compiled-over-symbolic speedups. CI uploads the file as an
//! artifact on every PR, establishing the trajectory every future
//! scaling PR appends to.

use std::hint::black_box;
use std::time::Instant;

use schema_merge_core::{merge_compiled, reference, weak_join_all, WeakSchema};
use schema_merge_er::to_core;
use schema_merge_workload::{pathological_nfa, random_er_schema, ErParams, SchemaParams};

/// Which engine a record measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The retained pre-compilation `BTreeMap`/`BTreeSet` path.
    Symbolic,
    /// The dense-id bitset/CSR path.
    Compiled,
}

impl Variant {
    /// The JSON name of the variant.
    pub fn as_str(self) -> &'static str {
        match self {
            Variant::Symbolic => "symbolic",
            Variant::Compiled => "compiled",
        }
    }
}

/// One measurement: an operation on a workload at a size, on one engine.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload family: `random`, `pathological` or `er_roundtrip`.
    pub family: &'static str,
    /// Operation: `weak_join`, `complete` or `merge`.
    pub op: &'static str,
    /// Classes in the (joined) input schema.
    pub n_classes: usize,
    /// Arrows in the (joined) input schema — the throughput element.
    pub n_arrows: usize,
    /// Engine measured.
    pub variant: Variant,
    /// Timed iterations (after one warmup).
    pub iters: usize,
    /// Median wall time of one iteration, nanoseconds.
    pub median_ns: u128,
    /// Arrows processed per second at the median.
    pub throughput: f64,
}

/// A derived symbolic-over-compiled ratio for one (family, op, size).
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Workload family.
    pub family: &'static str,
    /// Operation.
    pub op: &'static str,
    /// Classes in the input.
    pub n_classes: usize,
    /// `symbolic median / compiled median` — > 1 means compiled wins.
    pub speedup: f64,
}

/// A full run of the suite.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// All measurements.
    pub records: Vec<BenchRecord>,
    /// All derived speedups.
    pub speedups: Vec<Speedup>,
}

fn median_ns(iters: usize, mut routine: impl FnMut()) -> u128 {
    routine(); // warmup
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        routine();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Suite {
    iters: usize,
    report: BenchReport,
}

impl Suite {
    fn measure_pair(
        &mut self,
        family: &'static str,
        op: &'static str,
        joined: &WeakSchema,
        mut symbolic: impl FnMut(),
        mut compiled: impl FnMut(),
    ) {
        let n_classes = joined.num_classes();
        let n_arrows = joined.num_arrows();
        let sym_ns = median_ns(self.iters, &mut symbolic);
        let comp_ns = median_ns(self.iters, &mut compiled);
        for (variant, ns) in [(Variant::Symbolic, sym_ns), (Variant::Compiled, comp_ns)] {
            self.report.records.push(BenchRecord {
                family,
                op,
                n_classes,
                n_arrows,
                variant,
                iters: self.iters,
                median_ns: ns,
                throughput: n_arrows as f64 / (ns.max(1) as f64 / 1e9),
            });
        }
        self.report.speedups.push(Speedup {
            family,
            op,
            n_classes,
            speedup: sym_ns as f64 / comp_ns.max(1) as f64,
        });
    }

    fn random_family(&mut self, classes: usize) {
        // Densities follow the paper's "realistic regime" (and the E2
        // Criterion bench): many labels, ~2 arrows per class across the
        // *joined* schema. Denser label reuse turns the Imp fixpoint into
        // a hard NFA determinization — that regime is measured separately
        // by the `pathological` family, not smuggled in here.
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(4),
            arrows: classes / 2,
            specializations: classes / 8,
            seed: 0xB05E + classes as u64,
        };
        let family = schema_merge_workload::schema_family(&params, 4);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let joined = weak_join_all(refs.iter().copied()).expect("compatible family");

        self.measure_pair(
            "random",
            "weak_join",
            &joined,
            || {
                black_box(reference::weak_join_all(refs.iter().copied()).expect("compatible"));
            },
            || {
                black_box(weak_join_all(refs.iter().copied()).expect("compatible"));
            },
        );
        self.measure_pair(
            "random",
            "complete",
            &joined,
            || {
                black_box(reference::complete_with_report(&joined).expect("completes"));
            },
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&joined).expect("completes"),
                );
            },
        );
        self.measure_pair(
            "random",
            "merge",
            &joined,
            || {
                black_box(reference::merge(refs.iter().copied()).expect("merges"));
            },
            || {
                black_box(merge_compiled(refs.iter().copied()).expect("merges"));
            },
        );
    }

    fn pathological(&mut self, n: usize) {
        let schema = pathological_nfa(n);
        self.measure_pair(
            "pathological",
            "complete",
            &schema,
            || {
                black_box(reference::complete_with_report(&schema).expect("completes"));
            },
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&schema).expect("completes"),
                );
            },
        );
    }

    fn er_roundtrip(&mut self, entities: usize) {
        let params = ErParams {
            entities,
            domains: entities / 2 + 1,
            attributes: entities * 2,
            relationships: entities / 2,
            isa: entities / 3,
            one_role_percent: 30,
            seed: 17,
        };
        let (core1, _) = to_core(&random_er_schema(&params));
        let (core2, _) = to_core(&random_er_schema(&ErParams { seed: 18, ..params }));
        let refs = [&core1, &core2];
        let joined = weak_join_all(refs).expect("compatible");
        self.measure_pair(
            "er_roundtrip",
            "merge",
            &joined,
            || {
                black_box(reference::merge(refs).expect("merges"));
            },
            || {
                black_box(merge_compiled(refs).expect("merges"));
            },
        );
    }
}

/// Runs the suite. `quick` is the CI profile: fewer iterations and only
/// the sizes the acceptance trajectory tracks (including the 200-class
/// random workload).
pub fn run_suite(quick: bool) -> BenchReport {
    let mut suite = Suite {
        iters: if quick { 7 } else { 15 },
        report: BenchReport::default(),
    };
    let random_sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 100, 200, 400]
    };
    for &classes in random_sizes {
        suite.random_family(classes);
    }
    suite.pathological(if quick { 8 } else { 10 });
    suite.er_roundtrip(32);
    suite.report
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the report as the `BENCH_<n>.json` document (no external JSON
/// dependency: the structure is flat and the strings are identifiers).
pub fn to_json(report: &BenchReport, pr_index: u32) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench_schema_version\": 1,\n  \"pr\": {pr_index},\n"
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \"n_arrows\": {}, \
             \"variant\": \"{}\", \"iters\": {}, \"median_ns\": {}, \
             \"throughput_arrows_per_s\": {:.1}}}{comma}\n",
            json_escape(r.family),
            json_escape(r.op),
            r.n_classes,
            r.n_arrows,
            r.variant.as_str(),
            r.iters,
            r.median_ns,
            r.throughput,
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    for (i, s) in report.speedups.iter().enumerate() {
        let comma = if i + 1 < report.speedups.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \
             \"compiled_speedup\": {:.2}}}{comma}\n",
            json_escape(s.family),
            json_escape(s.op),
            s.n_classes,
            s.speedup,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as a human-readable table.
pub fn to_table(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<10} {:>9} {:>9}  {:>14} {:>14} {:>9}\n",
        "family", "op", "classes", "arrows", "symbolic µs", "compiled µs", "speedup"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for s in &report.speedups {
        let find = |variant: Variant| {
            report
                .records
                .iter()
                .find(|r| {
                    r.family == s.family
                        && r.op == s.op
                        && r.n_classes == s.n_classes
                        && r.variant == variant
                })
                .expect("paired record")
        };
        let sym = find(Variant::Symbolic);
        let comp = find(Variant::Compiled);
        out.push_str(&format!(
            "{:<14} {:<10} {:>9} {:>9}  {:>14.1} {:>14.1} {:>8.2}x\n",
            s.family,
            s.op,
            s.n_classes,
            sym.n_arrows,
            sym.median_ns as f64 / 1e3,
            comp.median_ns as f64 / 1e3,
            s.speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_produces_paired_records_and_valid_json() {
        let mut suite = Suite {
            iters: 1,
            report: BenchReport::default(),
        };
        suite.random_family(16);
        let report = suite.report;
        assert_eq!(report.records.len(), 6, "3 ops × 2 variants");
        assert_eq!(report.speedups.len(), 3);
        let json = to_json(&report, 2);
        assert!(json.contains("\"bench_schema_version\": 1"));
        assert!(json.contains("\"variant\": \"compiled\""));
        assert!(json.contains("\"op\": \"weak_join\""));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&report);
        assert!(table.contains("weak_join"));
    }
}
