//! The `bench --json` runner: the machine-readable perf trajectory.
//!
//! Criterion benches are great for interactive work but CI never ran
//! them, so no PR could *claim* a speedup. This module measures paired
//! engine variants on the `workload` generators and emits one
//! `BENCH_<n>.json` datapoint per run — `(family, op, n_classes,
//! variant, median_ns, allocs_per_iter, throughput)` records plus
//! derived baseline-over-improved speedups (time) and allocation ratios
//! — which CI uploads as an artifact on every PR and guards with the
//! `guard` binary against the committed trajectory.
//!
//! Variant pairs tracked:
//!
//! * `symbolic` vs `compiled` — the retained reference engine against
//!   the dense-id bitset/CSR core (the PR-2 trajectory);
//! * `compiled` vs `parallel` — the sequential compiled engine against
//!   the parallel engine (shared-interner sharded join, tree reduction,
//!   frontier-parallel completion, end-to-end id space) at the suite's
//!   `--threads` budget;
//! * `compiled-nopool` vs `compiled` — the compiled engine with the
//!   scratch pool disabled (the pre-pool allocation behavior) against
//!   the pooled engine, making the allocations-per-merge win measurable
//!   rather than inferable;
//! * `full` vs `incremental` — one-shot re-merge of every registry
//!   member against the registry's cached-join incremental publish, and
//!   `full` vs `full-parallel` for the cold-rebuild path on the
//!   parallel engine;
//! * `durable` vs `memory` — the same warm incremental publish on a
//!   registry whose commits are WAL'd and fsync'd to a local data dir
//!   against a purely in-memory one: the measured per-commit cost of
//!   crash safety;
//! * `compiled-dense` vs `compiled` — the compiled engine with the
//!   adaptive sparse rows disabled (all-dense bitset matrices, the
//!   pre-adaptive behavior) against the default, on the `taxonomy`
//!   family where the memory headline (`mem_ratio`) lives;
//! * `compiled-dense` vs `partitioned` — the same dense monolith
//!   against the component-split merge on multi-forest taxonomies.
//!
//! JSON schema version 5: records carry a `phases` map — wall time per
//! pipeline stage (span name → nanoseconds, from one extra untimed
//! instrumented run), so a speedup can be attributed to the stage that
//! earned it. Version 4 added `peak_bytes` (per-iteration heap
//! high-water mark) and `mem_ratio` per speedup; version 3 added
//! `allocs_per_iter`/`alloc_ratio`; version 2 had neither; version 1
//! hard coded the symbolic/compiled pair.
//!
//! ## The counting allocator
//!
//! Allocation and byte counts come from a std-only `#[global_allocator]`
//! hook: a transparent wrapper over [`std::alloc::System`] that bumps
//! relaxed atomics per `alloc`/`alloc_zeroed`/`realloc` call — a call
//! counter plus a live-byte gauge with a resettable high-water mark, so
//! each measured iteration can report its peak heap footprint. It is
//! registered for this crate's binaries and tests only (the allocator of
//! a Rust program is chosen by the final binary, so the library crates
//! are unaffected), and the counters cost a few uncontended atomic adds
//! per allocation — identical overhead for every variant, so paired
//! comparisons stay fair.

use std::hint::black_box;
use std::time::{Duration, Instant};

use schema_merge_core::row::set_sparse_enabled;
use schema_merge_core::{reference, EnginePreference, Merger, WeakSchema};
use schema_merge_er::to_core;
use schema_merge_registry::storage::{Fault, FaultSchedule, FaultStore, LocalStore, OpKind};
use schema_merge_registry::{MergeStrategy, Registry, RetryPolicy};
use schema_merge_supergraph::Supergraph;
use schema_merge_telemetry as telemetry;
use schema_merge_workload::{
    pathological_nfa, random_er_schema, taxonomy_family, wide_family, ErParams, SchemaParams,
    TaxonomyParams,
};

/// The counting global allocator (see the module docs).
#[allow(unsafe_code)]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    fn on_alloc(size: usize) {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        let now = CURRENT_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
    }

    /// Counts allocations and tracks live/peak heap bytes, then defers
    /// to [`System`].
    pub struct CountingAllocator;

    // SAFETY: every method defers verbatim to `System`, which upholds
    // the `GlobalAlloc` contract; the counters have no effect on layout,
    // pointers or aliasing.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            on_alloc(layout.size());
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            on_alloc(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let grown = (new_size - layout.size()) as u64;
                let now = CURRENT_BYTES.fetch_add(grown, Ordering::Relaxed) + grown;
                PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
            }
            unsafe { System.realloc(ptr, layout, new_size) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            CURRENT_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }
    }

    /// Total allocation calls since process start (monotone).
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// Heap bytes currently live (allocated and not yet freed).
    pub fn current_bytes() -> u64 {
        CURRENT_BYTES.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live size. Call before
    /// a measured region, then read [`peak_bytes`] after it.
    pub fn reset_peak() {
        PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The high-water mark of live heap bytes since the last
    /// [`reset_peak`] (or process start).
    pub fn peak_bytes() -> u64 {
        PEAK_BYTES.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: counting_alloc::CountingAllocator = counting_alloc::CountingAllocator;

pub use counting_alloc::{allocations, current_bytes, peak_bytes, reset_peak};

/// The compiled engine measured THROUGH the `Merger` façade — what every
/// production caller (CLI, daemon, registry) actually runs, so any
/// overhead the façade adds (planning, provenance, diagnostics) is part
/// of the measurement rather than hidden behind it. Pinned to the
/// sequential compiled plan so the pair against `parallel` measures the
/// engines, not the auto-planner.
fn facade_merge_compiled<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>) {
    black_box(
        Merger::new()
            .schemas(schemas)
            .engine(EnginePreference::Compiled)
            .execute()
            .expect("workload merges"),
    );
}

/// The parallel engine through the same façade, at a fixed budget.
fn facade_merge_parallel<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>, threads: usize) {
    black_box(
        Merger::new()
            .schemas(schemas)
            .engine(EnginePreference::Parallel)
            .threads(threads)
            .execute()
            .expect("workload merges"),
    );
}

fn facade_join<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>) -> WeakSchema {
    crate::facade_join(schemas).expect("workload joins")
}

/// The retained pre-compilation `BTreeMap`/`BTreeSet` path.
pub const VARIANT_SYMBOLIC: &str = "symbolic";
/// The dense-id bitset/CSR path (sequential).
pub const VARIANT_COMPILED: &str = "compiled";
/// The compiled path with the scratch pool disabled — the pre-pool
/// allocation behavior, kept measurable for the trajectory.
pub const VARIANT_COMPILED_NOPOOL: &str = "compiled-nopool";
/// The parallel engine at the suite's thread budget.
pub const VARIANT_PARALLEL: &str = "parallel";
/// One-shot re-merge of all registry members.
pub const VARIANT_FULL: &str = "full";
/// The one-shot re-merge on the parallel engine.
pub const VARIANT_FULL_PARALLEL: &str = "full-parallel";
/// Registry publish reusing the cached join of unchanged members.
pub const VARIANT_INCREMENTAL: &str = "incremental";
/// Registry publish on a durable registry: the commit is framed,
/// appended to the WAL and fsync'd before it is acknowledged.
pub const VARIANT_DURABLE: &str = "durable";
/// Registry publish on a purely in-memory registry.
pub const VARIANT_MEMORY: &str = "memory";
/// The durable publish with a 5% transient append-fault rate injected
/// under the WAL: each faulted commit is retried under the registry's
/// backoff policy until it lands, so the measurement prices resilience,
/// not data loss.
pub const VARIANT_DURABLE_FAULTY: &str = "durable-faulty";
/// The compiled engine with the adaptive sparse rows disabled — every
/// closure matrix dense, the pre-adaptive memory behavior.
pub const VARIANT_COMPILED_DENSE: &str = "compiled-dense";
/// The partitioned engine: split along weakly-connected components,
/// merged per component, stitched at the seams.
pub const VARIANT_PARTITIONED: &str = "partitioned";

/// One measurement: an operation on a workload at a size, on one engine
/// variant.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload family: `random`, `pathological`, `er_roundtrip`,
    /// `wide`, `registry` or `supergraph`.
    pub family: &'static str,
    /// Operation: `weak_join`, `complete`, `merge`, `publish` or
    /// `recompose`.
    pub op: &'static str,
    /// Classes in the (joined) input schema.
    pub n_classes: usize,
    /// Arrows in the (joined) input schema — the throughput element.
    pub n_arrows: usize,
    /// Engine variant measured.
    pub variant: &'static str,
    /// Timed iterations (after one warmup).
    pub iters: usize,
    /// Median wall time of one iteration, nanoseconds.
    pub median_ns: u128,
    /// Allocator calls per iteration (mean over the timed iterations).
    pub allocs_per_iter: u64,
    /// Peak live heap bytes reached during one iteration, beyond what
    /// was already live when it started (max over the timed iterations).
    pub peak_bytes: u64,
    /// Arrows processed per second at the median.
    pub throughput: f64,
    /// Wall time attributed to each pipeline phase (span name →
    /// nanoseconds), captured from one extra *untimed* instrumented run
    /// of the variant. Nested spans overlap (a `merge` root covers its
    /// `join`/`completion` children; a `commit` covers `plan`/`execute`/
    /// `wal-append`), so entries are a breakdown, not a partition. Empty
    /// when the variant's code path opens no spans (the symbolic
    /// reference engine, bare completion calls).
    pub phases: Vec<(&'static str, u64)>,
}

/// A derived baseline-over-improved ratio for one (family, op, size).
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Workload family.
    pub family: &'static str,
    /// Operation.
    pub op: &'static str,
    /// Classes in the input.
    pub n_classes: usize,
    /// Arrows in the input — disambiguates same-class-count
    /// configurations (e.g. the registry workload at two member counts).
    pub n_arrows: usize,
    /// The slower reference variant.
    pub baseline: &'static str,
    /// The engine being claimed faster.
    pub improved: &'static str,
    /// `baseline median / improved median` — > 1 means improved wins.
    pub speedup: f64,
    /// `baseline allocs / improved allocs` — > 1 means improved
    /// allocates less (0 when the baseline made no allocations).
    pub alloc_ratio: f64,
    /// `baseline peak bytes / improved peak bytes` — > 1 means improved
    /// needs less heap (0 when either side's peak rounded to nothing).
    pub mem_ratio: f64,
}

/// A full run of the suite.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// All measurements.
    pub records: Vec<BenchRecord>,
    /// All derived speedups.
    pub speedups: Vec<Speedup>,
}

struct Suite {
    iters: usize,
    threads: usize,
    report: BenchReport,
}

/// One extra, untimed run of `f` with span capture enabled for this
/// thread only, aggregated by span name — the per-variant `phases`
/// breakdown that attributes a pair's medians to pipeline stages (join,
/// completion, wal-append, …). Capture is thread-scoped and dropped
/// before returning, so it cannot leak instrumentation cost into the
/// timed iterations.
fn capture_phases(f: &mut impl FnMut()) -> Vec<(&'static str, u64)> {
    let _scope = telemetry::thread_span_scope();
    let mark = telemetry::span_mark();
    f();
    let mut totals: Vec<(&'static str, u64)> = Vec::new();
    for span in telemetry::drain_spans_since(mark) {
        match totals.iter_mut().find(|(name, _)| *name == span.name) {
            Some((_, total)) => *total = total.saturating_add(span.duration_ns),
            None => totals.push((span.name, span.duration_ns)),
        }
    }
    totals
}

impl Suite {
    #[allow(clippy::too_many_arguments)]
    fn measure_pair(
        &mut self,
        family: &'static str,
        op: &'static str,
        joined: &WeakSchema,
        baseline_variant: &'static str,
        mut baseline: impl FnMut(),
        improved_variant: &'static str,
        mut improved: impl FnMut(),
    ) {
        let n_classes = joined.num_classes();
        let n_arrows = joined.num_arrows();
        // Interleaved A/B: one baseline run then one improved run per
        // iteration, so clock-speed drift (thermal throttling, noisy
        // neighbors) biases both sides equally instead of whichever
        // happened to run second.
        baseline(); // warmup
        improved(); // warmup
                    // Phase attribution runs between warmup and timing: warm caches,
                    // and the span scope is closed again before any clock starts.
        let base_phases = capture_phases(&mut baseline);
        let imp_phases = capture_phases(&mut improved);
        let mut base_samples: Vec<u128> = Vec::with_capacity(self.iters);
        let mut imp_samples: Vec<u128> = Vec::with_capacity(self.iters);
        let mut base_allocs = 0u64;
        let mut imp_allocs = 0u64;
        let mut base_peak = 0u64;
        let mut imp_peak = 0u64;
        for _ in 0..self.iters {
            let allocs_before = allocations();
            let live_before = current_bytes();
            reset_peak();
            let start = Instant::now();
            baseline();
            base_samples.push(start.elapsed().as_nanos());
            base_allocs += allocations() - allocs_before;
            base_peak = base_peak.max(peak_bytes().saturating_sub(live_before));

            let allocs_before = allocations();
            let live_before = current_bytes();
            reset_peak();
            let start = Instant::now();
            improved();
            imp_samples.push(start.elapsed().as_nanos());
            imp_allocs += allocations() - allocs_before;
            imp_peak = imp_peak.max(peak_bytes().saturating_sub(live_before));
        }
        base_samples.sort_unstable();
        imp_samples.sort_unstable();
        let base_ns = base_samples[base_samples.len() / 2];
        let imp_ns = imp_samples[imp_samples.len() / 2];
        let base_allocs = base_allocs / self.iters as u64;
        let imp_allocs = imp_allocs / self.iters as u64;
        for (variant, ns, allocs, peak, phases) in [
            (
                baseline_variant,
                base_ns,
                base_allocs,
                base_peak,
                base_phases,
            ),
            (improved_variant, imp_ns, imp_allocs, imp_peak, imp_phases),
        ] {
            self.report.records.push(BenchRecord {
                family,
                op,
                n_classes,
                n_arrows,
                variant,
                iters: self.iters,
                median_ns: ns,
                allocs_per_iter: allocs,
                peak_bytes: peak,
                throughput: n_arrows as f64 / (ns.max(1) as f64 / 1e9),
                phases,
            });
        }
        self.report.speedups.push(Speedup {
            family,
            op,
            n_classes,
            n_arrows,
            baseline: baseline_variant,
            improved: improved_variant,
            speedup: base_ns as f64 / imp_ns.max(1) as f64,
            alloc_ratio: if imp_allocs == 0 || base_allocs == 0 {
                0.0
            } else {
                base_allocs as f64 / imp_allocs as f64
            },
            mem_ratio: if imp_peak == 0 || base_peak == 0 {
                0.0
            } else {
                base_peak as f64 / imp_peak as f64
            },
        });
    }

    /// The scratch-pool pairs: the compiled engine with the pool disabled
    /// (per-step allocation behavior) against the pooled default, on the
    /// whole `complete` operation and on the `fixpoint` alone
    /// ([`schema_merge_core::complete::imp_state_count`]). The whole-op
    /// ratio is diluted by the symbolic materialization of the result
    /// (BTree nodes the pool cannot recycle); the fixpoint pair is where
    /// the "stops allocating per iteration" claim is measured.
    fn complete_pool_pairs(&mut self, family: &'static str, joined: &WeakSchema) {
        self.measure_pair(
            family,
            "complete",
            joined,
            VARIANT_COMPILED_NOPOOL,
            || {
                schema_merge_core::scratch::set_pool_enabled(false);
                black_box(
                    schema_merge_core::complete::complete_with_report(joined).expect("completes"),
                );
                schema_merge_core::scratch::set_pool_enabled(true);
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(joined).expect("completes"),
                );
            },
        );
        let compiled = schema_merge_core::CompiledSchema::compile(joined);
        self.measure_pair(
            family,
            "fixpoint",
            joined,
            VARIANT_COMPILED_NOPOOL,
            || {
                schema_merge_core::scratch::set_pool_enabled(false);
                black_box(schema_merge_core::complete::imp_state_count(&compiled, 1));
                schema_merge_core::scratch::set_pool_enabled(true);
            },
            VARIANT_COMPILED,
            || {
                black_box(schema_merge_core::complete::imp_state_count(&compiled, 1));
            },
        );
    }

    fn random_family(&mut self, classes: usize) {
        // Densities follow the paper's "realistic regime" (and the E2
        // Criterion bench): many labels, ~2 arrows per class across the
        // *joined* schema. Denser label reuse turns the Imp fixpoint into
        // a hard NFA determinization — that regime is measured separately
        // by the `pathological` family, not smuggled in here.
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(4),
            arrows: classes / 2,
            specializations: classes / 8,
            seed: 0xB05E + classes as u64,
        };
        let family = schema_merge_workload::schema_family(&params, 4);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let joined = facade_join(refs.iter().copied());

        self.measure_pair(
            "random",
            "weak_join",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::weak_join_all(refs.iter().copied()).expect("compatible"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    Merger::new()
                        .schemas(refs.iter().copied())
                        .engine(EnginePreference::Compiled)
                        .join()
                        .expect("compatible"),
                );
            },
        );
        self.measure_pair(
            "random",
            "complete",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::complete_with_report(&joined).expect("completes"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&joined).expect("completes"),
                );
            },
        );
        self.complete_pool_pairs("random", &joined);
        self.measure_pair(
            "random",
            "merge",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::merge(refs.iter().copied()).expect("merges"));
            },
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs.iter().copied());
            },
        );
        let threads = self.threads;
        self.measure_pair(
            "random",
            "merge",
            &joined,
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs.iter().copied());
            },
            VARIANT_PARALLEL,
            || {
                facade_merge_parallel(refs.iter().copied(), threads);
            },
        );
    }

    fn pathological(&mut self, n: usize) {
        let schema = pathological_nfa(n);
        self.measure_pair(
            "pathological",
            "complete",
            &schema,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::complete_with_report(&schema).expect("completes"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&schema).expect("completes"),
                );
            },
        );
        self.complete_pool_pairs("pathological", &schema);
        let threads = self.threads;
        self.measure_pair(
            "pathological",
            "merge",
            &schema,
            VARIANT_COMPILED,
            || {
                facade_merge_compiled([&schema]);
            },
            VARIANT_PARALLEL,
            || {
                facade_merge_parallel([&schema], threads);
            },
        );
    }

    fn er_roundtrip(&mut self, entities: usize) {
        let params = ErParams {
            entities,
            domains: entities / 2 + 1,
            attributes: entities * 2,
            relationships: entities / 2,
            isa: entities / 3,
            one_role_percent: 30,
            seed: 17,
        };
        let (core1, _) = to_core(&random_er_schema(&params));
        let (core2, _) = to_core(&random_er_schema(&ErParams { seed: 18, ..params }));
        let refs = [&core1, &core2];
        let joined = facade_join(refs);
        self.measure_pair(
            "er_roundtrip",
            "merge",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::merge(refs).expect("merges"));
            },
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs);
            },
        );
        let threads = self.threads;
        self.measure_pair(
            "er_roundtrip",
            "merge",
            &joined,
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs);
            },
            VARIANT_PARALLEL,
            || {
                facade_merge_parallel(refs, threads);
            },
        );
    }

    /// The *wide* workload — the daemon's real traffic shape: many small
    /// member schemas over one shared vocabulary, with occasional
    /// attribute-target disagreements (so completion has genuine
    /// implicit-class work). This is the parallel engine's headline
    /// family: the merge is dominated by walking all the members
    /// (sharded interning), the fixpoint frontier (sharded waves), and
    /// the symbolic materializations the id-space pipeline skips.
    fn wide(&mut self, members: usize) {
        let family = wide_family(members, 0x51DE);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let joined = facade_join(refs.iter().copied());
        let threads = self.threads;
        self.measure_pair(
            "wide",
            "merge",
            &joined,
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs.iter().copied());
            },
            VARIANT_PARALLEL,
            || {
                facade_merge_parallel(refs.iter().copied(), threads);
            },
        );
        self.complete_pool_pairs("wide", &joined);
    }

    /// The taxonomy workload — the 10k-class ontology shape: a
    /// multi-forest class hierarchy *above the sparse-row floor* (4096
    /// classes), merged as a two-member federated family. Two pairs:
    ///
    /// * `compiled-dense` vs `compiled` — the adaptive representation's
    ///   memory headline. With sparse rows forced off every closure
    ///   matrix is O(classes²) bits; the default keeps taxonomy rows
    ///   (a handful of ancestors each) at O(populated ids), and
    ///   `mem_ratio` reports the peak-heap quotient.
    /// * `compiled-dense` vs `partitioned` — the pre-adaptive
    ///   monolithic dense merge against the weakly-connected-component
    ///   split (one component per forest, merged concurrently across
    ///   the thread budget). Both taxonomy pairs share the dense
    ///   monolith as the baseline deliberately: it is the engine this
    ///   PR retires at scale, and each successor beats it a different
    ///   way — the sparse monolith through row representation, the
    ///   partitioned engine by keeping every component's matrices
    ///   component-sized (components here sit below the sparse floor,
    ///   so its win is independent of the row representation).
    fn taxonomy_merges(&mut self, classes: usize, forests: usize) {
        let params = TaxonomyParams::dag(classes, forests, 0xC1A55);
        let family = taxonomy_family(&params, 2);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let joined = facade_join(refs.iter().copied());
        self.measure_pair(
            "taxonomy",
            "merge",
            &joined,
            VARIANT_COMPILED_DENSE,
            || {
                set_sparse_enabled(false);
                facade_merge_compiled(refs.iter().copied());
                set_sparse_enabled(true);
            },
            VARIANT_COMPILED,
            || {
                facade_merge_compiled(refs.iter().copied());
            },
        );
        let threads = self.threads;
        self.measure_pair(
            "taxonomy",
            "merge",
            &joined,
            VARIANT_COMPILED_DENSE,
            || {
                set_sparse_enabled(false);
                facade_merge_compiled(refs.iter().copied());
                set_sparse_enabled(true);
            },
            VARIANT_PARTITIONED,
            || {
                black_box(
                    Merger::new()
                        .schemas(refs.iter().copied())
                        .engine(EnginePreference::Partitioned)
                        .threads(threads)
                        .execute()
                        .expect("workload merges"),
                );
            },
        );
    }

    /// The registry workload: `members` schemas sharing a large common
    /// core (the federated-registry traffic shape: every member carries
    /// the organization's base vocabulary plus its own small delta),
    /// publish one changed member per iteration. The `full` baseline
    /// re-merges every member one-shot (what a registry without the join
    /// cache would do per publish); the `incremental` variant is
    /// [`Registry::put`] against a warm cache, which joins the cached
    /// rest-join with the changed member and completes. Both variants
    /// see a *different* changed schema each iteration, so no run
    /// degenerates into a content-hash no-op. A third pair measures the
    /// cold full rebuild on the parallel engine.
    fn registry_publish(&mut self, members: usize, classes: usize) {
        // The shared core: attribute-heavy, label-sparse — the federated
        // supergraph shape (each class carries its own field names, label
        // collisions across classes are rare). The label pool is several
        // times the arrow count so completion stays near-linear and the
        // measurement isolates what incrementality actually saves:
        // re-interning and re-joining N member schemas per publish. Label
        // collision stress lives in `random`/`pathological`.
        let core_params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: classes * 8,
            arrows: classes,
            specializations: (classes / 32).max(2),
            seed: 0x5EED + members as u64,
        };
        let core = schema_merge_workload::schema_family(&core_params, 1).remove(0);
        // Per-member deltas: small, over the same vocabulary.
        let delta_params = SchemaParams {
            classes: (classes / 6).max(4),
            arrows: (classes / 6).max(4),
            specializations: 0,
            seed: 0xDE17A + members as u64,
            ..core_params
        };
        let deltas = schema_merge_workload::schema_family(&delta_params, members);
        let family: Vec<WeakSchema> = deltas
            .iter()
            .map(|delta| facade_join([&core, delta]))
            .collect();
        // Distinct "changed member 0" contents, one per timed iteration
        // (plus warmups), drawn from a disjoint seed stream.
        let variant_count = 2 * (self.iters + 1);
        let variants: Vec<WeakSchema> = schema_merge_workload::schema_family(
            &SchemaParams {
                seed: 0xC0DE + members as u64,
                ..delta_params
            },
            variant_count,
        )
        .iter()
        .map(|delta| facade_join([&core, delta]))
        .collect();
        let rest: Vec<&WeakSchema> = family[1..].iter().collect();
        let joined = facade_join(family.iter());

        let registry = Registry::new();
        for (i, member) in family.iter().enumerate() {
            registry
                .put(format!("member-{i}"), member.clone())
                .expect("family publishes");
        }

        let mut full_idx = 0usize;
        let mut inc_pool = variants.clone();
        self.measure_pair(
            "registry",
            "publish",
            &joined,
            VARIANT_FULL,
            || {
                let mut refs: Vec<&WeakSchema> = rest.clone();
                refs.push(&variants[full_idx % variants.len()]);
                full_idx += 1;
                facade_merge_compiled(refs);
            },
            VARIANT_INCREMENTAL,
            || {
                let changed = inc_pool.pop().expect("enough variants");
                black_box(registry.put("member-0", changed).expect("publishes"));
            },
        );
        let threads = self.threads;
        let par_idx = std::cell::Cell::new(0usize);
        let next_variant = || {
            let i = par_idx.get();
            par_idx.set(i + 1);
            &variants[i % variants.len()]
        };
        self.measure_pair(
            "registry",
            "publish",
            &joined,
            VARIANT_FULL,
            || {
                let mut refs: Vec<&WeakSchema> = rest.clone();
                refs.push(next_variant());
                facade_merge_compiled(refs);
            },
            VARIANT_FULL_PARALLEL,
            || {
                let mut refs: Vec<&WeakSchema> = rest.clone();
                refs.push(next_variant());
                facade_merge_parallel(refs, threads);
            },
        );
    }

    /// The federation workload: `registries` member registries, each
    /// publishing one member over a shared organizational core, composed
    /// by a [`Supergraph`]; one registry publishes a changed member per
    /// iteration, then the supergraph recomposes. The `full` baseline
    /// attaches the same member registries to a *cold* supergraph and
    /// composes from scratch (each registry's own cached join is reused,
    /// but the cross-registry composition re-runs in full — what a
    /// federation without the registry-set join cache would do per
    /// publish); the `incremental` variant is [`Supergraph::compose`] on
    /// a warm supergraph, which completes the changed registry's join
    /// onto the cached join of the other N−1. Both sides pop the same
    /// variant sequence, so every iteration pairs identical publish and
    /// delta content and only the recompose engine path differs.
    fn supergraph_recompose(&mut self, registries: usize, classes: usize) {
        let core_params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: classes * 8,
            arrows: classes,
            specializations: (classes / 32).max(2),
            seed: 0x50B0 + registries as u64,
        };
        let core = schema_merge_workload::schema_family(&core_params, 1).remove(0);
        let delta_params = SchemaParams {
            classes: (classes / 6).max(4),
            arrows: (classes / 6).max(4),
            specializations: 0,
            seed: 0xFED0 + registries as u64,
            ..core_params
        };
        let deltas = schema_merge_workload::schema_family(&delta_params, registries);
        let members: Vec<WeakSchema> = deltas
            .iter()
            .map(|delta| facade_join([&core, delta]))
            .collect();
        let joined = facade_join(members.iter());
        // Distinct publishes for registry zero's member, one per call on
        // each side (warmup + phase capture + timed iterations, plus the
        // incremental side's cache warm-up), drawn from a disjoint seed
        // stream.
        let variants: Vec<WeakSchema> = schema_merge_workload::schema_family(
            &SchemaParams {
                seed: 0xFEE5 + registries as u64,
                ..delta_params
            },
            2 * (self.iters + 4),
        )
        .iter()
        .map(|delta| facade_join([&core, delta]))
        .collect();

        let build_fleet = |threads: usize| -> (Supergraph, Vec<std::sync::Arc<Registry>>) {
            let supergraph = Supergraph::with_threads(threads);
            let fleet: Vec<_> = members
                .iter()
                .enumerate()
                .map(|(i, member)| {
                    let registry = supergraph
                        .attach_new(format!("r{i}"))
                        .expect("fresh names attach");
                    registry
                        .put("member", member.clone())
                        .expect("family publishes");
                    registry
                })
                .collect();
            (supergraph, fleet)
        };

        // Incremental side: warm the supergraph past the first
        // single-registry recompose (which is a full compose that seeds
        // the rest-join of the stable N−1 registries), then verify the
        // steady state really is incremental so the bench cannot
        // silently measure the full path twice.
        let (inc_supergraph, inc_fleet) = build_fleet(self.threads);
        let mut inc_pool = variants.clone();
        inc_supergraph.compose().expect("initial compose");
        for _ in 0..2 {
            inc_fleet[0]
                .put("member", inc_pool.pop().expect("enough variants"))
                .expect("publishes");
            inc_supergraph.compose().expect("warm compose");
        }
        inc_fleet[0]
            .put("member", inc_pool.pop().expect("enough variants"))
            .expect("publishes");
        let probe = inc_supergraph.compose().expect("probe compose");
        assert_eq!(
            probe.strategy,
            MergeStrategy::Incremental,
            "steady-state supergraph recompose must be incremental"
        );

        let (_, full_fleet) = build_fleet(self.threads);
        let mut full_pool = variants.clone();
        let threads = self.threads;
        self.measure_pair(
            "supergraph",
            "recompose",
            &joined,
            VARIANT_FULL,
            || {
                full_fleet[0]
                    .put("member", full_pool.pop().expect("enough variants"))
                    .expect("publishes");
                let supergraph = Supergraph::with_threads(threads);
                for (i, registry) in full_fleet.iter().enumerate() {
                    supergraph
                        .attach(format!("r{i}"), std::sync::Arc::clone(registry))
                        .expect("fresh names attach");
                }
                black_box(supergraph.compose().expect("composes"));
            },
            VARIANT_INCREMENTAL,
            || {
                inc_fleet[0]
                    .put("member", inc_pool.pop().expect("enough variants"))
                    .expect("publishes");
                black_box(inc_supergraph.compose().expect("composes"));
            },
        );
    }

    /// The durability tax: the same warm incremental publish against an
    /// in-memory registry and against one whose commits are framed,
    /// WAL-appended and fsync'd to a local data dir before they are
    /// acknowledged. The speedup column is the per-commit cost factor of
    /// crash safety — dominated by the fsync, not the framing.
    fn registry_durability(&mut self, members: usize, classes: usize) {
        let core_params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: classes * 8,
            arrows: classes,
            specializations: (classes / 32).max(2),
            seed: 0xD07A + members as u64,
        };
        let core = schema_merge_workload::schema_family(&core_params, 1).remove(0);
        let delta_params = SchemaParams {
            classes: (classes / 6).max(4),
            arrows: (classes / 6).max(4),
            specializations: 0,
            seed: 0x0D15C + members as u64,
            ..core_params
        };
        let deltas = schema_merge_workload::schema_family(&delta_params, members);
        let family: Vec<WeakSchema> = deltas
            .iter()
            .map(|delta| facade_join([&core, delta]))
            .collect();
        let joined = facade_join(family.iter());
        let variants: Vec<WeakSchema> = schema_merge_workload::schema_family(
            &SchemaParams {
                seed: 0xF5AC + members as u64,
                ..delta_params
            },
            2 * (self.iters + 1),
        )
        .iter()
        .map(|delta| facade_join([&core, delta]))
        .collect();

        let dir = std::env::temp_dir().join(format!(
            "smerge-bench-durable-{}-{}",
            members,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let durable = Registry::builder()
            .data_dir(&dir)
            .open()
            .expect("durable registry opens");
        let memory = Registry::new();
        for (i, member) in family.iter().enumerate() {
            for registry in [&durable, &memory] {
                registry
                    .put(format!("member-{i}"), member.clone())
                    .expect("family publishes");
            }
        }
        // Both sides pop the same variant sequence, so every iteration
        // pairs identical merge work and only persistence differs.
        let mut durable_pool = variants.clone();
        let mut memory_pool = variants;
        self.measure_pair(
            "registry",
            "durable_publish",
            &joined,
            VARIANT_DURABLE,
            || {
                let changed = durable_pool.pop().expect("enough variants");
                black_box(durable.put("member-0", changed).expect("publishes"));
            },
            VARIANT_MEMORY,
            || {
                let changed = memory_pool.pop().expect("enough variants");
                black_box(memory.put("member-0", changed).expect("publishes"));
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The resilience tax: the durable publish against a store that
    /// injects transient append failures at a 50‰ rate (seeded, so the
    /// fault sequence is reproducible run to run) versus the clean
    /// durable path. The faulty side retries under a tight backoff
    /// policy until every commit lands — no acked publish is dropped —
    /// so the speedup column is the per-commit cost factor of riding
    /// out a flaky disk, not a measurement of lost work.
    fn registry_durability_faulty(&mut self, members: usize, classes: usize) {
        let core_params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: classes * 8,
            arrows: classes,
            specializations: (classes / 32).max(2),
            seed: 0xFA017 + members as u64,
        };
        let core = schema_merge_workload::schema_family(&core_params, 1).remove(0);
        let delta_params = SchemaParams {
            classes: (classes / 6).max(4),
            arrows: (classes / 6).max(4),
            specializations: 0,
            seed: 0x0FA57 + members as u64,
            ..core_params
        };
        let deltas = schema_merge_workload::schema_family(&delta_params, members);
        let family: Vec<WeakSchema> = deltas
            .iter()
            .map(|delta| facade_join([&core, delta]))
            .collect();
        let joined = facade_join(family.iter());
        let variants: Vec<WeakSchema> = schema_merge_workload::schema_family(
            &SchemaParams {
                seed: 0xFA111 + members as u64,
                ..delta_params
            },
            2 * (self.iters + 1),
        )
        .iter()
        .map(|delta| facade_join([&core, delta]))
        .collect();

        let pid = std::process::id();
        let dir_faulty = std::env::temp_dir().join(format!("smerge-bench-faulty-{members}-{pid}"));
        let dir_clean =
            std::env::temp_dir().join(format!("smerge-bench-faulty-ref-{members}-{pid}"));
        for dir in [&dir_faulty, &dir_clean] {
            let _ = std::fs::remove_dir_all(dir);
        }
        // 50‰ of appends fail transiently; the registry's retry budget
        // absorbs every burst the seeded schedule can produce. The
        // backoff is kept tight so the record prices the retry path,
        // not the sleep.
        let schedule = FaultSchedule::new(0x5EED_FA17)
            .intermittent(OpKind::Append, 50, Fault::Transient)
            .fail_nth(OpKind::Append, members as u64 + 2, Fault::Transient);
        let faulty = Registry::builder()
            .store(FaultStore::new(
                LocalStore::open(&dir_faulty).expect("faulty store opens"),
                schedule,
            ))
            .retry_policy(
                RetryPolicy::new(8)
                    .initial_backoff(Duration::from_micros(50))
                    .max_backoff(Duration::from_micros(400)),
            )
            .open()
            .expect("faulty registry opens");
        let clean = Registry::builder()
            .data_dir(&dir_clean)
            .open()
            .expect("clean registry opens");
        for (i, member) in family.iter().enumerate() {
            for registry in [&faulty, &clean] {
                registry
                    .put(format!("member-{i}"), member.clone())
                    .expect("family publishes");
            }
        }
        let mut faulty_pool = variants.clone();
        let mut clean_pool = variants;
        self.measure_pair(
            "registry",
            "durable_publish_faulty",
            &joined,
            VARIANT_DURABLE_FAULTY,
            || {
                let changed = faulty_pool.pop().expect("enough variants");
                black_box(faulty.put("member-0", changed).expect("publishes"));
            },
            VARIANT_DURABLE,
            || {
                let changed = clean_pool.pop().expect("enough variants");
                black_box(clean.put("member-0", changed).expect("publishes"));
            },
        );
        assert!(
            faulty
                .health()
                .fault_counters
                .is_some_and(|c| c.injected > 0),
            "the fault schedule must actually fire during the measurement"
        );
        for dir in [&dir_faulty, &dir_clean] {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Runs the suite. `quick` is the CI profile: fewer iterations and only
/// the sizes the acceptance trajectory tracks (including the 200-class
/// random workload, the 64-member wide workload, the 32-member registry
/// workload, the 8- and 32-registry supergraph recompose and the
/// 6000-class taxonomy). `threads` is the parallel variants' worker
/// budget.
pub fn run_suite(quick: bool, threads: usize) -> BenchReport {
    let mut suite = Suite {
        iters: if quick { 7 } else { 15 },
        threads: threads.max(1),
        report: BenchReport::default(),
    };
    let random_sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 100, 200, 400]
    };
    for &classes in random_sizes {
        suite.random_family(classes);
    }
    suite.pathological(if quick { 8 } else { 10 });
    suite.er_roundtrip(32);
    suite.wide(64);
    suite.registry_publish(32, 200);
    suite.registry_durability(8, 64);
    suite.registry_durability_faulty(8, 64);
    suite.supergraph_recompose(8, 200);
    suite.supergraph_recompose(32, 200);
    suite.taxonomy_merges(6_000, 6);
    if !quick {
        suite.registry_publish(16, 200);
        suite.taxonomy_merges(12_000, 8);
    }
    suite.report
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the report as the `BENCH_<n>.json` document (no external JSON
/// dependency: the structure is flat and the strings are identifiers).
pub fn to_json(report: &BenchReport, pr_index: u32, threads: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench_schema_version\": 5,\n  \"pr\": {pr_index},\n  \"threads\": {threads},\n"
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        let phases: Vec<String> = r
            .phases
            .iter()
            .map(|(name, ns)| format!("\"{}\": {ns}", json_escape(name)))
            .collect();
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \"n_arrows\": {}, \
             \"variant\": \"{}\", \"iters\": {}, \"median_ns\": {}, \"allocs_per_iter\": {}, \
             \"peak_bytes\": {}, \"throughput_arrows_per_s\": {:.1}, \
             \"phases\": {{{}}}}}{comma}\n",
            json_escape(r.family),
            json_escape(r.op),
            r.n_classes,
            r.n_arrows,
            json_escape(r.variant),
            r.iters,
            r.median_ns,
            r.allocs_per_iter,
            r.peak_bytes,
            r.throughput,
            phases.join(", "),
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    for (i, s) in report.speedups.iter().enumerate() {
        let comma = if i + 1 < report.speedups.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \"n_arrows\": {}, \
             \"baseline\": \"{}\", \"improved\": \"{}\", \"speedup\": {:.2}, \
             \"alloc_ratio\": {:.2}, \"mem_ratio\": {:.2}}}{comma}\n",
            json_escape(s.family),
            json_escape(s.op),
            s.n_classes,
            s.n_arrows,
            json_escape(s.baseline),
            json_escape(s.improved),
            s.speedup,
            s.alloc_ratio,
            s.mem_ratio,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as a human-readable table.
pub fn to_table(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<13} {:<9} {:>8} {:>8}  {:>26} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
        "family",
        "op",
        "classes",
        "arrows",
        "pair",
        "baseline µs",
        "improved µs",
        "speedup",
        "allocs",
        "peak MiB",
        "memory"
    ));
    out.push_str(&"-".repeat(132));
    out.push('\n');
    // Records are pushed in pairs, one pair per speedup, in order — index
    // arithmetic rather than field matching, so repeated (family, op,
    // size) configurations (e.g. the registry workload at two member
    // counts) each keep their own row.
    for (i, s) in report.speedups.iter().enumerate() {
        let base = &report.records[2 * i];
        let imp = &report.records[2 * i + 1];
        debug_assert_eq!((base.variant, imp.variant), (s.baseline, s.improved));
        out.push_str(&format!(
            "{:<13} {:<9} {:>8} {:>8}  {:>26} {:>12.1} {:>12.1} {:>7.2}x {:>7.2}x {:>8.1} {:>7.2}x\n",
            s.family,
            s.op,
            s.n_classes,
            base.n_arrows,
            format!("{}/{}", s.improved, s.baseline),
            base.median_ns as f64 / 1e3,
            imp.median_ns as f64 / 1e3,
            s.speedup,
            s.alloc_ratio,
            imp.peak_bytes as f64 / (1024.0 * 1024.0),
            s.mem_ratio,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_produces_paired_records_and_valid_json() {
        let mut suite = Suite {
            iters: 1,
            threads: 2,
            report: BenchReport::default(),
        };
        suite.random_family(16);
        let report = suite.report;
        assert_eq!(
            report.records.len(),
            12,
            "3 engine ops + 2 pool pairs + parallel pair, 2 variants each"
        );
        assert_eq!(report.speedups.len(), 6);
        let json = to_json(&report, 2, 2);
        assert!(json.contains("\"bench_schema_version\": 5"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"variant\": \"compiled\""));
        assert!(json.contains("\"variant\": \"parallel\""));
        assert!(json.contains("\"variant\": \"compiled-nopool\""));
        assert!(json.contains("\"op\": \"weak_join\""));
        assert!(json.contains("\"baseline\": \"symbolic\""));
        assert!(json.contains("\"allocs_per_iter\":"));
        assert!(json.contains("\"peak_bytes\":"));
        assert!(json.contains("\"alloc_ratio\":"));
        assert!(json.contains("\"mem_ratio\":"));
        // Phase attribution: every façade-merge variant carries a span
        // breakdown with the completion pass in it.
        assert!(json.contains("\"phases\": {"));
        assert!(
            report.records.iter().filter(|r| r.op == "merge").all(|r| r
                .phases
                .iter()
                .any(|(name, _)| *name == "completion")
                || r.variant == VARIANT_SYMBOLIC),
            "façade merges attribute time to the completion pass"
        );
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&report);
        assert!(table.contains("weak_join"));
    }

    #[test]
    fn allocation_counter_is_live() {
        let before = allocations();
        black_box(vec![0u8; 4096]);
        assert!(allocations() > before, "the hook counts heap allocations");
    }

    #[test]
    fn peak_tracker_observes_a_transient_allocation() {
        // Other tests in this binary allocate and free concurrently, so
        // only assert the guaranteed lower bound: while our megabyte is
        // live it is part of the live-byte gauge, and the alloc hook
        // folds the post-alloc gauge into the high-water mark — so the
        // mark must cover at least the megabyte itself.
        reset_peak();
        let buffer = black_box(vec![0u8; 1 << 20]);
        let during = peak_bytes();
        assert!(
            during >= 1 << 20,
            "peak must cover the live megabyte: {during}"
        );
        drop(buffer);
    }

    #[test]
    fn taxonomy_workload_pairs_representations_and_partitioning() {
        let mut suite = Suite {
            iters: 1,
            threads: 2,
            report: BenchReport::default(),
        };
        // Small forest count keeps this a unit test; the representation
        // pair still runs (below the sparse floor both sides are dense,
        // which must also measure cleanly).
        suite.taxonomy_merges(400, 4);
        let report = suite.report;
        assert_eq!(report.records.len(), 4, "2 pairs, 2 variants each");
        assert_eq!(report.speedups.len(), 2);
        let rep = &report.speedups[0];
        assert_eq!(
            (rep.baseline, rep.improved),
            (VARIANT_COMPILED_DENSE, VARIANT_COMPILED)
        );
        let part = &report.speedups[1];
        assert_eq!(
            (part.baseline, part.improved),
            (VARIANT_COMPILED_DENSE, VARIANT_PARTITIONED)
        );
        for record in &report.records {
            assert_eq!(record.family, "taxonomy");
            assert!(record.peak_bytes > 0, "a merge allocates a peak");
        }
        assert!(rep.mem_ratio > 0.0);
    }

    #[test]
    fn pool_pair_records_an_allocation_win() {
        let mut suite = Suite {
            iters: 2,
            threads: 1,
            report: BenchReport::default(),
        };
        let family = schema_merge_workload::schema_family(
            &SchemaParams {
                vocabulary: 48,
                classes: 32,
                labels: 8,
                arrows: 32,
                specializations: 8,
                seed: 7,
            },
            3,
        );
        let joined = facade_join(family.iter());
        suite.complete_pool_pairs("random", &joined);
        let speedup = &suite.report.speedups[0];
        assert_eq!(
            (speedup.baseline, speedup.improved),
            (VARIANT_COMPILED_NOPOOL, VARIANT_COMPILED)
        );
        assert!(
            speedup.alloc_ratio > 1.0,
            "the pool must allocate less than the unpooled baseline: {}",
            speedup.alloc_ratio
        );
    }

    #[test]
    fn registry_workload_measures_all_three_paths() {
        let mut suite = Suite {
            iters: 2,
            threads: 2,
            report: BenchReport::default(),
        };
        suite.registry_publish(8, 24);
        let report = suite.report;
        assert_eq!(report.records.len(), 4);
        assert!(report
            .records
            .iter()
            .any(|r| r.variant == VARIANT_INCREMENTAL && r.family == "registry"));
        assert!(report
            .records
            .iter()
            .any(|r| r.variant == VARIANT_FULL_PARALLEL));
        let speedup = &report.speedups[0];
        assert_eq!(speedup.op, "publish");
        assert_eq!(
            (speedup.baseline, speedup.improved),
            (VARIANT_FULL, VARIANT_INCREMENTAL)
        );
        assert!(speedup.speedup > 0.0);
        let incremental = report
            .records
            .iter()
            .find(|r| r.variant == VARIANT_INCREMENTAL)
            .unwrap();
        assert!(
            incremental.phases.iter().any(|(name, _)| *name == "commit"),
            "registry publishes attribute time to the commit span: {:?}",
            incremental.phases
        );
        let json = to_json(&report, 3, 2);
        assert!(json.contains("\"family\": \"registry\""));
        assert!(json.contains("\"variant\": \"incremental\""));
        assert!(json.contains("\"variant\": \"full-parallel\""));
        assert!(json.contains("\"commit\": "));
    }

    #[test]
    fn durable_publish_pair_measures_the_persistence_tax() {
        let mut suite = Suite {
            iters: 2,
            threads: 2,
            report: BenchReport::default(),
        };
        suite.registry_durability(4, 24);
        let report = suite.report;
        assert_eq!(report.records.len(), 2);
        assert!(report
            .records
            .iter()
            .all(|r| r.family == "registry" && r.op == "durable_publish"));
        let speedup = &report.speedups[0];
        assert_eq!(
            (speedup.baseline, speedup.improved),
            (VARIANT_DURABLE, VARIANT_MEMORY)
        );
        assert!(speedup.speedup > 0.0);
    }

    #[test]
    fn wide_workload_pairs_compiled_against_parallel() {
        let mut suite = Suite {
            iters: 1,
            threads: 2,
            report: BenchReport::default(),
        };
        suite.wide(6);
        let report = suite.report;
        assert_eq!(report.records.len(), 6, "merge pair + 2 pool pairs");
        let merge = &report.speedups[0];
        assert_eq!(merge.family, "wide");
        assert_eq!(
            (merge.baseline, merge.improved),
            (VARIANT_COMPILED, VARIANT_PARALLEL)
        );
    }
}
