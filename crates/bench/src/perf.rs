//! The `bench --json` runner: the machine-readable perf trajectory.
//!
//! Criterion benches are great for interactive work but CI never ran
//! them, so no PR could *claim* a speedup. This module measures paired
//! engine variants on the `workload` generators and emits one
//! `BENCH_<n>.json` datapoint per run — `(family, op, n_classes,
//! variant, median_ns, throughput)` records plus derived
//! baseline-over-improved speedups. CI uploads the file as an artifact
//! on every PR, establishing the trajectory every future scaling PR
//! appends to.
//!
//! Two variant pairs are tracked:
//!
//! * `symbolic` vs `compiled` — the retained reference engine against
//!   the dense-id bitset/CSR core (the PR-2 trajectory);
//! * `full` vs `incremental` — one-shot re-merge of every registry
//!   member against the registry's cached-join incremental publish
//!   (`crates/registry`): N members, one changed, the incremental
//!   engine reuses the join of the N−1 unchanged members.
//!
//! JSON schema version 2: `variant` is a free-form engine label and
//! each speedup names its `baseline`/`improved` pair (version 1 hard
//! coded symbolic/compiled).

use std::hint::black_box;
use std::time::Instant;

use schema_merge_core::{reference, Merger, WeakSchema};
use schema_merge_er::to_core;
use schema_merge_registry::Registry;
use schema_merge_workload::{pathological_nfa, random_er_schema, ErParams, SchemaParams};

/// The compiled engine measured THROUGH the `Merger` façade — what every
/// production caller (CLI, daemon, registry) actually runs, so any
/// overhead the façade adds (planning, provenance, diagnostics) is part
/// of the measurement rather than hidden behind it.
fn facade_merge<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>) {
    black_box(crate::facade_merge(schemas).expect("workload merges"));
}

fn facade_join<'a>(schemas: impl IntoIterator<Item = &'a WeakSchema>) -> WeakSchema {
    crate::facade_join(schemas).expect("workload joins")
}

/// The retained pre-compilation `BTreeMap`/`BTreeSet` path.
pub const VARIANT_SYMBOLIC: &str = "symbolic";
/// The dense-id bitset/CSR path.
pub const VARIANT_COMPILED: &str = "compiled";
/// One-shot re-merge of all registry members.
pub const VARIANT_FULL: &str = "full";
/// Registry publish reusing the cached join of unchanged members.
pub const VARIANT_INCREMENTAL: &str = "incremental";

/// One measurement: an operation on a workload at a size, on one engine
/// variant.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Workload family: `random`, `pathological`, `er_roundtrip` or
    /// `registry`.
    pub family: &'static str,
    /// Operation: `weak_join`, `complete`, `merge` or `publish`.
    pub op: &'static str,
    /// Classes in the (joined) input schema.
    pub n_classes: usize,
    /// Arrows in the (joined) input schema — the throughput element.
    pub n_arrows: usize,
    /// Engine variant measured.
    pub variant: &'static str,
    /// Timed iterations (after one warmup).
    pub iters: usize,
    /// Median wall time of one iteration, nanoseconds.
    pub median_ns: u128,
    /// Arrows processed per second at the median.
    pub throughput: f64,
}

/// A derived baseline-over-improved ratio for one (family, op, size).
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Workload family.
    pub family: &'static str,
    /// Operation.
    pub op: &'static str,
    /// Classes in the input.
    pub n_classes: usize,
    /// The slower reference variant.
    pub baseline: &'static str,
    /// The engine being claimed faster.
    pub improved: &'static str,
    /// `baseline median / improved median` — > 1 means improved wins.
    pub speedup: f64,
}

/// A full run of the suite.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// All measurements.
    pub records: Vec<BenchRecord>,
    /// All derived speedups.
    pub speedups: Vec<Speedup>,
}

fn median_ns(iters: usize, mut routine: impl FnMut()) -> u128 {
    routine(); // warmup
    let mut samples: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        routine();
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct Suite {
    iters: usize,
    report: BenchReport,
}

impl Suite {
    #[allow(clippy::too_many_arguments)]
    fn measure_pair(
        &mut self,
        family: &'static str,
        op: &'static str,
        joined: &WeakSchema,
        baseline_variant: &'static str,
        mut baseline: impl FnMut(),
        improved_variant: &'static str,
        mut improved: impl FnMut(),
    ) {
        let n_classes = joined.num_classes();
        let n_arrows = joined.num_arrows();
        let base_ns = median_ns(self.iters, &mut baseline);
        let imp_ns = median_ns(self.iters, &mut improved);
        for (variant, ns) in [(baseline_variant, base_ns), (improved_variant, imp_ns)] {
            self.report.records.push(BenchRecord {
                family,
                op,
                n_classes,
                n_arrows,
                variant,
                iters: self.iters,
                median_ns: ns,
                throughput: n_arrows as f64 / (ns.max(1) as f64 / 1e9),
            });
        }
        self.report.speedups.push(Speedup {
            family,
            op,
            n_classes,
            baseline: baseline_variant,
            improved: improved_variant,
            speedup: base_ns as f64 / imp_ns.max(1) as f64,
        });
    }

    fn random_family(&mut self, classes: usize) {
        // Densities follow the paper's "realistic regime" (and the E2
        // Criterion bench): many labels, ~2 arrows per class across the
        // *joined* schema. Denser label reuse turns the Imp fixpoint into
        // a hard NFA determinization — that regime is measured separately
        // by the `pathological` family, not smuggled in here.
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(4),
            arrows: classes / 2,
            specializations: classes / 8,
            seed: 0xB05E + classes as u64,
        };
        let family = schema_merge_workload::schema_family(&params, 4);
        let refs: Vec<&WeakSchema> = family.iter().collect();
        let joined = facade_join(refs.iter().copied());

        self.measure_pair(
            "random",
            "weak_join",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::weak_join_all(refs.iter().copied()).expect("compatible"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    Merger::new()
                        .schemas(refs.iter().copied())
                        .join()
                        .expect("compatible"),
                );
            },
        );
        self.measure_pair(
            "random",
            "complete",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::complete_with_report(&joined).expect("completes"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&joined).expect("completes"),
                );
            },
        );
        self.measure_pair(
            "random",
            "merge",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::merge(refs.iter().copied()).expect("merges"));
            },
            VARIANT_COMPILED,
            || {
                facade_merge(refs.iter().copied());
            },
        );
    }

    fn pathological(&mut self, n: usize) {
        let schema = pathological_nfa(n);
        self.measure_pair(
            "pathological",
            "complete",
            &schema,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::complete_with_report(&schema).expect("completes"));
            },
            VARIANT_COMPILED,
            || {
                black_box(
                    schema_merge_core::complete::complete_with_report(&schema).expect("completes"),
                );
            },
        );
    }

    fn er_roundtrip(&mut self, entities: usize) {
        let params = ErParams {
            entities,
            domains: entities / 2 + 1,
            attributes: entities * 2,
            relationships: entities / 2,
            isa: entities / 3,
            one_role_percent: 30,
            seed: 17,
        };
        let (core1, _) = to_core(&random_er_schema(&params));
        let (core2, _) = to_core(&random_er_schema(&ErParams { seed: 18, ..params }));
        let refs = [&core1, &core2];
        let joined = facade_join(refs);
        self.measure_pair(
            "er_roundtrip",
            "merge",
            &joined,
            VARIANT_SYMBOLIC,
            || {
                black_box(reference::merge(refs).expect("merges"));
            },
            VARIANT_COMPILED,
            || {
                facade_merge(refs);
            },
        );
    }

    /// The registry workload: `members` schemas sharing a large common
    /// core (the federated-registry traffic shape: every member carries
    /// the organization's base vocabulary plus its own small delta),
    /// publish one changed member per iteration. The `full` baseline
    /// re-merges every member one-shot (what a registry without the join
    /// cache would do per publish); the `incremental` variant is
    /// [`Registry::put`] against a warm cache, which joins the cached
    /// rest-join with the changed member and completes. Both variants
    /// see a *different* changed schema each iteration, so no run
    /// degenerates into a content-hash no-op.
    fn registry_publish(&mut self, members: usize, classes: usize) {
        // The shared core: attribute-heavy, label-sparse — the federated
        // supergraph shape (each class carries its own field names, label
        // collisions across classes are rare). The label pool is several
        // times the arrow count so completion stays near-linear and the
        // measurement isolates what incrementality actually saves:
        // re-interning and re-joining N member schemas per publish. Label
        // collision stress lives in `random`/`pathological`.
        let core_params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: classes * 8,
            arrows: classes,
            specializations: (classes / 32).max(2),
            seed: 0x5EED + members as u64,
        };
        let core = schema_merge_workload::schema_family(&core_params, 1).remove(0);
        // Per-member deltas: small, over the same vocabulary.
        let delta_params = SchemaParams {
            classes: (classes / 6).max(4),
            arrows: (classes / 6).max(4),
            specializations: 0,
            seed: 0xDE17A + members as u64,
            ..core_params
        };
        let deltas = schema_merge_workload::schema_family(&delta_params, members);
        let family: Vec<WeakSchema> = deltas
            .iter()
            .map(|delta| facade_join([&core, delta]))
            .collect();
        // Distinct "changed member 0" contents, one per timed iteration
        // (plus warmups), drawn from a disjoint seed stream.
        let variant_count = 2 * (self.iters + 1);
        let variants: Vec<WeakSchema> = schema_merge_workload::schema_family(
            &SchemaParams {
                seed: 0xC0DE + members as u64,
                ..delta_params
            },
            variant_count,
        )
        .iter()
        .map(|delta| facade_join([&core, delta]))
        .collect();
        let rest: Vec<&WeakSchema> = family[1..].iter().collect();
        let joined = facade_join(family.iter());

        let registry = Registry::new();
        for (i, member) in family.iter().enumerate() {
            registry
                .put(format!("member-{i}"), member.clone())
                .expect("family publishes");
        }

        let mut full_idx = 0usize;
        let mut inc_pool = variants.clone();
        self.measure_pair(
            "registry",
            "publish",
            &joined,
            VARIANT_FULL,
            || {
                let mut refs: Vec<&WeakSchema> = rest.clone();
                refs.push(&variants[full_idx % variants.len()]);
                full_idx += 1;
                facade_merge(refs);
            },
            VARIANT_INCREMENTAL,
            || {
                let changed = inc_pool.pop().expect("enough variants");
                black_box(registry.put("member-0", changed).expect("publishes"));
            },
        );
    }
}

/// Runs the suite. `quick` is the CI profile: fewer iterations and only
/// the sizes the acceptance trajectory tracks (including the 200-class
/// random workload and the 32-member registry workload).
pub fn run_suite(quick: bool) -> BenchReport {
    let mut suite = Suite {
        iters: if quick { 7 } else { 15 },
        report: BenchReport::default(),
    };
    let random_sizes: &[usize] = if quick {
        &[50, 200]
    } else {
        &[50, 100, 200, 400]
    };
    for &classes in random_sizes {
        suite.random_family(classes);
    }
    suite.pathological(if quick { 8 } else { 10 });
    suite.er_roundtrip(32);
    suite.registry_publish(32, 200);
    if !quick {
        suite.registry_publish(16, 200);
    }
    suite.report
}

fn json_escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the report as the `BENCH_<n>.json` document (no external JSON
/// dependency: the structure is flat and the strings are identifiers).
pub fn to_json(report: &BenchReport, pr_index: u32) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"bench_schema_version\": 2,\n  \"pr\": {pr_index},\n"
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in report.records.iter().enumerate() {
        let comma = if i + 1 < report.records.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \"n_arrows\": {}, \
             \"variant\": \"{}\", \"iters\": {}, \"median_ns\": {}, \
             \"throughput_arrows_per_s\": {:.1}}}{comma}\n",
            json_escape(r.family),
            json_escape(r.op),
            r.n_classes,
            r.n_arrows,
            json_escape(r.variant),
            r.iters,
            r.median_ns,
            r.throughput,
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    for (i, s) in report.speedups.iter().enumerate() {
        let comma = if i + 1 < report.speedups.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"family\": \"{}\", \"op\": \"{}\", \"n_classes\": {}, \
             \"baseline\": \"{}\", \"improved\": \"{}\", \"speedup\": {:.2}}}{comma}\n",
            json_escape(s.family),
            json_escape(s.op),
            s.n_classes,
            json_escape(s.baseline),
            json_escape(s.improved),
            s.speedup,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the report as a human-readable table.
pub fn to_table(report: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<10} {:>9} {:>9}  {:>12} {:>14} {:>14} {:>9}\n",
        "family", "op", "classes", "arrows", "pair", "baseline µs", "improved µs", "speedup"
    ));
    out.push_str(&"-".repeat(101));
    out.push('\n');
    // Records are pushed in pairs, one pair per speedup, in order — index
    // arithmetic rather than field matching, so repeated (family, op,
    // size) configurations (e.g. the registry workload at two member
    // counts) each keep their own row.
    for (i, s) in report.speedups.iter().enumerate() {
        let base = &report.records[2 * i];
        let imp = &report.records[2 * i + 1];
        debug_assert_eq!((base.variant, imp.variant), (s.baseline, s.improved));
        out.push_str(&format!(
            "{:<14} {:<10} {:>9} {:>9}  {:>12} {:>14.1} {:>14.1} {:>8.2}x\n",
            s.family,
            s.op,
            s.n_classes,
            base.n_arrows,
            format!("{}/{}", s.improved, s.baseline),
            base.median_ns as f64 / 1e3,
            imp.median_ns as f64 / 1e3,
            s.speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_produces_paired_records_and_valid_json() {
        let mut suite = Suite {
            iters: 1,
            report: BenchReport::default(),
        };
        suite.random_family(16);
        let report = suite.report;
        assert_eq!(report.records.len(), 6, "3 ops × 2 variants");
        assert_eq!(report.speedups.len(), 3);
        let json = to_json(&report, 2);
        assert!(json.contains("\"bench_schema_version\": 2"));
        assert!(json.contains("\"variant\": \"compiled\""));
        assert!(json.contains("\"op\": \"weak_join\""));
        assert!(json.contains("\"baseline\": \"symbolic\""));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let table = to_table(&report);
        assert!(table.contains("weak_join"));
    }

    #[test]
    fn registry_workload_measures_both_paths() {
        let mut suite = Suite {
            iters: 2,
            report: BenchReport::default(),
        };
        suite.registry_publish(8, 24);
        let report = suite.report;
        assert_eq!(report.records.len(), 2);
        assert!(report
            .records
            .iter()
            .any(|r| r.variant == VARIANT_INCREMENTAL && r.family == "registry"));
        let speedup = &report.speedups[0];
        assert_eq!(speedup.op, "publish");
        assert_eq!(
            (speedup.baseline, speedup.improved),
            (VARIANT_FULL, VARIANT_INCREMENTAL)
        );
        assert!(speedup.speedup > 0.0);
        let json = to_json(&report, 3);
        assert!(json.contains("\"family\": \"registry\""));
        assert!(json.contains("\"variant\": \"incremental\""));
    }
}
