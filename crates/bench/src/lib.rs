//! # schema-merge-bench
//!
//! The experiment harness: programmatic reconstructions of every figure
//! in the paper ([`figures`]) plus the scaling experiments its §7 leaves
//! open ([`experiments`]). The `reproduce` binary prints the verification
//! table recorded in `EXPERIMENTS.md`; the Criterion benches under
//! `benches/` measure the same code paths; the `bench` binary ([`perf`])
//! emits the machine-readable `BENCH_<n>.json` perf trajectory that CI
//! records per PR.

// `deny`, not `forbid`: the counting global allocator in `perf` needs a
// (trivially auditable) `unsafe impl GlobalAlloc` and carries a scoped
// `allow`; everything else stays denied.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod perf;

pub use figures::{all_rows, Row, Verdict};
pub use perf::{run_suite, to_json, to_table, BenchRecord, BenchReport, Speedup};

use schema_merge_core::{MergeError, MergeOutcome, MergeReport, Merger, WeakSchema};

/// The paper's merge through the production `Merger` façade — the single
/// wrapper every experiment, figure check and Criterion bench in this
/// crate measures, so façade overhead (planning, provenance,
/// diagnostics) is part of every measurement.
pub fn facade_merge<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeReport, MergeError> {
    Merger::new().schemas(schemas).execute()
}

/// [`facade_merge`] shaped as the historical outcome triple.
pub fn facade_outcome<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<MergeOutcome, MergeError> {
    facade_merge(schemas).map(MergeReport::into_outcome)
}

/// The weak least upper bound through the façade.
pub fn facade_join<'a>(
    schemas: impl IntoIterator<Item = &'a WeakSchema>,
) -> Result<WeakSchema, MergeError> {
    Merger::new()
        .schemas(schemas)
        .join()
        .map(schema_merge_core::Joined::into_weak)
}
