//! # schema-merge-bench
//!
//! The experiment harness: programmatic reconstructions of every figure
//! in the paper ([`figures`]) plus the scaling experiments its §7 leaves
//! open ([`experiments`]). The `reproduce` binary prints the verification
//! table recorded in `EXPERIMENTS.md`; the Criterion benches under
//! `benches/` measure the same code paths; the `bench` binary ([`perf`])
//! emits the machine-readable `BENCH_<n>.json` perf trajectory that CI
//! records per PR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod perf;

pub use figures::{all_rows, Row, Verdict};
pub use perf::{run_suite, to_json, to_table, BenchRecord, BenchReport, Speedup};
