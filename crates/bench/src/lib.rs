//! # schema-merge-bench
//!
//! The experiment harness: programmatic reconstructions of every figure
//! in the paper ([`figures`]) plus the scaling experiments its §7 leaves
//! open ([`experiments`]). The `reproduce` binary prints the verification
//! table recorded in `EXPERIMENTS.md`; the Criterion benches under
//! `benches/` measure the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;

pub use figures::{all_rows, Row, Verdict};
