//! The scaling experiments (E1–E6): measurements the paper's §7 calls
//! for but does not perform. Each function returns printable series for
//! the `reproduce` binary; the Criterion benches under `benches/` time
//! the same operations.

use std::time::Instant;

use crate::facade_merge;
use schema_merge_baseline::NaiveMerger;
use schema_merge_core::complete::complete_with_report;
use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_core::{KeyAssignment, KeySet, Merger};
use schema_merge_er::merge_er;
use schema_merge_workload::{
    expected_pathological_implicit_classes, pathological_nfa, random_er_schema, random_schema,
    schema_family, ErParams, SchemaParams,
};

/// One (x, columns…) point of a printed series.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// The swept parameter value.
    pub x: String,
    /// Column values, matching the series' column names.
    pub values: Vec<String>,
}

/// A printable experiment series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment id (e.g. `E2`).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The x-axis name.
    pub x_label: &'static str,
    /// The column names.
    pub columns: Vec<&'static str>,
    /// The data points.
    pub points: Vec<SeriesPoint>,
}

fn micros(duration: std::time::Duration) -> String {
    format!("{:.1}", duration.as_secs_f64() * 1e6)
}

/// E1: order-independence at scale — merge a family of schemas in
/// several orders and report whether all results agree (they must), plus
/// timings for our merge and the naive baseline.
pub fn e1_associativity(sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &count in sizes {
        // Densities chosen to stay in the realistic regime the paper
        // expects ("we do not think [pathological cases] are likely to
        // occur in practice", §7); E2 measures the blow-up deliberately.
        let params = SchemaParams {
            vocabulary: 64,
            classes: 12,
            labels: 16,
            arrows: 16,
            specializations: 6,
            seed: 11,
        };
        let family = schema_family(&params, count);
        let refs: Vec<_> = family.iter().collect();

        let start = Instant::now();
        let forward = facade_merge(refs.iter().copied())
            .expect("compatible family")
            .proper;
        let ours_time = start.elapsed();

        let reversed: Vec<_> = refs.iter().rev().copied().collect();
        let backward = facade_merge(reversed).expect("compatible family").proper;
        let rotated: Vec<_> = refs[1..].iter().chain(&refs[..1]).copied().collect();
        let rotated = facade_merge(rotated).expect("compatible family").proper;
        let agree = forward == backward && backward == rotated;

        let start = Instant::now();
        let naive = NaiveMerger::new().merge_sequence(refs.iter().copied());
        let naive_time = start.elapsed();
        let naive_ok = naive.is_ok();

        points.push(SeriesPoint {
            x: count.to_string(),
            values: vec![
                agree.to_string(),
                micros(ours_time),
                format!(
                    "{} ({})",
                    micros(naive_time),
                    if naive_ok { "ok" } else { "failed" }
                ),
            ],
        });
    }
    Series {
        id: "E1",
        title: "merge order-independence at scale (random families)",
        x_label: "schemas merged",
        columns: vec!["all orders agree", "merge µs", "naive stepwise µs"],
        points,
    }
}

/// E2: completion cost and implicit-class counts — random schemas stay
/// small, the pathological NFA family is exponential (§7 question 3).
pub fn e2_completion(random_sizes: &[usize], nfa_sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &classes in random_sizes {
        // Labels scale with the class count: a fixed small label set over
        // many arrows concentrates targets per (class, label) pair and
        // drives the subset fixpoint into its exponential regime — the
        // pathological family below measures that deliberately.
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(2),
            arrows: classes * 2,
            specializations: classes / 2,
            seed: 5,
        };
        let schema = random_schema(&params);
        let start = Instant::now();
        let (_, report) = complete_with_report(&schema).expect("completion");
        points.push(SeriesPoint {
            x: format!("random n={classes}"),
            values: vec![
                report.num_implicit().to_string(),
                "-".into(),
                micros(start.elapsed()),
            ],
        });
    }
    for &n in nfa_sizes {
        let schema = pathological_nfa(n);
        let start = Instant::now();
        let (_, report) = complete_with_report(&schema).expect("completion");
        points.push(SeriesPoint {
            x: format!("nfa n={n}"),
            values: vec![
                report.num_implicit().to_string(),
                expected_pathological_implicit_classes(n).to_string(),
                micros(start.elapsed()),
            ],
        });
    }
    Series {
        id: "E2",
        title: "implicit classes: random vs pathological (§7 open question 3)",
        x_label: "input",
        columns: vec!["implicit classes", "expected (2^n - 1)", "time µs"],
        points,
    }
}

/// E3: weak-join throughput vs schema size.
pub fn e3_weak_merge(sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &classes in sizes {
        let params = SchemaParams {
            vocabulary: classes * 2,
            classes,
            labels: (classes / 2).max(4),
            arrows: classes * 3 / 2,
            specializations: classes / 2,
            seed: 23,
        };
        let family = schema_family(&params, 2);
        let start = Instant::now();
        let joined = Merger::new()
            .schemas(family.iter())
            .join()
            .expect("compatible")
            .into_weak();
        let elapsed = start.elapsed();
        points.push(SeriesPoint {
            x: classes.to_string(),
            values: vec![
                joined.num_classes().to_string(),
                joined.num_arrows().to_string(),
                micros(elapsed),
            ],
        });
    }
    Series {
        id: "E3",
        title: "weak least-upper-bound cost vs schema size (2-way)",
        x_label: "classes per input",
        columns: vec!["merged classes", "merged arrows", "join µs"],
        points,
    }
}

/// E4: minimal satisfactory key assignment cost vs isa depth.
pub fn e4_keys(sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &classes in sizes {
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(3),
            arrows: classes * 2,
            specializations: classes,
            seed: 31,
        };
        let schema = random_schema(&params);
        // One key contribution per class with arrows.
        let contributions: Vec<_> = schema
            .classes()
            .filter_map(|class| {
                let labels = schema.labels_of(class);
                labels.iter().next().map(|label| {
                    (
                        class.clone(),
                        schema_merge_core::SuperkeyFamily::single(KeySet::new([label.clone()])),
                    )
                })
            })
            .collect();
        let start = Instant::now();
        let assignment =
            KeyAssignment::minimal_satisfactory(&schema, contributions.iter().map(|(c, f)| (c, f)));
        let elapsed = start.elapsed();
        let satisfactory =
            assignment.is_satisfactory(&schema, contributions.iter().map(|(c, f)| (c, f)));
        points.push(SeriesPoint {
            x: classes.to_string(),
            values: vec![
                assignment.num_keyed_classes().to_string(),
                satisfactory.to_string(),
                micros(elapsed),
            ],
        });
    }
    Series {
        id: "E4",
        title: "minimal satisfactory key assignment (§5)",
        x_label: "classes",
        columns: vec!["keyed classes", "satisfactory", "time µs"],
        points,
    }
}

/// E5: lower merge + completion cost and union-class counts.
pub fn e5_lower(sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &classes in sizes {
        let params = SchemaParams {
            vocabulary: classes,
            classes,
            labels: (classes / 2).max(2),
            arrows: classes,
            specializations: classes / 3,
            seed: 41,
        };
        let family = schema_family(&params, 2);
        let annotated: Vec<AnnotatedSchema> = family
            .iter()
            .map(|schema| AnnotatedSchema::all_required(schema.clone()))
            .collect();
        let start = Instant::now();
        let merged = lower_merge(annotated.iter());
        let merge_time = start.elapsed();
        let start = Instant::now();
        let result = lower_complete(&merged);
        let complete_time = start.elapsed();
        let (unions, meets) = match &result {
            Ok((_, _, report)) => (report.unions.len(), report.meet_classes.len()),
            Err(_) => (0, 0),
        };
        points.push(SeriesPoint {
            x: classes.to_string(),
            values: vec![
                micros(merge_time),
                micros(complete_time),
                unions.to_string(),
                meets.to_string(),
                result.is_ok().to_string(),
            ],
        });
    }
    Series {
        id: "E5",
        title: "lower merge (GLB) and completion (§6)",
        x_label: "classes per input",
        columns: vec![
            "merge µs",
            "complete µs",
            "union classes",
            "meet fallbacks",
            "proper",
        ],
        points,
    }
}

/// E6: ER round-trip — translate, merge, translate back; strata always
/// preserved.
pub fn e6_er_roundtrip(sizes: &[usize]) -> Series {
    let mut points = Vec::new();
    for &entities in sizes {
        let params = ErParams {
            entities,
            domains: entities / 2 + 1,
            attributes: entities * 2,
            relationships: entities / 2,
            isa: entities / 3,
            one_role_percent: 30,
            seed: 17,
        };
        let g1 = random_er_schema(&params);
        let g2 = random_er_schema(&ErParams {
            seed: 18,
            ..params.clone()
        });
        let start = Instant::now();
        let outcome = merge_er([&g1, &g2]).expect("ER merge");
        let elapsed = start.elapsed();
        let preserved = schema_merge_er::preserves_strata(&outcome);
        points.push(SeriesPoint {
            x: entities.to_string(),
            values: vec![
                outcome.core.proper.num_classes().to_string(),
                preserved.to_string(),
                micros(elapsed),
            ],
        });
    }
    Series {
        id: "E6",
        title: "ER merge round-trip preserves strata (§7)",
        x_label: "entities per input",
        columns: vec!["merged classes", "strata preserved", "time µs"],
        points,
    }
}

/// E10: §7 normal-form scaling — time to detect and fix `n`
/// attribute-versus-entity conflicts, and whether normalization always
/// clears them.
pub fn e10_normalize(conflict_counts: &[usize]) -> Series {
    use schema_merge_er::{detect_conflicts, normalize_pair, NormalPolicy};

    let mut points = Vec::new();
    for &n in conflict_counts {
        let (left, right) = schema_merge_workload::conflicting_er_pair(n);

        let start = Instant::now();
        let before = detect_conflicts(&left, &right).len();
        let detect_time = start.elapsed();

        let start = Instant::now();
        let outcome = normalize_pair(&left, &right, NormalPolicy::PreferEntity);
        let fix_time = start.elapsed();

        let merged_ok = merge_er([&outcome.left, &outcome.right]).is_ok();
        points.push(SeriesPoint {
            x: n.to_string(),
            values: vec![
                before.to_string(),
                outcome.applied.len().to_string(),
                outcome.is_clean().to_string(),
                merged_ok.to_string(),
                micros(detect_time),
                micros(fix_time),
            ],
        });
    }
    Series {
        id: "E10",
        title: "normal-form restructuring clears structural conflicts (§7)",
        x_label: "conflicts",
        columns: vec![
            "detected",
            "fixed",
            "clean",
            "merges",
            "detect µs",
            "fix µs",
        ],
        points,
    }
}

/// E11: §6 federation scaling — members with overlapping schemas and
/// key-shared data; reports view-building time and the two conformance
/// guarantees.
pub fn e11_federation(member_counts: &[usize]) -> Series {
    use schema_merge_core::{Class, Label};
    use schema_merge_instance::{Federation, Instance, PathQuery};

    let mut points = Vec::new();
    for &members in member_counts {
        // Member k sees attribute `a{k}` of Dog plus the shared chip.
        // All data lives over a shared chip pool so the key resolution
        // has real work: every member records the same `members` dogs.
        let mut federation = Federation::new();
        let mut keys = KeyAssignment::new();
        keys.add_key(Class::named("Dog"), KeySet::new([Label::new("chip")]));
        federation = federation.with_keys(keys);

        for k in 0..members {
            let schema = AnnotatedSchema::all_required(
                schema_merge_core::WeakSchema::builder()
                    .arrow("Dog", "chip", "chip-id")
                    .arrow("Dog", format!("a{k}"), format!("D{k}"))
                    .build()
                    .expect("member schema"),
            );
            // Each member registers every dog TWICE (intake + checkup)
            // over one chip object, so the key rule folds the duplicate
            // records and the congruence rule identifies their attribute
            // values (oids are renumbered across members, so resolution
            // work happens within each member's records).
            let mut b = Instance::builder();
            for _ in 0..members {
                let chip = b.object([Class::named("chip-id")]);
                for _visit in 0..2 {
                    let value = b.object([Class::named(format!("D{k}"))]);
                    let dog = b.object([Class::named("Dog")]);
                    b.attr(dog, "chip", chip);
                    b.attr(dog, format!("a{k}"), value);
                }
            }
            federation = federation.member(format!("member-{k}"), schema, b.build());
        }

        let start = Instant::now();
        let view = federation.view().expect("view builds");
        let build_time = start.elapsed();

        let union_ok = view.check().is_ok();
        let members_ok = federation
            .members()
            .iter()
            .all(|m| view.check_member(m).is_ok());
        let dogs = view.query(&PathQuery::extent("Dog")).len();
        points.push(SeriesPoint {
            x: members.to_string(),
            values: vec![
                dogs.to_string(),
                union_ok.to_string(),
                members_ok.to_string(),
                view.resolution.key_identifications.to_string(),
                micros(build_time),
            ],
        });
    }
    Series {
        id: "E11",
        title: "federated views: union + members conform to the lower merge (§6)",
        x_label: "members",
        columns: vec![
            "dogs visible",
            "union conforms",
            "members conform",
            "key idents",
            "build µs",
        ],
        points,
    }
}

/// The default experiment suite at modest sizes (fast enough for tests;
/// the `reproduce` binary and Criterion benches use larger sweeps).
pub fn default_suite() -> Vec<Series> {
    vec![
        e1_associativity(&[2, 4, 6]),
        e2_completion(&[16, 32], &[2, 4, 6, 8]),
        e3_weak_merge(&[16, 64, 128]),
        e4_keys(&[16, 64]),
        e5_lower(&[8, 16, 32]),
        e6_er_roundtrip(&[6, 12]),
        e10_normalize(&[1, 4, 16]),
        e11_federation(&[2, 4, 8]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_orders_always_agree() {
        let series = e1_associativity(&[2, 3]);
        for point in &series.points {
            assert_eq!(point.values[0], "true", "{point:?}");
        }
    }

    #[test]
    fn e2_matches_closed_form() {
        let series = e2_completion(&[], &[1, 3, 5]);
        for point in &series.points {
            assert_eq!(point.values[0], point.values[1], "{point:?}");
        }
    }

    #[test]
    fn e5_always_proper() {
        let series = e5_lower(&[6, 10]);
        for point in &series.points {
            assert_eq!(point.values[4], "true", "{point:?}");
        }
    }

    #[test]
    fn e6_always_preserves_strata() {
        let series = e6_er_roundtrip(&[4, 8]);
        for point in &series.points {
            assert_eq!(point.values[1], "true", "{point:?}");
        }
    }

    #[test]
    fn e10_always_clean_and_merges() {
        let series = e10_normalize(&[1, 3]);
        for point in &series.points {
            assert_eq!(point.values[0], point.x, "every planted conflict detected");
            assert_eq!(point.values[2], "true", "{point:?}");
            assert_eq!(point.values[3], "true", "{point:?}");
        }
    }

    #[test]
    fn e11_guarantees_hold_and_duplicates_fold() {
        let series = e11_federation(&[2, 3]);
        for point in &series.points {
            let members: usize = point.x.parse().expect("x is a count");
            let dogs: usize = point.values[0].parse().expect("dog count");
            assert_eq!(dogs, members * members, "2 records per dog fold to 1");
            assert_eq!(point.values[1], "true", "{point:?}");
            assert_eq!(point.values[2], "true", "{point:?}");
            let idents: usize = point.values[3].parse().expect("ident count");
            assert!(idents >= members, "key rule fired: {point:?}");
        }
    }

    #[test]
    fn suite_runs() {
        let suite = default_suite();
        assert_eq!(suite.len(), 8);
        for series in &suite {
            assert!(!series.points.is_empty());
            for point in &series.points {
                assert_eq!(point.values.len(), series.columns.len());
            }
        }
    }
}
