//! `reproduce` — prints the paper-reproduction tables recorded in
//! `EXPERIMENTS.md`.
//!
//! ```text
//! reproduce              # figures table + experiment series
//! reproduce --figures    # figures table only
//! reproduce --experiments# experiment series only
//! ```

#![forbid(unsafe_code)]

use schema_merge_bench::experiments::{default_suite, Series};
use schema_merge_bench::{all_rows, Verdict};

fn print_figures() {
    println!("== Figure reproduction (Buneman, Davidson & Kosky, EDBT 1992) ==");
    println!();
    println!("{:<6} {:<8} paper claim / measured", "id", "verdict");
    println!("{}", "-".repeat(100));
    let mut failures = 0;
    for row in all_rows() {
        let verdict = match row.verdict {
            Verdict::Pass => "PASS",
            Verdict::Fail => {
                failures += 1;
                "FAIL"
            }
        };
        println!("{:<6} {:<8} paper:    {}", row.id, verdict, row.paper);
        println!("{:<6} {:<8} measured: {}", "", "", row.measured);
    }
    println!("{}", "-".repeat(100));
    let total = all_rows().len();
    println!("{total} rows, {failures} failures");
    println!();
}

fn print_series(series: &Series) {
    println!("== {} — {} ==", series.id, series.title);
    print!("{:<18}", series.x_label);
    for column in &series.columns {
        print!(" | {column:<22}");
    }
    println!();
    println!("{}", "-".repeat(20 + 25 * series.columns.len()));
    for point in &series.points {
        print!("{:<18}", point.x);
        for value in &point.values {
            print!(" | {value:<22}");
        }
        println!();
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let figures_only = args.iter().any(|a| a == "--figures");
    let experiments_only = args.iter().any(|a| a == "--experiments");

    if !experiments_only {
        print_figures();
    }
    if !figures_only {
        for series in default_suite() {
            print_series(&series);
        }
    }
}
