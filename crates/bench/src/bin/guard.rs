//! `guard` — the perf-trajectory regression gate.
//!
//! ```text
//! guard --baseline BENCH_5.json --current BENCH_42.json [--tolerance 0.15]
//! ```
//!
//! Compares a freshly measured `BENCH_<n>.json` against the trajectory
//! document committed in the tree and **fails (exit 1) if any speedup
//! ratio present in both degrades by more than the tolerance** (default
//! 15%). Schema-4 documents also carry a `mem_ratio` (peak-heap
//! baseline/improved quotient) per speedup; when a positive one is
//! present on *both* sides of a matched entry it is guarded with the
//! same tolerance, so the sparse-representation memory win cannot
//! silently regress — older documents without it stay comparable.
//! Entries only in the baseline (e.g. full-profile sizes a `--quick` CI
//! run skips) are reported and skipped; entries only in the current run
//! are new coverage and pass silently. At least one entry must match,
//! so a malformed file can never pass vacuously.
//!
//! The parser is deliberately tiny and std-only: it reads the exact
//! line-oriented document `bench --json` emits (one speedup object per
//! line), not general JSON.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// One speedup entry: identity key plus the measured ratio.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    family: String,
    op: String,
    n_classes: u64,
    n_arrows: u64,
    baseline: String,
    improved: String,
    speedup: f64,
    /// Peak-heap quotient; absent in schema-3 and older documents, and
    /// treated as "no claim" when 0 (one side's peak rounded to nothing).
    mem_ratio: Option<f64>,
}

impl Entry {
    fn key(&self) -> String {
        format!(
            "{}/{} @{}c/{}a {}->{}",
            self.family, self.op, self.n_classes, self.n_arrows, self.baseline, self.improved
        )
    }
}

/// Extracts `"key": "value"` from a single speedup line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key": <number>` from a single speedup line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .map_or(line.len(), |i| i + start);
    line[start..end].parse().ok()
}

/// Parses the `"speedups"` entries out of a `bench --json` document.
fn parse_speedups(text: &str) -> Vec<Entry> {
    let Some(section) = text.split("\"speedups\"").nth(1) else {
        return Vec::new();
    };
    section
        .lines()
        .filter(|line| line.contains("\"speedup\":"))
        .filter_map(|line| {
            Some(Entry {
                family: field_str(line, "family")?,
                op: field_str(line, "op")?,
                n_classes: field_num(line, "n_classes")? as u64,
                n_arrows: field_num(line, "n_arrows")? as u64,
                baseline: field_str(line, "baseline")?,
                improved: field_str(line, "improved")?,
                speedup: field_num(line, "speedup")?,
                mem_ratio: field_num(line, "mem_ratio"),
            })
        })
        .collect()
}

fn run(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<(), String> {
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|err| format!("guard: reading {path}: {err}"))
    };
    let committed = parse_speedups(&read(baseline_path)?);
    let current = parse_speedups(&read(current_path)?);
    if committed.is_empty() {
        return Err(format!("guard: no speedup entries in {baseline_path}"));
    }
    if current.is_empty() {
        return Err(format!("guard: no speedup entries in {current_path}"));
    }

    let mut matched = 0usize;
    let mut failures = Vec::new();
    for entry in &committed {
        let Some(fresh) = current.iter().find(|c| c.key() == entry.key()) else {
            eprintln!("guard: skip (not in current run): {}", entry.key());
            continue;
        };
        matched += 1;
        let floor = entry.speedup * (1.0 - tolerance);
        let status = if fresh.speedup < floor { "FAIL" } else { "ok" };
        eprintln!(
            "guard: {status:>4} {:<44} committed {:>7.2}x measured {:>7.2}x (floor {:.2}x)",
            entry.key(),
            entry.speedup,
            fresh.speedup,
            floor,
        );
        if fresh.speedup < floor {
            failures.push(entry.key());
        }
        if let (Some(committed_mem), Some(fresh_mem)) = (entry.mem_ratio, fresh.mem_ratio) {
            // 0 means "no memory claim" (a peak rounded to nothing), so
            // only a positive committed ratio is a guarded claim.
            if committed_mem > 0.0 && fresh_mem > 0.0 {
                let mem_floor = committed_mem * (1.0 - tolerance);
                let status = if fresh_mem < mem_floor { "FAIL" } else { "ok" };
                eprintln!(
                    "guard: {status:>4} {:<44} committed {:>7.2}x measured {:>7.2}x (floor {:.2}x) [memory]",
                    entry.key(),
                    committed_mem,
                    fresh_mem,
                    mem_floor,
                );
                if fresh_mem < mem_floor {
                    failures.push(format!("{} [memory]", entry.key()));
                }
            }
        }
    }
    if matched == 0 {
        return Err("guard: no committed entry matched the current run — wrong file?".into());
    }
    if !failures.is_empty() {
        return Err(format!(
            "guard: {} speedup(s) degraded more than {:.0}% vs {}: {}",
            failures.len(),
            tolerance * 100.0,
            baseline_path,
            failures.join("; ")
        ));
    }
    eprintln!(
        "guard: {matched} speedup(s) within {:.0}% of the committed trajectory",
        tolerance * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut tolerance = 0.15f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => baseline = iter.next().cloned(),
            "--current" => current = iter.next().cloned(),
            "--tolerance" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => tolerance = t,
                _ => {
                    eprintln!("guard: --tolerance requires a fraction in [0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: guard --baseline BENCH_A.json --current BENCH_B.json [--tolerance 0.15]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("guard: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        eprintln!("guard: --baseline and --current are both required");
        return ExitCode::FAILURE;
    };
    match run(&baseline, &current, tolerance) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench_schema_version": 3,
  "pr": 5,
  "threads": 4,
  "records": [
    {"family": "wide", "op": "merge", "n_classes": 160, "n_arrows": 9000, "variant": "compiled", "iters": 15, "median_ns": 20000000, "allocs_per_iter": 90000, "throughput_arrows_per_s": 450.0}
  ],
  "speedups": [
    {"family": "wide", "op": "merge", "n_classes": 160, "n_arrows": 9000, "baseline": "compiled", "improved": "parallel", "speedup": 2.50, "alloc_ratio": 1.80},
    {"family": "random", "op": "complete", "n_classes": 200, "n_arrows": 1209, "baseline": "compiled-nopool", "improved": "compiled", "speedup": 1.20, "alloc_ratio": 4.10}
  ]
}
"#;

    const DOC_V4: &str = r#"{
  "bench_schema_version": 4,
  "pr": 6,
  "threads": 4,
  "records": [
    {"family": "taxonomy", "op": "merge", "n_classes": 6000, "n_arrows": 3000, "variant": "compiled", "iters": 7, "median_ns": 90000000, "allocs_per_iter": 40000, "peak_bytes": 52428800, "throughput_arrows_per_s": 33.0}
  ],
  "speedups": [
    {"family": "wide", "op": "merge", "n_classes": 160, "n_arrows": 9000, "baseline": "compiled", "improved": "parallel", "speedup": 2.50, "alloc_ratio": 1.80, "mem_ratio": 0.00},
    {"family": "taxonomy", "op": "merge", "n_classes": 6000, "n_arrows": 3000, "baseline": "compiled-dense", "improved": "compiled", "speedup": 1.10, "alloc_ratio": 1.20, "mem_ratio": 8.00}
  ]
}
"#;

    #[test]
    fn parses_the_emitted_document_shape() {
        let entries = parse_speedups(DOC);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].family, "wide");
        assert_eq!(entries[0].improved, "parallel");
        assert!((entries[0].speedup - 2.5).abs() < 1e-9);
        assert_eq!(entries[1].n_classes, 200);
        assert_eq!(entries[1].baseline, "compiled-nopool");
        assert_eq!(entries[0].mem_ratio, None, "schema-3 carries no memory");
    }

    #[test]
    fn parses_schema_4_memory_ratios() {
        let entries = parse_speedups(DOC_V4);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].mem_ratio, Some(0.0));
        assert_eq!(entries[1].improved, "compiled");
        assert_eq!(entries[1].mem_ratio, Some(8.0));
    }

    #[test]
    fn record_lines_are_not_mistaken_for_speedups() {
        let entries = parse_speedups(DOC);
        assert!(entries.iter().all(|e| e.op != "weak_join"));
        // The records section mentions no "speedup" key, so nothing
        // before the speedups array parses.
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn degradation_detection_works_end_to_end() {
        let dir = std::env::temp_dir().join("smerge-guard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let committed = dir.join("committed.json");
        let fresh_ok = dir.join("ok.json");
        let fresh_bad = dir.join("bad.json");
        std::fs::write(&committed, DOC).unwrap();
        std::fs::write(&fresh_ok, DOC.replace("2.50", "2.30")).unwrap();
        std::fs::write(&fresh_bad, DOC.replace("2.50", "1.90")).unwrap();

        let path = |p: &std::path::Path| p.to_str().unwrap().to_string();
        assert!(
            run(&path(&committed), &path(&fresh_ok), 0.15).is_ok(),
            "-8% passes"
        );
        let err = run(&path(&committed), &path(&fresh_bad), 0.15).unwrap_err();
        assert!(err.contains("degraded"), "{err}");
        assert!(err.contains("wide/merge"), "{err}");
    }

    #[test]
    fn memory_ratio_is_guarded_when_both_sides_claim_one() {
        let dir = std::env::temp_dir().join("smerge-guard-mem-test");
        std::fs::create_dir_all(&dir).unwrap();
        let committed = dir.join("committed.json");
        let fresh_ok = dir.join("ok.json");
        let fresh_bad = dir.join("bad.json");
        let fresh_v3 = dir.join("v3.json");
        std::fs::write(&committed, DOC_V4).unwrap();
        // Time holds, memory win shrinks 6% — within tolerance.
        std::fs::write(&fresh_ok, DOC_V4.replace("8.00", "7.50")).unwrap();
        // Time holds, memory win collapses — must fail.
        std::fs::write(&fresh_bad, DOC_V4.replace("8.00", "2.00")).unwrap();
        // A schema-3 run against a schema-4 baseline: no memory claim to
        // compare, the speedups alone decide.
        std::fs::write(&fresh_v3, DOC).unwrap();

        let path = |p: &std::path::Path| p.to_str().unwrap().to_string();
        assert!(run(&path(&committed), &path(&fresh_ok), 0.15).is_ok());
        let err = run(&path(&committed), &path(&fresh_bad), 0.15).unwrap_err();
        assert!(err.contains("[memory]"), "{err}");
        assert!(err.contains("taxonomy/merge"), "{err}");
        // The wide entry's 0.00 mem_ratio is "no claim", never a failure;
        // only the wide speedup matches the v3 document and it holds.
        assert!(run(&path(&committed), &path(&fresh_v3), 0.15).is_ok());
    }
}
