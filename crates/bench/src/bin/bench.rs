//! `bench` — the JSON perf-trajectory runner.
//!
//! ```text
//! bench                  # human-readable table on stdout
//! bench --json           # BENCH_<n>.json document on stdout
//! bench --json --out BENCH_2.json
//!                        # write the document to a file (CI artifact)
//! bench --quick          # the CI profile: fewer iterations/sizes
//! bench --pr 2           # trajectory index recorded in the document
//!                        # (defaults to 0, an unlabeled local run)
//! bench --threads 4      # worker budget for the parallel variants
//!                        # (defaults to the machine's parallelism)
//! ```
//!
//! Measures the symbolic reference engine, the compiled engine (dense
//! ids + bitset closures) and the parallel engine (sharded interning +
//! frontier-parallel completion) on the `workload` generators; see
//! `schema_merge_bench::perf` for the record format.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use schema_merge_bench::perf;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut quick = false;
    let mut out_path: Option<String> = None;
    let mut pr_index: u32 = 0;
    let mut threads: usize = schema_merge_core::default_threads();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--out" => match iter.next() {
                Some(path) => out_path = Some(path.clone()),
                None => {
                    eprintln!("bench: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--pr" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(index) => pr_index = index,
                None => {
                    eprintln!("bench: --pr requires a number");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match iter.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) {
                Some(count) => threads = count,
                None => {
                    eprintln!("bench: --threads requires a positive count");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bench [--json] [--quick] [--out PATH] [--pr N] [--threads N]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bench: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = perf::run_suite(quick, threads);
    let rendered = if json || out_path.is_some() {
        perf::to_json(&report, pr_index, threads)
    } else {
        perf::to_table(&report)
    };
    match out_path {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &rendered) {
                eprintln!("bench: writing {path}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!("bench: wrote {path}");
            // Echo the table so CI logs show the numbers inline too.
            eprint!("{}", perf::to_table(&report));
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}
