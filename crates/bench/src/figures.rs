//! Executable reconstructions of the paper's figures.
//!
//! The paper is a theory paper: its "evaluation" is eleven worked figures
//! plus algebraic claims. Each function below rebuilds one figure's
//! schemas programmatically, runs the corresponding operation, and checks
//! the outcome the paper asserts. [`all_rows`] drives them all and feeds
//! both the `reproduce` binary and the integration tests.

use schema_merge_baseline::{figure_4_schemas, is_opaque, stepwise_merge};
use schema_merge_core::complete::complete_with_report;
use schema_merge_core::iso::alpha_isomorphic;
use schema_merge_core::lower::{lower_complete, lower_merge, AnnotatedSchema};
use schema_merge_core::{
    weak_join, Class, KeyAssignment, KeySet, Label, Participation, SuperkeyFamily, WeakSchema,
};
use schema_merge_er::{
    cardinality_keys, figure_1_dogs, figure_9_advisor, from_core, keys_to_cardinalities, merge_er,
    to_core, Cardinality,
};

/// Did the reproduction match the paper?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The claim checked out.
    Pass,
    /// The claim failed (details in the row's `measured`).
    Fail,
}

/// One row of the reproduction table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id (`F1`–`F11` figures, `E…` experiments).
    pub id: &'static str,
    /// What the paper shows or claims.
    pub paper: String,
    /// What we measured.
    pub measured: String,
    /// Pass/fail.
    pub verdict: Verdict,
}

impl Row {
    fn check(
        id: &'static str,
        paper: impl Into<String>,
        measured: impl Into<String>,
        ok: bool,
    ) -> Row {
        Row {
            id,
            paper: paper.into(),
            measured: measured.into(),
            verdict: if ok { Verdict::Pass } else { Verdict::Fail },
        }
    }
}

use crate::facade_outcome as facade_merge;

fn c(s: &str) -> Class {
    Class::named(s)
}

fn l(s: &str) -> Label {
    Label::new(s)
}

/// Fig. 1: the dogs/kennels ER diagram is constructible and valid.
pub fn figure_1() -> Row {
    let er = figure_1_dogs();
    let ok = er.validate().is_ok() && er.counts() == (4, 4, 1);
    Row::check(
        "F1",
        "ER diagram with Guide-dog/Police-dog isa Dog, Lives(occ, home), 4 domains",
        format!(
            "valid ER schema with (domains, entities, relationships) = {:?}",
            er.counts()
        ),
        ok,
    )
}

/// Fig. 2: translating Fig. 1 yields the database schema with isa, with
/// the closure edges the figure leaves implicit.
pub fn figure_2() -> Row {
    let (schema, strata) = to_core(&figure_1_dogs());
    let inherits = schema.has_arrow(&c("Guide-dog"), &l("age"), &c("int"))
        && schema.has_arrow(&c("Police-dog"), &l("kind"), &c("breed"))
        && schema.has_arrow(&c("Police-dog"), &l("id-num"), &c("int"))
        && !schema.has_arrow(&c("Guide-dog"), &l("id-num"), &c("int"));
    let round_trip = from_core(&schema, &strata)
        .map(|er| to_core(&er).0 == schema)
        .unwrap_or(false);
    Row::check(
        "F2",
        "graph translation of Fig. 1; inherited arrows implied by constraint 2",
        format!(
            "{} classes, {} arrows; inheritance {}; ER round-trip {}",
            schema.num_classes(),
            schema.num_arrows(),
            if inherits { "correct" } else { "WRONG" },
            if round_trip { "exact" } else { "BROKEN" },
        ),
        inherits && round_trip,
    )
}

/// Fig. 3: merging `{C ⇒ A1, C ⇒ A2}` with `{A1 -a-> B1, A2 -a-> B2}`
/// forces the implicit class below `B1` and `B2`.
pub fn figure_3() -> Row {
    let g1 = WeakSchema::builder()
        .specialize("C", "A1")
        .specialize("C", "A2")
        .build()
        .expect("figure 3 G1");
    let g2 = WeakSchema::builder()
        .arrow("A1", "a", "B1")
        .arrow("A2", "a", "B2")
        .build()
        .expect("figure 3 G2");
    let outcome = facade_merge([&g1, &g2]).expect("figure 3 merge");
    let x = Class::implicit([c("B1"), c("B2")]);
    let ok = outcome.report.num_implicit() == 1
        && outcome.proper.canonical_target(&c("C"), &l("a")) == Some(&x)
        && outcome.proper.specializes(&x, &c("B1"))
        && outcome.proper.specializes(&x, &c("B2"));
    Row::check(
        "F3",
        "merge introduces one implicit class below B1, B2 as C's a-target",
        format!(
            "{} implicit class(es); canonical a-target of C = {}",
            outcome.report.num_implicit(),
            outcome
                .proper
                .canonical_target(&c("C"), &l("a"))
                .map(|t| t.to_string())
                .unwrap_or_else(|| "<none>".into()),
        ),
        ok,
    )
}

/// Fig. 4: the three simple schemas exist and are pairwise and jointly
/// compatible.
pub fn figure_4() -> Row {
    let (g1, g2, g3) = figure_4_schemas();
    let ok = schema_merge_core::are_compatible([&g1, &g2, &g3]);
    Row::check(
        "F4",
        "three elementary schemas sharing class B with a-arrows to D, E, F",
        format!(
            "constructed; jointly compatible = {ok}; sizes = {}, {}, {} classes",
            g1.num_classes(),
            g2.num_classes(),
            g3.num_classes()
        ),
        ok,
    )
}

/// Fig. 5: the naive stepwise merge is order-dependent (nested opaque
/// classes), while the paper's merge gives `{D,E,F}` in every order.
pub fn figure_5() -> Row {
    let (g1, g2, g3) = figure_4_schemas();
    let naive_a = stepwise_merge([&g1, &g2, &g3]).expect("naive order A");
    let naive_b = stepwise_merge([&g1, &g3, &g2]).expect("naive order B");
    let naive_differ = !alpha_isomorphic(&naive_a, &naive_b, is_opaque);

    let ours_a = facade_merge([&g1, &g2, &g3]).expect("merge A").proper;
    let ours_b = facade_merge([&g1, &g3, &g2]).expect("merge B").proper;
    let ours_c = facade_merge([&g3, &g2, &g1]).expect("merge C").proper;
    let def = Class::implicit([c("D"), c("E"), c("F")]);
    let ours_agree = ours_a == ours_b && ours_b == ours_c && ours_a.contains_class(&def);

    Row::check(
        "F5",
        "naive merge non-associative (nested X?/Y?); paper merge gives one {D,E,F}",
        format!(
            "naive orders differ = {naive_differ}; paper merge order-independent = {ours_agree}"
        ),
        naive_differ && ours_agree,
    )
}

/// Fig. 6 inputs and Fig. 8: their weak least upper bound.
pub fn figures_6_and_8() -> Row {
    let g1 = fig6_g1();
    let g2 = fig6_g2();
    let joined = weak_join(&g1, &g2).expect("figure 8 join");
    // Fig. 8 shows F's a-arrows reaching C and D (and upward to A and B),
    // with E below C and D.
    let ok = joined.has_arrow(&c("F"), &l("a"), &c("C"))
        && joined.has_arrow(&c("F"), &l("a"), &c("D"))
        && joined.has_arrow(&c("F"), &l("a"), &c("A"))
        && joined.has_arrow(&c("F"), &l("a"), &c("B"))
        && joined.specializes(&c("E"), &c("C"))
        && joined.specializes(&c("E"), &c("D"))
        && g1.is_subschema_of(&joined)
        && g2.is_subschema_of(&joined);
    Row::check(
        "F6/F8",
        "G1 ⊔ G2 is the least upper bound drawn in Fig. 8",
        format!(
            "join has {} classes, {} arrows; bounds verified = {ok}",
            joined.num_classes(),
            joined.num_arrows()
        ),
        ok,
    )
}

fn fig6_g1() -> WeakSchema {
    WeakSchema::builder()
        .arrow("F", "a", "C")
        .arrow("F", "a", "D")
        .specialize("C", "A")
        .specialize("D", "B")
        .build()
        .expect("figure 6 G1")
}

fn fig6_g2() -> WeakSchema {
    WeakSchema::builder()
        .specialize("E", "C")
        .specialize("E", "D")
        .specialize("C", "A")
        .specialize("D", "B")
        .build()
        .expect("figure 6 G2")
}

/// Fig. 7: completion chooses candidate `G3` (with `? = {C,D}`), not the
/// smaller `G4` that would conflate the target with `E`.
pub fn figure_7() -> Row {
    let merged = weak_join(&fig6_g1(), &fig6_g2()).expect("figure 7 join");
    let (proper, report) = complete_with_report(&merged).expect("figure 7 completion");
    let cd = Class::implicit([c("C"), c("D")]);
    let target = proper.canonical_target(&c("F"), &l("a"));
    let ok = report.num_implicit() == 1
        && target == Some(&cd)
        && proper.specializes(&c("E"), &cd)
        && target != Some(&c("E"));
    Row::check(
        "F7",
        "merge = G3 with ? = {C,D}; E stays a (possibly constrained) subclass; not G4",
        format!(
            "canonical a-target of F = {}; E below it = {}",
            target
                .map(|t| t.to_string())
                .unwrap_or_else(|| "<none>".into()),
            proper.specializes(&c("E"), &cd)
        ),
        ok,
    )
}

/// Fig. 9: Advisor ⇒ Committee with cardinality-derived keys; the merged
/// assignment satisfies SK(Advisor) ⊇ SK(Committee).
pub fn figure_9() -> Row {
    let er = figure_9_advisor();
    let outcome = merge_er([&er]).expect("figure 9 merge");
    let advisor = outcome.keys.family(&c("Advisor"));
    let committee = outcome.keys.family(&c("Committee"));
    let expected_advisor = SuperkeyFamily::single(KeySet::new(["victim"]));
    let expected_committee = SuperkeyFamily::single(KeySet::new(["faculty", "victim"]));
    let inheritance = advisor.contains_family(&committee);
    let ok = advisor == expected_advisor && committee == expected_committee && inheritance;
    Row::check(
        "F9",
        "SK(Advisor) = {{victim}}, SK(Committee) = {{faculty,victim}}, inherited",
        format!("SK(Advisor) = {advisor}; SK(Committee) = {committee}; SK(Advisor) ⊇ SK(Committee) = {inheritance}"),
        ok,
    )
}

/// Fig. 10: `Transaction` carries two keys `{loc,at}` and `{card,at}` —
/// representable as key constraints, not as edge labels.
pub fn figure_10() -> Row {
    let schema = WeakSchema::builder()
        .arrow("Transaction", "loc", "Machine")
        .arrow("Transaction", "at", "Time")
        .arrow("Transaction", "card", "Card")
        .arrow("Transaction", "amount", "Amount")
        .build()
        .expect("figure 10 schema");
    let mut keys = KeyAssignment::new();
    keys.add_key(c("Transaction"), KeySet::new(["loc", "at"]));
    keys.add_key(c("Transaction"), KeySet::new(["card", "at"]));
    let valid = keys.validate(&schema).is_ok();

    // The same family cannot be a cardinality labelling of the two-role
    // view of Transaction.
    let er = schema_merge_er::ErSchema::builder()
        .entity("Machine")
        .entity("Card")
        .relationship("Transaction", [("loc", "Machine"), ("card", "Card")])
        .attribute("Transaction", "at", "time")
        .attribute("Transaction", "amount", "money")
        .build()
        .expect("figure 10 er");
    let rel = er
        .relationship(&schema_merge_core::Name::new("Transaction"))
        .expect("transaction");
    let not_labelable = keys_to_cardinalities(rel, &keys.family(&c("Transaction"))).is_none();

    Row::check(
        "F10",
        "{loc,at} and {card,at} are keys; no edge labelling expresses them",
        format!(
            "keys valid = {valid}; expressible as cardinalities = {}",
            !not_labelable
        ),
        valid && not_labelable,
    )
}

/// Fig. 11: the participation semilattice and the lower-merge weakening.
pub fn figure_11() -> Row {
    use Participation::*;
    let table_ok = One.meet(Zero) == ZeroOrOne
        && Zero.meet(ZeroOrOne) == ZeroOrOne
        && One.meet(One) == One
        && Zero.meet(Zero) == Zero;
    let laws_ok = Participation::ALL
        .iter()
        .all(|&a| a.meet(a) == a && Participation::ALL.iter().all(|&b| a.meet(b) == b.meet(a)));

    // §6's Dog example: name survives required, age/breed weaken to 0/1.
    let g1 = AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "age", "int")
        .build()
        .expect("dogs 1");
    let g2 = AnnotatedSchema::builder()
        .arrow("Dog", "name", "string")
        .arrow("Dog", "breed", "Breed")
        .build()
        .expect("dogs 2");
    let merged = lower_merge([&g1, &g2]);
    let weakening_ok = merged.participation(&c("Dog"), &l("name"), &c("string")) == One
        && merged.participation(&c("Dog"), &l("age"), &c("int")) == ZeroOrOne
        && merged.participation(&c("Dog"), &l("breed"), &c("Breed")) == ZeroOrOne;

    // Lower completion introduces a union class above disagreeing targets.
    let h1 = AnnotatedSchema::builder()
        .arrow("Pet", "home", "House")
        .build()
        .expect("pets 1");
    let h2 = AnnotatedSchema::builder()
        .arrow("Pet", "home", "Kennel")
        .build()
        .expect("pets 2");
    let (_, proper, report) = lower_complete(&lower_merge([&h1, &h2])).expect("lower complete");
    let union = Class::implicit_union([c("House"), c("Kennel")]);
    let union_ok =
        report.unions.len() == 1 && proper.canonical_target(&c("Pet"), &l("home")) == Some(&union);

    Row::check(
        "F11",
        "0/1 semilattice; lower merge weakens disagreements; union classes above targets",
        format!(
            "meet table = {table_ok}; laws = {laws_ok}; §6 Dog weakening = {weakening_ok}; union class = {union_ok}"
        ),
        table_ok && laws_ok && weakening_ok && union_ok,
    )
}

/// E7: user assertions as elementary schemas (§3) — order irrelevant.
pub fn experiment_assertions() -> Row {
    let g1 = WeakSchema::builder()
        .arrow("A1", "a", "B1")
        .build()
        .expect("g1");
    let g2 = WeakSchema::builder()
        .arrow("A2", "a", "B2")
        .build()
        .expect("g2");

    let mut s1 = schema_merge_core::MergeSession::new();
    s1.assert_specialization("C", "A1").expect("assert");
    s1.add_schema(&g1).expect("add");
    s1.add_schema(&g2).expect("add");
    s1.assert_specialization("C", "A2").expect("assert");

    let mut s2 = schema_merge_core::MergeSession::new();
    s2.add_schema(&g2).expect("add");
    s2.assert_specialization("C", "A2").expect("assert");
    s2.assert_specialization("C", "A1").expect("assert");
    s2.add_schema(&g1).expect("add");

    let r1 = s1.merged().expect("merge 1").proper;
    let r2 = s2.merged().expect("merge 2").proper;
    let ok = r1 == r2 && r1.contains_class(&Class::implicit([c("B1"), c("B2")]));
    Row::check(
        "E7",
        "assertions are elementary schemas; any interleaving yields the same merge",
        format!("two interleavings agree = {}", r1 == r2),
        ok,
    )
}

/// E6 (spot check): ER cardinalities round-trip through keys for all four
/// binary combinations.
pub fn experiment_cardinality_round_trip() -> Row {
    let mut ok = true;
    for cards in [
        (Cardinality::Many, Cardinality::Many),
        (Cardinality::One, Cardinality::Many),
        (Cardinality::Many, Cardinality::One),
        (Cardinality::One, Cardinality::One),
    ] {
        let er = schema_merge_er::ErSchema::builder()
            .entity("A")
            .entity("B")
            .relationship("R", [("ra", "A"), ("rb", "B")])
            .cardinality("R", "ra", cards.0)
            .cardinality("R", "rb", cards.1)
            .build()
            .expect("binary relationship");
        let keys = cardinality_keys(&er);
        let rel = er
            .relationship(&schema_merge_core::Name::new("R"))
            .expect("R");
        let back = keys_to_cardinalities(rel, &keys.family(&c("R")));
        ok &= back
            .map(|m| m[&l("ra")] == cards.0 && m[&l("rb")] == cards.1)
            .unwrap_or(false);
    }
    Row::check(
        "E6b",
        "binary cardinalities ↔ keys is exact (1:1, 1:N, N:1, N:N)",
        format!("all four combinations round-trip = {ok}"),
        ok,
    )
}

/// E8: §7's "normal form" — structural conflicts are fixed by
/// restructuring, after which the merge presents ONE interpretation.
pub fn experiment_normal_form() -> Row {
    use schema_merge_er::{detect_conflicts, normalize_pair, NormalPolicy};

    // "An attribute in one schema may look like an entity in another."
    let registry = schema_merge_er::ErSchema::builder()
        .entity("Dog")
        .attribute("Dog", "kennel", "kennel-id")
        .build()
        .expect("registry");
    let club = schema_merge_er::ErSchema::builder()
        .entity("Dog")
        .entity("kennel")
        .attribute("kennel", "addr", "place")
        .build()
        .expect("club");

    let before = detect_conflicts(&registry, &club).len();
    let outcome = normalize_pair(&registry, &club, NormalPolicy::PreferEntity);
    let after = detect_conflicts(&outcome.left, &outcome.right).len();
    let merged = merge_er([&outcome.left, &outcome.right]);
    let unified = merged
        .as_ref()
        .map(|m| {
            m.er.stratum(&schema_merge_core::Name::new("kennel"))
                == Some(schema_merge_er::Stratum::Entity)
                && m.er
                    .attributes_of(&schema_merge_core::Name::new("Dog"))
                    .is_empty()
        })
        .unwrap_or(false);
    let ok = before > 0 && after == 0 && outcome.is_clean() && unified;
    Row::check(
        "E8",
        "§7: structural conflicts need a normal form; restructuring forces one interpretation",
        format!(
            "conflicts {before} → {after}; merged schema has a single kennel-as-entity \
             presentation = {unified}"
        ),
        ok,
    )
}

/// E9: §6's federated-database guarantee — member instances and their
/// key-resolved union all conform to the lower merge.
pub fn experiment_federation() -> Row {
    use schema_merge_instance::{Federation, Instance, PathQuery};

    let g1 = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "age", "int")
            .build()
            .expect("g1"),
    );
    let g2 = AnnotatedSchema::all_required(
        WeakSchema::builder()
            .arrow("Dog", "name", "string")
            .arrow("Dog", "breed", "breed")
            .build()
            .expect("g2"),
    );

    let mut b = Instance::builder();
    let name = b.object([c("string")]);
    let age = b.object([c("int")]);
    let rex = b.object([c("Dog")]);
    b.attr(rex, "name", name);
    b.attr(rex, "age", age);
    let i1 = b.build();

    let mut b = Instance::builder();
    let name2 = b.object([c("string")]);
    let kind = b.object([c("breed")]);
    let fido = b.object([c("Dog")]);
    b.attr(fido, "name", name2);
    b.attr(fido, "breed", kind);
    let i2 = b.build();

    let federation = Federation::new().member("a", g1, i1).member("b", g2, i2);
    let view = match federation.view() {
        Ok(view) => view,
        Err(err) => return Row::check("E9", "§6 federation", format!("view failed: {err}"), false),
    };
    let union_conforms = view.check().is_ok();
    let members_conform = federation
        .members()
        .iter()
        .all(|member| view.check_member(member).is_ok());
    let dogs = view.query(&PathQuery::extent("Dog")).len();
    let weakened = view.schema.num_optional() == 2; // age and breed
    let ok = union_conforms && members_conform && dogs == 2 && weakened;
    Row::check(
        "E9",
        "§6: every member instance AND their union are instances of the lower merge",
        format!(
            "union conforms = {union_conforms}, members conform = {members_conform}, \
             {dogs} dogs visible, disputed arrows weakened to 0/1 = {weakened}"
        ),
        ok,
    )
}

/// Every figure row, in paper order.
pub fn all_rows() -> Vec<Row> {
    vec![
        figure_1(),
        figure_2(),
        figure_3(),
        figure_4(),
        figure_5(),
        figures_6_and_8(),
        figure_7(),
        figure_9(),
        figure_10(),
        figure_11(),
        experiment_assertions(),
        experiment_cardinality_round_trip(),
        experiment_normal_form(),
        experiment_federation(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_reproduces() {
        for row in all_rows() {
            assert_eq!(
                row.verdict,
                Verdict::Pass,
                "{}: paper said `{}`, we measured `{}`",
                row.id,
                row.paper,
                row.measured
            );
        }
    }

    #[test]
    fn rows_cover_all_figures() {
        let ids: Vec<&str> = all_rows().iter().map(|r| r.id).collect();
        for wanted in [
            "F1", "F2", "F3", "F4", "F5", "F6/F8", "F7", "F9", "F10", "F11",
        ] {
            assert!(ids.contains(&wanted), "missing row {wanted}");
        }
    }
}
