//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the subset of the criterion 0.5 API the bench
//! suite uses: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`], `criterion_group!` and
//! `criterion_main!`. It measures median wall-clock time over a small
//! number of samples and prints one line per benchmark — enough to track
//! relative perf between PRs, with no statistics, plotting or reports.
//!
//! Benches run in full under `cargo bench`; setting `CRITERION_SAMPLES=0`
//! turns every benchmark into a single warm-up call, which makes the
//! suite usable as a smoke test.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id, e.g. function name plus parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation; recorded and echoed but not rate-converted.
#[derive(Debug, Clone)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timed iterations of a single benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time, filled in by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the median per-call time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up call; doubles as the calibration measurement below and
        // is the only call in smoke mode.
        let start = Instant::now();
        black_box(routine());
        let warm = start.elapsed();
        if self.samples == 0 {
            return;
        }
        // Amortize timer overhead for fast routines: batch enough calls
        // per sample to reach ~200µs, then divide. Slow routines keep one
        // call per sample.
        const TARGET: Duration = Duration::from_micros(200);
        let iters = (TARGET.as_nanos() / warm.as_nanos().max(1)).clamp(1, 4096) as u32;
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(start.elapsed() / iters);
        }
        times.sort();
        self.elapsed = times[times.len() / 2];
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_SAMPLES=0 turns every bench into a single smoke run.
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(15);
        Criterion { samples }
    }
}

impl Criterion {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, mut f: F) {
        run_one(&name.to_string(), self.samples, None, |b| f(b));
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, self.throughput.clone(), |b| f(b));
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, self.throughput.clone(), |b| {
            f(b, input)
        });
    }

    /// Ends the group. No-op here; kept for API compatibility.
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if samples == 0 {
        println!("bench {label:<50} smoke-only");
        return;
    }
    let per_iter = bencher.elapsed;
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("bench {label:<50} {per_iter:>12.2?}/iter  ({n} elems)");
        }
        Some(Throughput::Bytes(n)) => {
            println!("bench {label:<50} {per_iter:>12.2?}/iter  ({n} bytes)");
        }
        None => println!("bench {label:<50} {per_iter:>12.2?}/iter"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
///
/// Ignores harness CLI flags (`--bench`, filters) that cargo forwards.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
