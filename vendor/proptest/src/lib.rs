//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the subset of proptest the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map`
//! and `boxed`, range / tuple / [`strategy::Just`] / [`collection::vec`]
//! strategies,
//! [`arbitrary::any`], the `prop_oneof!` union, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its generated inputs
//!   verbatim instead of a minimised counterexample.
//! * **Deterministic seeding** — every test derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, error type and RNG for generated tests.

    /// How many random cases each `proptest!` test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property within one generated case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Rejects the case with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 — deterministic input generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derives a reproducible RNG from a test's name.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0x243F_6A88_85A3_08D3u64; // pi digits, arbitrary
            for byte in name.bytes() {
                state = state
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(byte as u64);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Generates random values of an associated type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }

        /// Erases the strategy type, for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                generate: Box::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<V> {
        generate: Box<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.generate)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].generate(rng)
        }
    }

    /// `&str` patterns act as regex-style string strategies, e.g.
    /// `".{0,200}"`. Supported subset: literal characters, `.`, `[a-z]`
    /// classes, escapes, and the `{m,n}` / `{n}` / `*` / `+` / `?`
    /// quantifiers applied to the preceding atom.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type.

    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`, e.g. `any::<bool>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing the `&str` strategy.

    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        /// `.` — any character except newline.
        Dot,
        /// `[a-z0-9_]`-style class, expanded to a concrete alphabet.
        Class(Vec<char>),
    }

    /// Characters `.` draws from: printable ASCII plus a few multibyte and
    /// edge-case characters to stress parsers.
    const DOT_EXTRAS: [char; 8] = ['é', 'λ', '⊑', '🦀', '\t', '\u{0}', '\u{7f}', '—'];

    fn sample_dot(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally something weirder.
        if rng.below(8) == 0 {
            DOT_EXTRAS[rng.below(DOT_EXTRAS.len() as u64) as usize]
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('?')
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' => {
                    // Range like `a-z`, if flanked; else a literal dash.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    alphabet.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            alphabet.push('-');
                            prev = Some('-');
                        }
                    }
                }
                '\\' => {
                    if let Some(escaped) = chars.next() {
                        alphabet.push(escaped);
                        prev = Some(escaped);
                    }
                }
                other => {
                    alphabet.push(other);
                    prev = Some(other);
                }
            }
        }
        if alphabet.is_empty() {
            alphabet.push('?');
        }
        alphabet
    }

    /// Parses the quantifier following an atom, returning `(min, max)`.
    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().unwrap_or(0);
                        let hi = hi.trim().parse().unwrap_or(lo + 8);
                        (lo, hi.max(lo))
                    }
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    /// Generates a string matching the supported regex subset of `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut output = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Dot,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                other => Atom::Literal(other),
            };
            let (min, max) = parse_quantifier(&mut chars);
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(ch) => output.push(*ch),
                    Atom::Dot => output.push(sample_dot(rng)),
                    Atom::Class(alphabet) => {
                        output.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
                    }
                }
            }
        }
        output
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace alias matching proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests whose inputs are drawn from strategies.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl [$config] $($rest)*);
    };
    (@impl [$config:expr] $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let inputs = format!(concat!($(stringify!($arg), " = {:#?}\n"),+), $(&$arg),+);
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(error) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}\nwith inputs:\n{}",
                            stringify!($name), case + 1, config.cases, error, inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl [$crate::test_runner::ProptestConfig::default()] $($rest)*);
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: left == right\n  left: {:?}\n right: {:?}",
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            left,
            right,
        );
    }};
}

/// Uniformly picks one of several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        let strategy = (0usize..5, 10u64..20).prop_map(|(a, b)| (a, b));
        for _ in 0..200 {
            let (a, b) = strategy.generate(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn union_and_vec_cover_all_arms() {
        let mut rng = TestRng::from_name("union");
        let strategy = crate::collection::vec(
            prop_oneof![Just(1u8), Just(2u8), (3u8..5).prop_map(|v| v)],
            0..8,
        );
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            for v in strategy.generate(&mut rng) {
                assert!((1..5).contains(&v));
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 4, "all union arms and range values reached");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_eq!(flag, flag, "reflexive");
        }
    }
}
