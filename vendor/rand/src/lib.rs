//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate provides the subset of the rand 0.9 API the workspace
//! uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::random_range`] over integer ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic in the seed, which
//! is all the workload generators require.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly distributed value in `range`.
    ///
    /// Panics if the range is empty, matching rand's behaviour.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Returns a uniformly distributed `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a `Range` by an RNG.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end - range.start) as u128;
                // Multiply-shift reduction: unbiased enough for synthetic
                // workload generation, and branch-free.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                range.start + (wide >> 64) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.wrapping_sub(range.start) as $uty as u128;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                range.start.wrapping_add((wide >> 64) as $uty as $ty)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    ///
    /// Stands in for rand's `StdRng`; not cryptographically secure, which
    /// the workload generators do not need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Reference xoshiro256++ update: the XORs must run in this
            // order, on the live state, so s1/s0 pick up the already
            // updated s2/s3 terms.
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn stays_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let w = rng.random_range(0u32..100);
        assert!(w < 100);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random_range(0usize..1 << 30) == b.random_range(0usize..1 << 30))
            .count();
        assert!(same < 4);
    }
}
